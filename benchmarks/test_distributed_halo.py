"""Distributed halo-exchange bench (Vite-style model, paper ref [24])."""

import numpy as np

from repro.core.phase1 import Phase1Config, run_phase1
from repro.distributed import DistributedConfig, run_distributed_phase1
from repro.graph.generators import load_dataset


def test_distributed_halo(run_once, bench_scale):
    graph = load_dataset("OR", bench_scale)
    single = run_phase1(graph, Phase1Config(pruning="mg"))

    def run_ranks():
        return {
            k: run_distributed_phase1(graph, DistributedConfig(num_ranks=k))
            for k in (2, 4, 8)
        }

    results = run_once(run_ranks)

    for k, r in results.items():
        # Claim 1: bit-identical result at every rank count.
        np.testing.assert_array_equal(r.communities, single.communities)
        # Claim 2: halo volume beats the broadcast equivalent.
        assert r.stats.bytes_sent < r.broadcast_bytes_equivalent, k

    # Claim 3: halo traffic decays as the partition stabilises.
    series = results[4].stats.bytes_per_iteration
    assert sum(series[-2:]) < sum(series[:2])
