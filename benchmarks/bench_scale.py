"""Out-of-core phase-1 wall-clock at 10⁷ edges — regenerates
``BENCH_scale.json``.

Methodology: the parent builds (once) an on-disk RMAT graph store, then
runs each configuration — the local single-process runtime and the
multiprocess runtime at 1/2/4/8 ranks — in its own fresh subprocess over
the *same* store, collecting:

* phase-1 wall-clock (graph open/validate excluded),
* the subprocess's peak RSS (``os.wait4`` → ``ru_maxrss``) and, for the
  multiprocess runtime, the peak RSS over its rank workers
  (``RUSAGE_CHILDREN``),
* modularity / iterations / a sha256 of the final assignment.

The parent asserts the assignment digest is identical across every
configuration (the bit-exactness contract) before writing the JSON.
Speedup columns are reported against the local runtime per rank count,
alongside ``cpu_count``/``affinity`` — on a single-core box the
multiprocess runtime cannot beat local (its ranks time-share one CPU and
pay sync overhead), and the JSON says so rather than pretending.

``--limit-data-mb`` caps ``RLIMIT_DATA`` (heap + anonymous mappings —
file-backed maps are exempt) inside each run: the CI scale-smoke job uses
it to *prove* peak heap stays far below the in-RAM edge-array size.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py [--smoke] [-o OUT]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import resource
import subprocess
import sys
import tempfile
import time

#: full run: 2**17 vertices x 120 sampled edges/vertex ~= 10^7 undirected
#: edges after dedup (~2x10^7 adjacency entries on disk)
FULL_SCALE, FULL_EF = 17, 120.0
SMOKE_SCALE, SMOKE_EF = 12, 8.0
RANK_COUNTS = (1, 2, 4, 8)


def _worker(args) -> None:
    if args.limit_data_mb:
        cap = int(args.limit_data_mb * (1 << 20))
        resource.setrlimit(resource.RLIMIT_DATA, (cap, cap))

    from repro.core.phase1 import Phase1Config, run_phase1
    from repro.graph.mmap_store import open_mmap
    from repro.multiprocess import MultiprocessConfig, run_multiprocess_phase1

    graph = open_mmap(args.store, validate=False)
    if args.config == "local":
        t0 = time.perf_counter()
        result = run_phase1(graph, Phase1Config(pruning="mg"))
        wall = time.perf_counter() - t0
    else:
        ranks = int(args.config.removeprefix("mp"))
        t0 = time.perf_counter()
        result = run_multiprocess_phase1(
            graph, MultiprocessConfig(num_ranks=ranks, pruning="mg")
        )
        wall = time.perf_counter() - t0
    digest = hashlib.sha256(
        result.communities.astype("<i8").tobytes()
    ).hexdigest()
    kib = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    print(json.dumps({
        "wall_s": wall,
        "modularity": result.modularity,
        "iterations": result.num_iterations,
        "comm_sha256": digest,
        "workers_peak_rss_mb": kib / 1024.0,
    }))


def _spawn(config: str, store: str, limit_data_mb: float | None) -> dict:
    cmd = [sys.executable, os.path.abspath(__file__),
           "--worker", config, "--store", store]
    if limit_data_mb:
        cmd += ["--limit-data-mb", str(limit_data_mb)]
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=dict(os.environ, PYTHONPATH=os.pathsep.join(
            filter(None, [os.environ.get("PYTHONPATH", ""),
                          os.path.join(os.path.dirname(
                              os.path.dirname(os.path.abspath(__file__))),
                              "src")]))),
    )
    # drain the pipes to EOF first (communicate() would reap the child
    # and lose the rusage), then reap via wait4 for ru_maxrss
    out = proc.stdout.read()
    err = proc.stderr.read()
    _, status, rusage = os.wait4(proc.pid, 0)
    proc.returncode = os.waitstatus_to_exitcode(status)
    if proc.returncode != 0:
        raise RuntimeError(
            f"{config} failed (exit {proc.returncode}):\n{err}"
        )
    row = json.loads(out.splitlines()[-1])
    row["peak_rss_mb"] = rusage.ru_maxrss / 1024.0
    return row


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("-o", "--output", default="BENCH_scale.json")
    parser.add_argument("--smoke", action="store_true",
                        help="small graph, quick run (CI)")
    parser.add_argument("--store", default=None,
                        help="reuse an existing graph store directory")
    parser.add_argument("--limit-data-mb", type=float, default=None,
                        help="RLIMIT_DATA cap (MiB) inside every run")
    parser.add_argument("--worker", metavar="CONFIG", default=None)
    parser.add_argument("--ranks", default=",".join(map(str, RANK_COUNTS)),
                        help="comma-separated multiprocess rank counts")
    args = parser.parse_args()

    if args.worker:
        args.config = args.worker
        _worker(args)
        return

    from repro.graph.generators import rmat_to_disk
    from repro.graph.mmap_store import open_mmap

    scale, ef = (SMOKE_SCALE, SMOKE_EF) if args.smoke else (FULL_SCALE, FULL_EF)
    tmp = None
    if args.store:
        store = args.store
        graph = open_mmap(store, validate=False)
    else:
        tmp = tempfile.mkdtemp(prefix="repro-bench-scale-")
        store = os.path.join(tmp, "g.store")
        print(f"building rmat scale={scale} ef={ef} at {store} ...",
              flush=True)
        t0 = time.perf_counter()
        graph = rmat_to_disk(scale, store, edge_factor=ef, seed=7,
                             validate=False)
        print(f"built in {time.perf_counter() - t0:.1f}s: n={graph.n} "
              f"m={graph.num_edges} "
              f"({graph.store_nbytes / (1 << 20):.0f} MiB on disk)",
              flush=True)

    configs = ["local"] + [f"mp{r}" for r in
                           (int(x) for x in args.ranks.split(","))]
    rows: dict[str, dict] = {}
    for config in configs:
        print(f"running {config} ...", flush=True)
        rows[config] = _spawn(config, store, args.limit_data_mb)
        r = rows[config]
        print(f"  {r['wall_s']:.2f}s  Q={r['modularity']:.5f}  "
              f"rss={r['peak_rss_mb']:.0f}MB", flush=True)

    digests = {r["comm_sha256"] for r in rows.values()}
    if len(digests) != 1:
        raise SystemExit(f"bit-exactness violated across configs: {rows}")

    local_wall = rows["local"]["wall_s"]
    report = {
        "description": (
            "phase-1 wall-clock on an on-disk RMAT store "
            f"(scale={scale}, edge_factor={ef}, n={graph.n}, "
            f"m={graph.num_edges}): local runtime vs multiprocess at "
            "1/2/4/8 ranks over the same memory-mapped store; peak RSS "
            "per run (parent process; workers reported separately). All "
            "configurations produced the bit-identical assignment "
            f"(sha256 {next(iter(digests))[:16]}...)."
        ),
        "machine": {
            "cpu_count": os.cpu_count(),
            "affinity": len(os.sched_getaffinity(0)),
            "note": (
                "multiprocess speedup over local requires as many free "
                "cores as ranks; on fewer cores the ranks time-share and "
                "the sync overhead makes speedup < 1 the honest result"
            ),
        },
        "graph": {
            "scale": scale,
            "edge_factor": ef,
            "n": graph.n,
            "num_edges": graph.num_edges,
            "store_mb": graph.store_nbytes / (1 << 20),
            "in_ram_edge_arrays_mb":
                (graph.num_directed_edges * 16) / (1 << 20),
        },
        "results": {
            cfg: {
                **row,
                **({"speedup_vs_local": local_wall / row["wall_s"]}
                   if cfg != "local" else {}),
            }
            for cfg, row in rows.items()
        },
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")
    if tmp:
        import shutil

        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    main()
