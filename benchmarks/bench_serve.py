"""Mixed-traffic load generator for the detection service — regenerates
``BENCH_serve.json``.

Four traffic phases against one in-process :class:`DetectionServer`
(subprocess worker pool, the production runner):

* **hot** — one medium graph, the same (config, seed) repeated: request 1
  is the cold engine run, every later request must be a cache hit. The
  headline number is ``cold_ms / hit_p50_ms`` — the serving layer's
  price-of-recomputation avoided (acceptance floor: >= 50x).
* **cold** — distinct graphs requested once each: pure miss traffic,
  measures engine-run latency and throughput through the pool.
* **sweep** — one graph under a config sweep (resolution x pruning), run
  twice: the first pass misses, the second pass must hit every entry —
  the canonical-cache-key contract under field variation.
* **overload** — ``4 x max_pending`` concurrent no-cache clients: the
  server must shed with 503s (bounded backlog) while still answering —
  pings keep succeeding and some requests complete.

The phase results plus the server's own drain manifest (latency
histograms, hit/miss counters, ``drained_clean``) go into the JSON
report and the manifest file.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [-o BENCH_serve.json]
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke  # CI: small + asserts
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import time

from repro import obs
from repro.graph.generators import rmat_graph
from repro.obs.exposition import parse_prometheus_text, sample_value
from repro.serve import DetectionServer, ServeClient, ServeConfig


def _pct(values: list, q: float) -> float:
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
    return ordered[idx]


async def _timed_detect(client: ServeClient, fingerprint: str, **kw) -> tuple:
    t0 = time.perf_counter()
    response = await client.detect(fingerprint, raise_on_error=False, **kw)
    return (time.perf_counter() - t0) * 1000.0, response


async def _hot_phase(client, fingerprint: str, requests: int) -> dict:
    config = {"pruning": "mg", "resolution": 1.0}
    cold_ms, first = await _timed_detect(
        client, fingerprint, config=config, seed=0
    )
    assert first["ok"] and not first["cached"], first
    hits = []
    for _ in range(requests - 1):
        ms, response = await _timed_detect(
            client, fingerprint, config=config, seed=0
        )
        assert response["ok"] and response["cached"], response
        assert response["assignment_sha256"] == first["assignment_sha256"]
        hits.append(ms)
    return {
        "requests": requests,
        "cold_ms": round(cold_ms, 3),
        "hit_p50_ms": round(_pct(hits, 50), 4),
        "hit_p99_ms": round(_pct(hits, 99), 4),
        "speedup": round(cold_ms / _pct(hits, 50), 1),
    }


async def _cold_phase(client, fingerprints: list) -> dict:
    misses = []
    t0 = time.perf_counter()
    for fp in fingerprints:
        ms, response = await _timed_detect(client, fp, seed=0)
        assert response["ok"] and not response["cached"], response
        misses.append(ms)
    wall = time.perf_counter() - t0
    return {
        "graphs": len(fingerprints),
        "miss_p50_ms": round(_pct(misses, 50), 2),
        "miss_max_ms": round(max(misses), 2),
        "throughput_rps": round(len(fingerprints) / wall, 2),
    }


async def _sweep_phase(client, fingerprint: str, configs: list) -> dict:
    for passno, expect_cached in ((1, False), (2, True)):
        for config in configs:
            _, response = await _timed_detect(
                client, fingerprint, config=config, seed=0
            )
            assert response["ok"], response
            assert response["cached"] == expect_cached, (passno, config, response)
    return {"configs": len(configs), "second_pass_all_hits": True}


async def _overload_phase(
    host: str, port: int, fingerprint: str, max_pending: int, per_client: int
) -> dict:
    clients = 4 * max_pending
    counts = {"ok": 0, "shed": 0, "other": 0}

    async def one_client() -> None:
        async with await ServeClient.connect(host, port) as c:
            for _ in range(per_client):
                response = await c.detect(
                    fingerprint, seed=0, no_cache=True, raise_on_error=False
                )
                if response.get("ok"):
                    counts["ok"] += 1
                elif response.get("error") == "overloaded":
                    counts["shed"] += 1
                else:
                    counts["other"] += 1

    async def probe() -> int:
        # the liveness probe: intake must answer while the pool is pinned
        answered = 0
        async with await ServeClient.connect(host, port) as c:
            while sum(counts.values()) < clients * per_client:
                await c.ping()
                answered += 1
                await asyncio.sleep(0.01)
        return answered

    probe_task = asyncio.create_task(probe())
    await asyncio.gather(*(one_client() for _ in range(clients)))
    pings = await probe_task
    offered = clients * per_client
    return {
        "clients": clients,
        "offered": offered,
        "ok": counts["ok"],
        "shed": counts["shed"],
        "other": counts["other"],
        "shed_rate": round(counts["shed"] / offered, 3),
        "pings_answered_during_overload": pings,
        "max_pending": max_pending,
    }


def _bucket_quantile(families: dict, family: str, q: float) -> float:
    """Recompute a quantile from parsed ``_bucket`` samples — the same
    upper-bound-of-rank-bucket estimate ``BucketHistogram.quantile``
    reports server-side (``+Inf`` falls back to the last finite bound)."""
    buckets = sorted(
        (
            (labels["le"], value)
            for name, labels, value in families[family]["samples"]
            if name.endswith("_bucket")
        ),
        key=lambda kv: float("inf") if kv[0] == "+Inf" else float(kv[0]),
    )
    total = buckets[-1][1]
    if not total:
        return 0.0
    rank = q * total
    previous = 0.0
    last_finite = 0.0
    for le, cumulative in buckets:
        if le != "+Inf":
            last_finite = float(le)
        if cumulative >= rank and cumulative > previous:
            return last_finite
        previous = cumulative
    return last_finite


async def _telemetry_phase(args: argparse.Namespace) -> dict:
    """Server-reported percentiles vs client-measured, same population.

    A dedicated session so the two sides see the *identical* request
    stream: one upload + one cold run + N cache hits, client-timed.
    The server's bucket histogram reports a quantile as the upper bound
    of its bucket (ladder ratio ~1.334x), and the client's stopwatch
    additionally includes the loopback RTT — so the agreement contract
    is: server_p <= client_p * 1.35 + 0.5ms (bucket ceiling never
    exceeds the client's measurement by more than one bucket) and
    client_p <= server_p + 25ms (RTT + scheduling, generous for CI).
    """
    server = DetectionServer(ServeConfig(
        port=0, workers=1, runner=args.runner, request_timeout_s=300.0,
    ))
    host, port = await server.start()
    client_ms = []
    try:
        async with await ServeClient.connect(host, port) as client:
            graph = rmat_graph(10, edge_factor=8, seed=31)
            t0 = time.perf_counter()
            fingerprint = await client.upload(graph)
            client_ms.append((time.perf_counter() - t0) * 1000.0)
            for _ in range(20):
                ms, response = await _timed_detect(client, fingerprint, seed=0)
                assert response["ok"], response
                client_ms.append(ms)
            # rendered during dispatch: the exposition excludes the
            # metrics request itself, so both sides see 21 samples
            reply = await client.metrics()
    finally:
        await server.drain()

    families = parse_prometheus_text(reply["exposition"])

    def server_pct(name: str) -> float:
        return float(sample_value(families, f"repro_serve_window_{name}_ms"))

    comparison = {}
    agree = True
    for q, name in ((50, "p50"), (95, "p95"), (99, "p99")):
        client_p = _pct(client_ms, q)
        server_p = server_pct(name)
        within = (
            server_p <= client_p * 1.35 + 0.5
            and client_p <= server_p + 25.0
        )
        agree = agree and within
        comparison[name] = {
            "client_ms": round(client_p, 3),
            "server_ms": round(server_p, 3),
            "within_tolerance": within,
        }
    count = sample_value(
        families, "repro_serve_request_latency_ms", suffix="_count"
    )
    return {
        "samples": len(client_ms),
        "server_histogram_count": int(count),
        "counts_match": int(count) == len(client_ms),
        "percentiles": comparison,
        "agree": agree,
    }


async def run(args: argparse.Namespace) -> dict:
    if args.smoke:
        hot_scale, cold_scales, hot_requests, per_client = 11, (10, 10), 10, 4
        cold_seeds = (21, 22)
    else:
        hot_scale, cold_scales, hot_requests, per_client = 14, (13, 14, 15), 50, 8
        cold_seeds = (21, 22, 23)
    max_pending = 4

    server = DetectionServer(ServeConfig(
        port=0,
        workers=args.workers,
        runner=args.runner,
        max_pending=max_pending,
        request_timeout_s=300.0,
        metrics_port=args.metrics_port,
    ))
    t_boot = time.perf_counter()
    host, port = await server.start()
    boot_s = time.perf_counter() - t_boot
    if server.metrics_port is not None:
        print(f"metrics on http://{host}:{server.metrics_port}/metrics",
              flush=True)

    hot_graph = rmat_graph(hot_scale, edge_factor=8, seed=7)
    cold_graphs = [
        rmat_graph(s, edge_factor=8, seed=seed)
        for s, seed in zip(cold_scales, cold_seeds)
    ]
    # resolution 1.0 is excluded: the hot phase already primed (mg, 1.0),
    # and the sweep's first pass asserts every entry is a miss
    sweep_configs = [
        {"pruning": pruning, "resolution": resolution}
        for pruning in (["mg", "rm"] if not args.smoke else ["mg"])
        for resolution in ([0.5, 1.5, 2.0] if not args.smoke else [0.5, 2.0])
    ]

    report: dict = {}
    try:
        async with await ServeClient.connect(host, port) as client:
            hot_fp = await client.upload(hot_graph)
            cold_fps = [await client.upload(g) for g in cold_graphs]

            print("phase: hot (repeated graph, cache hits) ...", flush=True)
            report["hot"] = await _hot_phase(client, hot_fp, hot_requests)
            print(f"  cold={report['hot']['cold_ms']}ms "
                  f"hit_p50={report['hot']['hit_p50_ms']}ms "
                  f"speedup={report['hot']['speedup']}x", flush=True)

            print("phase: cold (distinct graphs, engine runs) ...", flush=True)
            report["cold"] = await _cold_phase(client, cold_fps)

            print("phase: sweep (config grid twice) ...", flush=True)
            report["sweep"] = await _sweep_phase(client, hot_fp, sweep_configs)

        print(f"phase: overload ({4 * max_pending} clients vs "
              f"max_pending={max_pending}) ...", flush=True)
        report["overload"] = await _overload_phase(
            host, port, hot_fp, max_pending, per_client
        )
        print(f"  ok={report['overload']['ok']} "
              f"shed={report['overload']['shed']}", flush=True)
    finally:
        clean = await server.drain()

    print("phase: telemetry (server vs client percentiles) ...", flush=True)
    report["telemetry"] = await _telemetry_phase(args)
    print(f"  p99 client={report['telemetry']['percentiles']['p99']['client_ms']}ms "
          f"server={report['telemetry']['percentiles']['p99']['server_ms']}ms",
          flush=True)

    manifest = server.manifest(command="bench_serve")
    # post-drain, the exposition and the drain manifest read the same
    # cumulative bucket histogram: a scraper can recompute the manifest's
    # p99 from the _bucket samples exactly, no tolerance
    families = parse_prometheus_text(server.render_metrics_text())
    exposition_count = sample_value(
        families, "repro_serve_request_latency_ms", suffix="_count"
    )
    live = manifest.result["live"]
    report["exposition_vs_manifest"] = {
        "requests_exposition": int(exposition_count),
        "requests_manifest": int(live["requests"]),
        "p99_exposition_ms": _bucket_quantile(
            families, "repro_serve_request_latency_ms", 0.99
        ),
        "p99_manifest_ms": live["p99_ms"],
    }
    if args.manifest:
        obs.save_manifest(manifest, args.manifest)
        print(f"wrote serving manifest to {args.manifest}")
    r = manifest.result
    report["server"] = {
        "boot_s": round(boot_s, 3),
        "runner": args.runner,
        "workers": args.workers,
        "requests": r["requests"],
        "cache_hit_rate": round(r["cache_hit_rate"], 3),
        "latency_p50_ms": round(r["latency_p50_ms"], 3),
        "latency_p99_ms": round(r["latency_p99_ms"], 3),
        "drained_clean": clean,
    }
    return report


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("-o", "--output", default="BENCH_serve.json")
    parser.add_argument("--manifest", default=None, metavar="PATH",
                        help="also write the server's drain manifest here")
    parser.add_argument("--runner", default="subprocess",
                        choices=["subprocess", "inline"])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--smoke", action="store_true",
                        help="small graphs + hard asserts (the CI job)")
    parser.add_argument("--metrics-port", type=int, default=None,
                        help="bind the HTTP /metrics listener on this port "
                             "so an external scraper can hit the server "
                             "mid-load (the CI smoke job curls it)")
    args = parser.parse_args()

    report = asyncio.run(run(args))
    report = {
        "description": (
            "detection-service load generator: hot repeated-graph traffic "
            "(cache hits), cold distinct graphs (engine runs through the "
            "subprocess pool), a config sweep run twice (canonical cache "
            "keys), and a 4x-max_pending overload burst (load shedding)"
        ),
        "machine_note": (
            f"rmat graphs, runner={args.runner} workers={args.workers}; "
            "latencies measured client-side over loopback TCP"
        ),
        **report,
    }

    # the acceptance contract, asserted hardest under --smoke (CI)
    assert report["server"]["drained_clean"], "drain was not clean"
    assert report["server"]["cache_hit_rate"] > 0, "no cache hits recorded"
    assert report["hot"]["speedup"] >= 50, (
        f"cached speedup {report['hot']['speedup']}x < 50x floor"
    )
    assert report["overload"]["shed"] > 0, "overload burst was never shed"
    assert report["overload"]["ok"] > 0, "overload burst starved completely"
    assert report["overload"]["pings_answered_during_overload"] > 0
    assert report["telemetry"]["counts_match"], (
        "server histogram saw a different request count than the client sent"
    )
    assert report["telemetry"]["agree"], (
        f"server/client percentiles disagree: {report['telemetry']['percentiles']}"
    )
    evm = report["exposition_vs_manifest"]
    assert evm["requests_exposition"] == evm["requests_manifest"], evm
    assert evm["p99_exposition_ms"] == evm["p99_manifest_ms"], evm

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    print(f"hot speedup {report['hot']['speedup']}x, "
          f"hit rate {report['server']['cache_hit_rate']}, "
          f"shed {report['overload']['shed']}/{report['overload']['offered']} "
          f"-> {args.output}")


if __name__ == "__main__":
    main()
