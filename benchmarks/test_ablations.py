"""Ablation benches for the design choices DESIGN.md calls out.

Beyond the paper's own figures, these quantify the costs of three design
decisions so downstream users can see why the defaults are what they are:

1. MG's **global-minimum** D_V bound (Eq. 6) vs the tighter per-vertex
   neighbourhood minimum — how much pruning does the O(1) bound give up?
2. The **remove-self** gain convention (Grappolo/standard) vs the paper's
   verbatim Eq. 2 — does the convention change result quality?
3. **Adaptive** dense/sparse synchronisation vs either fixed policy.
"""

import numpy as np
import pytest

from repro.core.phase1 import Phase1Config, run_phase1
from repro.core.pruning.modularity_gain import ModularityGainPruning
from repro.graph.generators import load_dataset
from repro.multigpu import MultiGpuConfig, SyncMode, run_multigpu_phase1


@pytest.fixture(scope="module")
def graph(bench_scale=None):
    return load_dataset("LJ", 0.1)


def test_ablation_mg_bound_tightness(run_once, graph):
    """The neighbourhood bound prunes more per iteration, but both are
    lossless; the paper's global bound is the right default because its
    evaluation is O(1) per vertex instead of an O(E) pass."""

    def run_both():
        g = run_phase1(
            graph, Phase1Config(pruning=ModularityGainPruning(bound="global"))
        )
        n = run_phase1(
            graph,
            Phase1Config(pruning=ModularityGainPruning(bound="neighborhood")),
        )
        return g, n

    global_r, nbr_r = run_once(run_both)
    # identical results (both bounds are sound)
    np.testing.assert_array_equal(global_r.communities, nbr_r.communities)
    # neighbourhood bound prunes at least as much work
    assert nbr_r.processed_vertices <= global_r.processed_vertices
    saved = 1 - nbr_r.processed_vertices / global_r.processed_vertices
    # and the advantage is bounded — the global bound keeps most of it
    assert saved < 0.5


def test_ablation_remove_self_convention(run_once, graph):
    """Both gain conventions must land in the same quality neighbourhood;
    the convention is about correctness of the comparison, not quality."""

    def run_both():
        std = run_phase1(graph, Phase1Config(pruning="mg", remove_self=True))
        paper = run_phase1(graph, Phase1Config(pruning="mg", remove_self=False))
        return std, paper

    std, paper = run_once(run_both)
    assert abs(std.modularity - paper.modularity) < 0.05
    # MG must be lossless under either convention
    for rs in (True, False):
        base = run_phase1(graph, Phase1Config(pruning="none", remove_self=rs))
        mg = run_phase1(graph, Phase1Config(pruning="mg", remove_self=rs))
        np.testing.assert_array_equal(base.communities, mg.communities)


def test_ablation_sync_policy(run_once, graph):
    """Adaptive sync must not lose to the dense policy and must track the
    better fixed policy closely (byte-threshold choice, paper 4.3)."""

    def run_modes():
        return {
            mode: run_multigpu_phase1(
                graph, MultiGpuConfig(num_gpus=4, sync_mode=mode)
            ).comm_seconds()
            for mode in [SyncMode.DENSE, SyncMode.SPARSE, SyncMode.ADAPTIVE]
        }

    times = run_once(run_modes)
    assert times[SyncMode.ADAPTIVE] <= times[SyncMode.DENSE] + 1e-12
    assert times[SyncMode.ADAPTIVE] <= 1.3 * min(
        times[SyncMode.DENSE], times[SyncMode.SPARSE]
    )


def test_ablation_patience(run_once, graph):
    """patience=1 reproduces the bare Algorithm-1 termination; the default
    patience rides out transient BSP dips and must never end lower."""

    def run_both():
        bare = run_phase1(graph, Phase1Config(pruning="mg", patience=1))
        tolerant = run_phase1(graph, Phase1Config(pruning="mg", patience=3))
        return bare, tolerant

    bare, tolerant = run_once(run_both)
    assert tolerant.modularity >= bare.modularity - 1e-12
