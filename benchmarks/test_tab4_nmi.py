"""Table 4 bench: NMI against LFR ground truth."""

from repro.bench.harness import run_experiment


def test_table4_nmi(run_once, bench_scale):
    out = run_once(run_experiment, "table4", scale=bench_scale)
    rows = {r["graph"]: r for r in out.rows}
    assert set(rows) == {"Graph1", "Graph2", "Graph3"}

    for name, row in rows.items():
        # Claim 1: MG and SM match the baseline NMI exactly.
        assert row["MG==base"] is True, name
        assert row["SM==base"] is True, name
        # NMI sanity
        assert 0.0 <= row["Baseline/MG/SM"] <= 1.0

    # Claim 2: the three graphs span the paper's regimes — Graph2 has
    # strong, recoverable structure (paper NMI 0.924), the others weaker.
    assert rows["Graph2"]["Baseline/MG/SM"] > 0.8
    assert rows["Graph1"]["Baseline/MG/SM"] < rows["Graph2"]["Baseline/MG/SM"]

    # Claim 3: RM/PM may only *reduce* quality, and only slightly
    # (paper: -0.2% / -0.3% NMI on average).
    for name, row in rows.items():
        assert row["RM"] >= row["Baseline/MG/SM"] - 0.1, name
