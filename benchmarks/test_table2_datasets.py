"""Table 2 bench: stand-in suite construction and statistics."""

from repro.bench.harness import run_experiment


def test_table2_datasets(run_once, bench_scale):
    out = run_once(run_experiment, "table2", scale=bench_scale)
    rows = {r["graph"]: r for r in out.rows}
    assert set(rows) == {"FR", "LJ", "OR", "TW", "UK", "EW", "HW"}

    for abbr, row in rows.items():
        assert row["standin n"] > 100, abbr
        assert row["standin m"] > row["standin n"], abbr

    # The kernel-dispatch premise: most vertices are small-degree
    # (shuffle kernel), with a non-trivial tail for the hash kernel.
    small_shares = [
        float(r["deg<32"].rstrip("%")) for r in rows.values()
    ]
    assert min(small_shares) > 50.0
