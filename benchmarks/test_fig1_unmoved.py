"""Figure 1(b) bench: unmoved/pruned proportions per iteration."""

from repro.bench.harness import run_experiment


def test_fig1_unmoved(run_once, bench_scale):
    out = run_once(run_experiment, "fig1", scale=bench_scale)
    unmoved = out.series["unmoved"]
    pruned = out.series["pruned (MG)"]
    assert len(unmoved) == len(pruned) >= 3

    # Claim 1: substantial unmoved fraction late in the run (paper: ~95%).
    assert max(unmoved) > 0.7

    # Claim 2: MG prunes a large fraction (paper: up to 69% on LJ).
    assert max(pruned) > 0.4

    # Claim 3: MG never prunes more than is actually unmoved (no FN).
    for u, p in zip(unmoved, pruned):
        assert p <= u + 1e-9

    # Claim 4: both series trend upward as the partition stabilises.
    half = len(unmoved) // 2
    assert sum(unmoved[half:]) / max(len(unmoved) - half, 1) > (
        sum(unmoved[:half]) / max(half, 1)
    )
    assert sum(pruned[half:]) / max(len(pruned) - half, 1) > (
        sum(pruned[:half]) / max(half, 1)
    )
