"""Figure 10 bench: multi-GPU speedup and compute/comm breakdown."""

from repro.bench.harness import run_experiment


def _x(cell: str) -> float:
    return float(cell.rstrip("x"))


def test_fig10_scaling(run_once, bench_scale):
    out = run_once(run_experiment, "fig10", scale=bench_scale)
    speedup_rows = [r for r in out.rows if "breakdown" not in r["graph"]]
    breakdown = [r for r in out.rows if "breakdown" in r["graph"]]
    assert speedup_rows and len(breakdown) == 4

    # Claim 1 (a): sub-linear but real speedup on every graph.
    for row in speedup_rows:
        s2, s4, s8 = _x(row["2 GPU"]), _x(row["4 GPU"]), _x(row["8 GPU"])
        assert 1.0 < s2 <= 2.0 + 1e-9, row["graph"]
        assert s2 < s4 < s8, row["graph"]
        assert s8 < 8.0, row["graph"]  # communication prevents linearity

    # Claim 2 (b): computation scales down (paper: 4.4x at 8 GPUs) while
    # communication does not shrink.
    by_k = {r["graph"]: r for r in breakdown}
    comp1 = by_k["OR breakdown @1 GPU"]["compute (ms)"]
    comp8 = by_k["OR breakdown @8 GPU"]["compute (ms)"]
    comm1 = by_k["OR breakdown @1 GPU"]["comm (ms)"]
    comm8 = by_k["OR breakdown @8 GPU"]["comm (ms)"]
    assert comp1 / comp8 > 3.0
    assert comm8 >= comm1

    # Claim 3 (b): the communication share grows with GPU count
    # (paper: 43% at 8 GPUs).
    share1 = float(by_k["OR breakdown @1 GPU"]["comm share"].rstrip("%"))
    share8 = float(by_k["OR breakdown @8 GPU"]["comm share"].rstrip("%"))
    assert share8 > share1
