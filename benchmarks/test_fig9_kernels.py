"""Figure 9 bench: workload-aware kernels on their target degree ranges."""

from repro.bench.harness import run_experiment


def _x(cell: str) -> float:
    return float(cell.rstrip("x"))


def test_fig9_kernels(run_once, bench_scale):
    out = run_once(run_experiment, "fig9", scale=bench_scale)
    part_a = [r for r in out.rows if r["part"].startswith("a")]
    part_b = [r for r in out.rows if r["part"].startswith("b")]
    assert part_a and part_b

    # Part (a) — paper: shuffle 1.9x faster than hash-global and 1.2x
    # faster than hash-shared on degree<32 vertices.
    for row in part_a:
        assert _x(row["shuffle"]) == 1.0
        assert _x(row["hash (shared)"]) > 1.0, row["workload"]
        assert _x(row["hash (global)"]) > _x(row["hash (shared)"]), row["workload"]

    # Part (b) — paper: hierarchical 1.5x faster than global-only and
    # 1.2x faster than unified on degree>2000 vertices.
    for row in part_b:
        assert _x(row["hierarchical"]) == 1.0
        assert _x(row["unified"]) > 1.0
        assert _x(row["global-only"]) > _x(row["unified"])
