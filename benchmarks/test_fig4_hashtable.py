"""Figure 4 bench: shared-memory maintenance/access rates."""

import numpy as np

from repro.bench.harness import run_experiment


def test_fig4_hashtable_rates(run_once, bench_scale):
    out = run_once(run_experiment, "fig4", scale=bench_scale)
    hier = np.array(out.series["hier access"])
    unif = np.array(out.series["unif access"])
    assert len(hier) == len(unif) >= 4

    # Claim 1: hierarchical beats unified at every iteration (paper: 4.7x
    # average access-rate advantage).
    assert np.all(hier > unif)
    assert hier.mean() / max(unif.mean(), 1e-9) > 2.0

    # Claim 2: hierarchical's rates rise as iterations proceed (community
    # count shrinks); compare late vs early halves.
    half = len(hier) // 2
    assert hier[half:].mean() >= hier[:half].mean() - 1e-9

    # Claim 3: access rate >= maintenance rate for hierarchical (hot
    # communities appear early and stay in shared memory).
    maint = [row["hier maint%"] for row in out.rows]
    access = [row["hier access%"] for row in out.rows]
    assert np.mean(access) >= np.mean(maint) - 0.5
