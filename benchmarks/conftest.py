"""Shared configuration for the benchmark suite.

Each ``test_*`` module regenerates one of the paper's tables/figures via
the experiment harness, asserts the paper's qualitative claims on the
output, and reports timing through pytest-benchmark. Scale is controlled
by ``REPRO_BENCH_SCALE`` (default here is small so the full suite runs in
a few minutes; raise it for larger instances).
"""

from __future__ import annotations

import os

import pytest

#: default stand-in scale for benchmark runs (override via env)
DEFAULT_SCALE = 0.1


@pytest.fixture(scope="session")
def bench_scale() -> float:
    raw = os.environ.get("REPRO_BENCH_SCALE", "")
    return float(raw) if raw else DEFAULT_SCALE


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer.

    Experiments are macro-benchmarks (seconds each); re-running them for
    statistical rounds would multiply suite time for no insight.
    """

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
