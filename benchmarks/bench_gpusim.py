"""Wall-clock harness for the gpusim execution engines — regenerates
``BENCH_gpusim.json``.

Methodology (same as ``BENCH_kernels.json``): the scalar ("before") and
batched ("after") engines run in *interleaved subprocesses* — each round
spawns one fresh interpreter per engine, alternating, so thermal drift
and cache warmth never favour one side. Each subprocess times several
in-process repetitions of

* the Figure 9 kernel-cost experiment (the PR's headline comparison), and
* a full gpusim phase-1 run on the LJ stand-in,

and reports the timings plus every deterministic column: the fig9 cycle
ratios, and the phase-1 modularity / iteration count / simulated cycle
total. The parent asserts the deterministic columns are identical across
engines (the bit-exactness contract) before writing the JSON.

Usage::

    PYTHONPATH=src python benchmarks/bench_gpusim.py [-o BENCH_gpusim.json]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import time

SCALE = 0.25
ROUNDS = 3
FIG9_REPS = 2
ENGINES = ("scalar", "batched")


def _worker(engine: str) -> dict:
    """Run the payload in-process; the engine comes in via the env."""
    assert os.environ.get("REPRO_GPUSIM_ENGINE") == engine
    from repro.bench.experiments import fig9_kernels
    from repro.core.gala import GalaConfig, gala
    from repro.graph.generators import load_dataset

    fig9_times, fig9_rows = [], None
    for _ in range(FIG9_REPS):
        t0 = time.perf_counter()
        out = fig9_kernels.run(scale=SCALE)
        fig9_times.append(time.perf_counter() - t0)
        fig9_rows = out.rows

    graph = load_dataset("LJ", SCALE)
    t0 = time.perf_counter()
    result = gala(
        graph,
        GalaConfig(backend="gpusim", gpusim_engine=engine, phase1_only=True),
    )
    phase1_time = time.perf_counter() - t0
    return {
        "fig9_times_s": fig9_times,
        "fig9_rows": fig9_rows,
        "phase1_time_s": phase1_time,
        "modularity": result.modularity,
        "iterations": result.num_iterations,
    }


def _worker_with_cycles(engine: str) -> dict:
    """Payload plus the simulated-cycle total of one pinned launch set."""
    import numpy as np

    from repro.core.kernels.dispatch import make_gpusim_kernel
    from repro.core.state import CommunityState
    from repro.graph.generators import load_dataset

    out = _worker(engine)
    graph = load_dataset("LJ", SCALE)
    rng = np.random.default_rng(0)
    state = CommunityState.from_assignment(
        graph, rng.integers(0, 64, graph.n)
    )
    kernel = make_gpusim_kernel(engine=engine)
    kernel(state, np.arange(graph.n))
    out["launch_total_cycles"] = kernel.device.profiler.total_cycles
    return out


def _spawn(engine: str) -> dict:
    env = dict(os.environ, REPRO_GPUSIM_ENGINE=engine)
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--worker", engine],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout.splitlines()[-1])


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("-o", "--output", default="BENCH_gpusim.json")
    parser.add_argument("--worker", metavar="ENGINE", default=None)
    args = parser.parse_args()

    if args.worker:
        print(json.dumps(_worker_with_cycles(args.worker)))
        return

    runs: dict[str, list[dict]] = {e: [] for e in ENGINES}
    for rnd in range(ROUNDS):
        for engine in ENGINES:
            print(f"round {rnd + 1}/{ROUNDS}: {engine} ...", flush=True)
            runs[engine].append(_spawn(engine))

    report: dict = {
        "description": (
            "gpusim engine wall-clock: fig9 kernel experiment + gpusim "
            f"phase-1 on the LJ stand-in at REPRO_BENCH_SCALE={SCALE}; "
            "before = scalar engine (one vertex per Python iteration), "
            "after = batched SoA engine of this PR"
        ),
        "machine_note": (
            f"best over {ROUNDS} interleaved subprocess rounds x "
            f"{FIG9_REPS} in-process fig9 reps each"
        ),
    }
    for engine, key in (("scalar", "before"), ("batched", "after")):
        rs = runs[engine]
        fig9 = [t for r in rs for t in r["fig9_times_s"]]
        report[key] = {
            "engine": engine,
            "fig9": {
                "best_s": min(fig9),
                "median_s": statistics.median(fig9),
                "rows": rs[0]["fig9_rows"],
            },
            "phase1_LJ": {
                "best_s": min(r["phase1_time_s"] for r in rs),
                "modularity": rs[0]["modularity"],
                "iterations": rs[0]["iterations"],
                "launch_total_cycles": rs[0]["launch_total_cycles"],
            },
        }

    # the bit-exactness contract: every deterministic column identical
    for field in ("fig9_rows", "modularity", "iterations", "launch_total_cycles"):
        values = [r[field] for rs in runs.values() for r in rs]
        assert all(v == values[0] for v in values), f"{field} diverged: {values}"

    fig9_speedup = report["before"]["fig9"]["best_s"] / report["after"]["fig9"]["best_s"]
    phase1_speedup = (
        report["before"]["phase1_LJ"]["best_s"]
        / report["after"]["phase1_LJ"]["best_s"]
    )
    report["speedup"] = {
        "fig9": f"{fig9_speedup:.1f}x",
        "phase1_LJ": f"{phase1_speedup:.1f}x",
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    print(f"fig9 {fig9_speedup:.1f}x, phase1 {phase1_speedup:.1f}x -> {args.output}")


if __name__ == "__main__":
    main()
