"""Figure 7 bench: inactive rates of every pruning strategy."""

from repro.bench.harness import run_experiment


def _pct(cell: str) -> float:
    return float(cell.rstrip("%"))


def test_fig7_pruning(run_once, bench_scale):
    out = run_once(run_experiment, "fig7", scale=bench_scale)
    rows = {r["graph"]: r for r in out.rows}
    avg = rows["Avg."]

    # Claim 1: SM prunes the least by far (paper: <4% average).
    assert _pct(avg["SM"]) < _pct(avg["RM"])
    assert _pct(avg["SM"]) < _pct(avg["MG"])
    assert _pct(avg["SM"]) < 25.0

    # Claim 2: MG prunes substantially (paper: up to 69% on LJ).
    assert _pct(avg["MG"]) > 30.0

    # Claim 3: MG+RM prunes at least as much as either alone — they prune
    # from different angles (paper: complementary, up to 91.9%).
    assert _pct(avg["MG+RM"]) >= _pct(avg["MG"]) - 1.0
    assert _pct(avg["MG+RM"]) >= _pct(avg["RM"]) - 1.0

    # Claim 4: pruning rises over the run (series from the first graph).
    mg = out.series["MG"]
    half = len(mg) // 2
    assert sum(mg[half:]) / max(len(mg) - half, 1) > sum(mg[:half]) / max(half, 1)
