"""Kernel-backend bench: crossover table + incremental-work guarantee.

Beyond regenerating the crossover experiment, this asserts the perf
contract of the incremental backend: on an MG-pruned LFR run it must
re-aggregate strictly fewer adjacency entries than the full path streams
(clean cached rows are served from the pair cache, not re-built).
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import run_experiment
from repro.core.phase1 import Phase1Config, run_phase1
from repro.graph.generators.lfr import LFRParams, lfr_graph


def test_kernels_experiment(run_once, bench_scale):
    out = run_once(run_experiment, "kernels", scale=bench_scale)
    by_key = {(r["graph"], r["backend"]): r for r in out.rows}

    # Every backend ran on every workload and the bit-exactness check
    # inside the experiment did not trip.
    graphs = {g for g, _ in by_key}
    for g in graphs:
        for backend in ["vectorized", "incremental", "bincount", "auto"]:
            assert (g, backend) in by_key

    # when a compile provider passes its probe on this machine, the
    # compiled backend joins the table (and went through the same
    # bit-exactness check inside the experiment)
    from repro.core.kernels.jit import get_runtime

    if get_runtime() is not None:
        for g in graphs:
            assert (g, "jit") in by_key

    # The full paths re-aggregate everything; incremental never more.
    for g in graphs:
        full = by_key[(g, "vectorized")]
        assert full["aggregated_edges"] == full["active_edges"]
        incr = by_key[(g, "incremental")]
        assert incr["aggregated_edges"] <= incr["active_edges"]


def test_incremental_aggregates_strictly_less():
    """On MG-pruned LFR, the pair cache must save real aggregation work:
    strictly fewer adjacency entries than full re-aggregation, with a
    bit-identical result."""
    graph, _ = lfr_graph(
        LFRParams(n=1000, mu=0.25, min_degree=6, max_degree=40,
                  min_community=30, max_community=120, seed=11)
    )
    ref = run_phase1(graph, Phase1Config(pruning="mg", kernel="vectorized"))
    incr = run_phase1(graph, Phase1Config(pruning="mg", kernel="incremental"))

    np.testing.assert_array_equal(incr.communities, ref.communities)
    assert incr.modularity == ref.modularity

    full_edges = sum(h.active_edges for h in ref.history)
    incr_edges = sum(h.aggregated_edges or 0 for h in incr.history)
    assert incr_edges < full_edges
    # per-iteration: never more than the active adjacency
    for h in incr.history:
        assert (h.aggregated_edges or 0) <= h.active_edges
