"""Figure 6 bench: ablation of the MG and MM optimisations."""

from repro.bench.harness import run_experiment


def _x(cell: str) -> float:
    return float(cell.rstrip("x"))


def test_fig6_optimizations(run_once, bench_scale):
    out = run_once(run_experiment, "fig6", scale=bench_scale)
    rows = {r["graph"]: r for r in out.rows}
    avg = rows["Avg."]

    # Claim 1: MG pruning speeds up every graph (paper: 2.4x average).
    for g, row in rows.items():
        if g == "Avg.":
            continue
        assert _x(row["MG speedup"]) > 1.0, g
    assert _x(avg["MG speedup"]) > 1.5

    # Claim 2: memory management adds a further speedup (paper: 1.4x).
    assert 1.1 < _x(avg["MM speedup"]) < 2.0

    # Claim 3: combined speedup is the product (paper: 3.4x overall).
    assert _x(avg["total"]) > 2.0

    # Claim 4: MG helps most on graphs needing more iterations to converge
    # (paper: best on FR) — TW converges in a couple of iterations, so its
    # MG factor must be the smallest.
    factors = {
        g: _x(r["MG speedup"]) for g, r in rows.items() if g != "Avg."
    }
    assert min(factors, key=factors.get) == "TW"
