"""Stress bench: throughput across graph sizes (Section 5.6 analogue)."""

from repro.bench.harness import run_experiment


def test_stress_scaling(run_once, bench_scale):
    out = run_once(run_experiment, "stress", scale=bench_scale)
    rows = out.rows
    assert len(rows) == 4
    sizes = [r["n"] for r in rows]
    assert sizes == sorted(sizes)

    # Claim 1: MG gives a real measured wall-clock speedup at every size.
    for row in rows:
        assert float(row["speedup"].rstrip("x")) > 1.0, row["n"]

    # Claim 2: throughput does not collapse with size (engine stays
    # near-linear); allow a 3x band across an 8x size range.
    tps = [r["Medges/s"] for r in rows]
    assert max(tps) / max(min(tps), 1e-9) < 3.0

    # Claim 3: pruning stays substantial at the largest size.
    assert float(rows[-1]["pruned"].rstrip("%")) > 20.0
