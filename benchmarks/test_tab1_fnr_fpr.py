"""Table 1 bench: FNR/FPR of the four pruning strategies."""

from repro.bench.harness import run_experiment


def _pct(cell: str) -> float:
    return float(cell.rstrip("%"))


def test_table1_fnr_fpr(run_once, bench_scale):
    out = run_once(run_experiment, "table1", scale=bench_scale)
    rows = {r["graph"]: r for r in out.rows}
    assert set(rows) >= {"FR", "LJ", "OR", "TW", "UK", "EW", "HW", "Avg."}

    # Claim 1: SM and MG are false-negative-free on every graph.
    for g, row in rows.items():
        assert _pct(row["FNR SM"]) == 0.0, g
        assert _pct(row["FNR MG"]) == 0.0, g

    avg = rows["Avg."]
    # Claim 2: SM pays a huge FPR for its strictness (paper: 91.7%).
    assert _pct(avg["FPR SM"]) > 60.0

    # Claim 3: MG's average FPR beats SM's and RM's (paper: 32.2% vs
    # 91.7% / 39.6%).
    assert _pct(avg["FPR MG"]) < _pct(avg["FPR SM"])
    assert _pct(avg["FPR MG"]) < _pct(avg["FPR RM"]) + 5.0

    # Claim 4: RM / PM admit false negatives somewhere.
    assert _pct(avg["FNR RM"]) + _pct(avg["FNR PM"]) > 0.0

    # Claim 5: every strategy struggles on TW (weak community structure) —
    # its best strategy FPR is worse than the best on LJ.
    best_tw = min(_pct(rows["TW"][f"FPR {s}"]) for s in ["SM", "RM", "PM", "MG"])
    best_lj = min(_pct(rows["LJ"][f"FPR {s}"]) for s in ["SM", "RM", "PM", "MG"])
    assert best_tw > best_lj
