"""Tracer overhead: observability must stay cheap enough to leave on.

Two guarantees, both load-bearing for the rest of the suite:

* **disabled** — instrumented call sites cost one global read + branch;
  the shared NULL_SPAN means a run outside any session allocates nothing
  for tracing and is indistinguishable from the pre-obs code;
* **enabled** — full tracing + metrics on the smoke workload stays under
  5% wall-clock overhead. Both variants are warmed (the first traced run
  pays one-time lazy imports) and sampled interleaved, so CPU-frequency
  drift hits both sides equally and a scheduler hiccup can't fail the pin.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.core.phase1 import Phase1Config, run_phase1
from repro.graph.generators import load_dataset
from repro.obs import NULL_SPAN

#: overhead pin from the acceptance criteria
MAX_OVERHEAD = 0.05
#: runs per sample — averages per-run noise inside one timed batch
BATCH = 5
#: interleaved (plain, traced) sample pairs; each pair is adjacent in
#: time so frequency drift cancels in the per-pair ratio
ROUNDS = 12


def test_disabled_span_is_shared_singleton():
    # zero allocations on the hot path: every disabled span is the same
    # object, so a million engine iterations create no garbage
    spans = {id(obs.span("engine/decide", n=i)) for i in range(100)}
    assert spans == {id(NULL_SPAN)}


def test_traced_run_overhead_under_5pct(benchmark, bench_scale):
    graph = load_dataset("LJ", scale=min(bench_scale, 0.05))
    cfg = Phase1Config(pruning="mg")

    def plain():
        run_phase1(graph, cfg)

    def traced():
        with obs.session():  # in-memory artifacts: isolates tracer cost
            run_phase1(graph, cfg)

    def sample(fn):
        start = time.perf_counter()
        for _ in range(BATCH):
            fn()
        return (time.perf_counter() - start) / BATCH

    def measure():
        plain()
        traced()  # warm both variants (lazy imports, allocator, caches)
        ratios, plain_s = [], []
        for _ in range(ROUNDS):
            p = sample(plain)
            t = sample(traced)
            plain_s.append(p)
            ratios.append(t / p)
        # min-of-ratios: the pair measured in the quietest scheduler
        # window — the standard noise-robust overhead estimator
        return float(np.min(plain_s)), float(np.min(ratios))

    plain_s, ratio = benchmark.pedantic(measure, rounds=1, iterations=1)

    overhead = ratio - 1.0
    print(f"\nplain={plain_s * 1e3:.1f}ms "
          f"overhead={overhead * 100:+.1f}%")
    assert overhead < MAX_OVERHEAD, (
        f"tracing overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% pin"
    )


def test_traced_run_results_identical(bench_scale):
    graph = load_dataset("LJ", scale=min(bench_scale, 0.05))
    cfg = Phase1Config(pruning="mg")
    plain = run_phase1(graph, cfg)
    with obs.session():
        traced = run_phase1(graph, cfg)
    assert np.array_equal(plain.communities, traced.communities)
    assert traced.modularity == plain.modularity
