"""Tracer overhead: observability must stay cheap enough to leave on.

Two guarantees, both load-bearing for the rest of the suite:

* **disabled** — instrumented call sites cost one global read + branch;
  the shared NULL_SPAN means a run outside any session allocates nothing
  for tracing and is indistinguishable from the pre-obs code;
* **enabled** — full tracing + metrics on the smoke workload stays under
  5% wall-clock overhead. Both variants are warmed (the first traced run
  pays one-time lazy imports) and sampled interleaved, so CPU-frequency
  drift hits both sides equally and a scheduler hiccup can't fail the pin.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.core.phase1 import Phase1Config, run_phase1
from repro.graph.generators import load_dataset
from repro.obs import NULL_SPAN

#: overhead pin from the acceptance criteria
MAX_OVERHEAD = 0.05
#: runs per sample — averages per-run noise inside one timed batch
BATCH = 5
#: interleaved (plain, traced) sample pairs; each pair is adjacent in
#: time so frequency drift cancels in the per-pair ratio
ROUNDS = 12


def test_disabled_span_is_shared_singleton():
    # zero allocations on the hot path: every disabled span is the same
    # object, so a million engine iterations create no garbage
    spans = {id(obs.span("engine/decide", n=i)) for i in range(100)}
    assert spans == {id(NULL_SPAN)}


def test_traced_run_overhead_under_5pct(benchmark, bench_scale):
    graph = load_dataset("LJ", scale=min(bench_scale, 0.05))
    cfg = Phase1Config(pruning="mg")

    def plain():
        run_phase1(graph, cfg)

    def traced():
        with obs.session():  # in-memory artifacts: isolates tracer cost
            run_phase1(graph, cfg)

    def sample(fn):
        start = time.perf_counter()
        for _ in range(BATCH):
            fn()
        return (time.perf_counter() - start) / BATCH

    def measure():
        plain()
        traced()  # warm both variants (lazy imports, allocator, caches)
        ratios, plain_s = [], []
        for _ in range(ROUNDS):
            p = sample(plain)
            t = sample(traced)
            plain_s.append(p)
            ratios.append(t / p)
        # min-of-ratios: the pair measured in the quietest scheduler
        # window — the standard noise-robust overhead estimator
        return float(np.min(plain_s)), float(np.min(ratios))

    plain_s, ratio = benchmark.pedantic(measure, rounds=1, iterations=1)

    overhead = ratio - 1.0
    print(f"\nplain={plain_s * 1e3:.1f}ms "
          f"overhead={overhead * 100:+.1f}%")
    assert overhead < MAX_OVERHEAD, (
        f"tracing overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% pin"
    )


def test_serve_telemetry_overhead_under_5pct(benchmark):
    """The 5% pin extends to the serve path: a server with the full live
    telemetry stack on (HTTP listener, request tracing, SLO monitor)
    answers cache-hit requests within 5% of a bare server.

    Hits are the right probe: they are pure serve-layer work (parse,
    cache lookup, reply), so any per-request telemetry cost shows up
    undiluted by engine time. Same interleaved min-of-ratios estimator
    as the engine-path test.
    """
    import asyncio
    import tempfile

    from repro.graph.generators import ring_of_cliques
    from repro.serve import DetectionServer, ServeClient, ServeConfig

    graph = ring_of_cliques(8, 6)
    hits_per_sample = 50

    async def hit_latency(cfg: "ServeConfig") -> list:
        server = DetectionServer(cfg)
        host, port = await server.start()
        try:
            async with await ServeClient.connect(host, port) as client:
                fingerprint = await client.upload(graph)
                await client.detect(fingerprint, seed=0)  # warm the cache
                samples = []
                for _ in range(2 + ROUNDS):
                    start = time.perf_counter()
                    for _ in range(hits_per_sample):
                        await client.detect(fingerprint, seed=0)
                    samples.append(
                        (time.perf_counter() - start) / hits_per_sample
                    )
                return samples[2:]  # first two samples are warmup
        finally:
            await server.drain()

    def measure():
        with tempfile.TemporaryDirectory() as trace_dir:
            plain = asyncio.run(
                hit_latency(ServeConfig(port=0, runner="inline"))
            )
            telemetry = asyncio.run(
                hit_latency(ServeConfig(
                    port=0,
                    runner="inline",
                    metrics_port=0,
                    trace_dir=trace_dir,
                    slo="p99_ms=10000,error_rate=0.5",
                ))
            )
        ratios = [t / p for p, t in zip(plain, telemetry)]
        return float(np.min(plain)), float(np.min(ratios))

    plain_s, ratio = benchmark.pedantic(measure, rounds=1, iterations=1)

    overhead = ratio - 1.0
    print(f"\nhit={plain_s * 1e6:.0f}us overhead={overhead * 100:+.1f}%")
    assert overhead < MAX_OVERHEAD, (
        f"serve telemetry overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% pin"
    )


def test_traced_run_results_identical(bench_scale):
    graph = load_dataset("LJ", scale=min(bench_scale, 0.05))
    cfg = Phase1Config(pruning="mg")
    plain = run_phase1(graph, cfg)
    with obs.session():
        traced = run_phase1(graph, cfg)
    assert np.array_equal(plain.communities, traced.communities)
    assert traced.modularity == plain.modularity
