"""Figure 5 bench: GALA vs the state-of-the-art comparators."""

from repro.bench.harness import run_experiment


def _factor(cell: str) -> float:
    return float(cell.rstrip("x"))


def test_fig5_sota(run_once, bench_scale):
    out = run_once(run_experiment, "fig5", scale=bench_scale)
    rows = {r["graph"]: r for r in out.rows}
    avg = rows["Avg."]

    # Claim 1: GALA is fastest against every comparator on every graph.
    for g, row in rows.items():
        if g == "Avg.":
            continue
        for system in ["cuGraph", "Gunrock", "nido", "Grappolo (GPU)",
                       "Grappolo (GPU)*", "Grappolo (CPU)"]:
            assert _factor(row[system]) > 1.0, (g, system)

    # Claim 2: the paper's ordering of comparators holds on average
    # (Grappolo(GPU)* closest, then cuGraph, nido ~ Grappolo(GPU),
    # then Gunrock, then Grappolo(CPU) far behind).
    assert _factor(avg["Grappolo (GPU)*"]) < _factor(avg["cuGraph"])
    assert _factor(avg["cuGraph"]) < _factor(avg["Gunrock"])
    assert _factor(avg["nido"]) < _factor(avg["Gunrock"])
    assert _factor(avg["Grappolo (GPU)"]) < _factor(avg["Gunrock"])
    assert _factor(avg["Gunrock"]) < _factor(avg["Grappolo (CPU)"])

    # Claim 3: GALA's margin over the best GPU comparator is real (the
    # paper reports 6x; our laptop-scale factor is smaller but > 1.5x).
    assert _factor(avg["Grappolo (GPU)*"]) > 1.5
