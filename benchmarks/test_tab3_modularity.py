"""Table 3 bench: modularity preservation across pruning strategies."""

from repro.bench.harness import run_experiment


def test_table3_modularity(run_once, bench_scale):
    out = run_once(run_experiment, "table3", scale=bench_scale)

    for row in out.rows:
        # Claim 1 (the paper's central quality claim): MG and SM leave the
        # result bit-identical to the unpruned baseline on every graph.
        assert row["MG==base"] is True, row["graph"]
        assert row["SM==base"] is True, row["graph"]

        # Claim 2: RM's loss is small (paper: avg 0.00119, worst 0.00663
        # on TW) — allow a proportionally loose bound at laptop scale.
        base = float(row["Baseline/MG/SM"])
        rm_q = float(row["RM"].split()[0])
        assert abs(base - rm_q) < 0.05, row["graph"]

    # Claim 3: UK (near-perfect structure) shows ~zero loss for RM.
    uk = next(r for r in out.rows if r["graph"] == "UK")
    uk_loss = abs(float(uk["Baseline/MG/SM"]) - float(uk["RM"].split()[0]))
    assert uk_loss < 0.001
