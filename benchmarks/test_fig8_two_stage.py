"""Figure 8 bench: two-stage pruning breakdown."""

from repro.bench.harness import run_experiment


def test_fig8_two_stage(run_once, bench_scale):
    out = run_once(run_experiment, "fig8", scale=bench_scale)
    by_key = {(r["graph"], r["config"]): r for r in out.rows}
    graphs = {g for g, _ in by_key}

    for g in graphs:
        b = by_key[(g, "B")]
        p1 = by_key[(g, "P1")]
        p2 = by_key[(g, "P2")]

        # Claim 1: in the baseline, DecideAndMove dominates (paper: 65.5%).
        assert b["DecideAndMove%"] > b["weight update%"]

        # Claim 2: after pruning DecideAndMove only (P1), weight updating
        # becomes the bottleneck (paper: 45.7% of runtime).
        assert p1["weight update%"] > p1["DecideAndMove%"]

        # Claim 3: delta updating (P2) shifts the bottleneck back to
        # DecideAndMove.
        assert p2["DecideAndMove%"] > p2["weight update%"]

        # Claim 4: each stage reduces total cost.
        assert b["total (Mcyc)"] > p1["total (Mcyc)"] > p2["total (Mcyc)"]

    # Claim 5: the weight-update speedup P1 -> P2 is substantial
    # (paper: 7.3x; scale-dependent here).
    speedups = [
        float(n.split("= ")[1].split("x")[0])
        for n in out.notes
        if "weight-update speedup" in n
    ]
    assert speedups and min(speedups) > 1.5
