"""Micro-benchmarks of the core hot paths (real wall-clock, multi-round
pytest-benchmark statistics).

These complement the macro experiments: they measure the library's actual
Python-level throughput on the operations the paper optimises, and they
encode the two *measured* (not simulated) speedup claims that survive
translation to NumPy — MG pruning reduces wall-clock, and delta updating
beats recomputation when few vertices move.
"""

import numpy as np
import pytest

from repro.core.kernels.vectorized import decide_moves
from repro.core.phase1 import Phase1Config, run_phase1
from repro.core.state import CommunityState
from repro.core.weights import delta_update, recompute_all
from repro.graph.generators import load_dataset
from repro.metrics import normalized_mutual_information


@pytest.fixture(scope="module")
def graph():
    return load_dataset("LJ", 0.25)


@pytest.fixture(scope="module")
def mid_state(graph):
    """State several iterations into phase 1 (the pruning-relevant regime)."""
    result = run_phase1(graph, Phase1Config(pruning="none", max_iterations=6))
    return result.state


def test_decide_and_move_full(benchmark, graph, mid_state):
    idx = np.arange(graph.n)
    benchmark(decide_moves, mid_state, idx)


def test_decide_and_move_pruned(benchmark, graph, mid_state):
    from repro.core.pruning.modularity_gain import ModularityGainPruning

    active = ~ModularityGainPruning().inactive_mask(mid_state, True)
    idx = np.flatnonzero(active)
    assert len(idx) < graph.n  # pruning must bite for this bench to mean anything
    benchmark(decide_moves, mid_state, idx)


def test_phase1_baseline(benchmark, graph):
    benchmark.pedantic(
        run_phase1, args=(graph, Phase1Config(pruning="none")),
        rounds=3, iterations=1,
    )


def test_phase1_gala(benchmark, graph):
    benchmark.pedantic(
        run_phase1, args=(graph, Phase1Config(pruning="mg")),
        rounds=3, iterations=1,
    )


def test_weight_update_recompute(benchmark, graph, mid_state):
    state = mid_state.copy()
    moved = np.zeros(graph.n, dtype=bool)
    benchmark(recompute_all, state, state.comm, moved)


def test_weight_update_delta_few_movers(benchmark, graph, mid_state):
    rng = np.random.default_rng(0)
    movers = rng.choice(graph.n, size=graph.n // 50, replace=False)

    def step():
        state = mid_state.copy()
        prev = state.comm.copy()
        state.comm = state.comm.copy()
        state.comm[movers] = prev[movers[::-1]]
        moved = state.comm != prev
        delta_update(state, prev, moved)

    benchmark(step)


def test_nmi_throughput(benchmark):
    rng = np.random.default_rng(1)
    a = rng.integers(0, 200, 100_000)
    b = rng.integers(0, 200, 100_000)
    benchmark(normalized_mutual_information, a, b)
