"""Comparator implementations for the paper's Figure 5.

* :mod:`sequential` — the original sequential Louvain (Blondel et al.
  2008), with immediate state updates; the quality reference.
* :mod:`batched` — nido's batched semi-asynchronous phase 1, functional.
* :mod:`designs` — simulated-GPU re-implementations of the comparators'
  DecideAndMove *designs* on our cost model: Grappolo's global-memory
  hashtable BSP, cuGraph's sort/segmented-reduce formulation, Gunrock's
  frontier advance/filter, and nido's batched subgraph processing. All
  produce real community assignments; their simulated runtimes differ
  because their data paths do.
"""

from repro.baselines.sequential import SequentialResult, sequential_louvain
from repro.baselines.batched import BatchedResult, run_batched_phase1
from repro.baselines.designs import (
    BaselineResult,
    run_baseline,
    run_gala_simulated,
    BASELINE_DESIGNS,
)

__all__ = [
    "SequentialResult",
    "sequential_louvain",
    "BatchedResult",
    "run_batched_phase1",
    "BaselineResult",
    "run_baseline",
    "run_gala_simulated",
    "BASELINE_DESIGNS",
]
