"""Sequential Louvain (Blondel et al. 2008) with immediate updates.

Unlike the BSP engine, state updates take effect the moment each vertex is
processed ("sequential algorithms update the state instantly as each vertex
is processed" — paper Section 2.3), which is the classic formulation and a
useful independent quality reference: the BSP engine's final modularity
should land in the same neighbourhood.

This implementation is deliberately plain Python + dicts per vertex — it is
a correctness baseline, not a performance one (the paper's Grappolo (CPU)
comparator plays the same role, 222x slower than GALA).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.modularity import modularity
from repro.graph.coarsen import coarsen_graph
from repro.graph.csr import CSRGraph


@dataclass
class SequentialResult:
    communities: np.ndarray
    modularity: float
    num_rounds: int
    num_passes: int


def _one_level(graph: CSRGraph, theta: float, max_passes: int) -> tuple[np.ndarray, int]:
    """One phase-1 optimisation with immediate updates; returns
    (communities, passes)."""
    n = graph.n
    comm = np.arange(n, dtype=np.int64)
    strength = graph.strength
    comm_strength = strength.copy()
    m = graph.total_weight
    two_m = graph.two_m
    if m == 0.0:
        return comm, 0

    passes = 0
    improved = True
    while improved and passes < max_passes:
        improved = False
        passes += 1
        for v in range(n):
            cv = int(comm[v])
            sv = strength[v]
            # weights to neighbouring communities
            d_by_comm: dict[int, float] = {}
            lo, hi = graph.indptr[v], graph.indptr[v + 1]
            for u, w in zip(graph.indices[lo:hi], graph.weights[lo:hi]):
                cu = int(comm[u])
                d_by_comm[cu] = d_by_comm.get(cu, 0.0) + float(w)
            # remove v from its community (immediate-update semantics)
            comm_strength[cv] -= sv
            d_own = d_by_comm.get(cv, 0.0)
            best_c, best_gain = cv, (d_own - comm_strength[cv] * sv / two_m) / m
            for c, d in d_by_comm.items():
                if c == cv:
                    continue
                gain = (d - comm_strength[c] * sv / two_m) / m
                if gain > best_gain or (gain == best_gain and c < best_c):
                    best_c, best_gain = c, gain
            comm[v] = best_c
            comm_strength[best_c] += sv
            if best_c != cv:
                improved = True
    return comm, passes


def sequential_louvain(
    graph: CSRGraph,
    theta: float = 1e-6,
    max_rounds: int = 20,
    max_passes: int = 100,
) -> SequentialResult:
    """Full sequential Louvain: repeated local passes + contraction."""
    current = graph
    levels: list[np.ndarray] = []
    mappings: list[np.ndarray] = []
    total_passes = 0
    best_q = -np.inf

    for _ in range(max_rounds):
        comm, passes = _one_level(current, theta, max_passes)
        total_passes += passes
        coarse, mapping = coarsen_graph(current, comm)
        levels.append(comm)
        mappings.append(mapping)
        # project down to the original graph to score
        flat = levels[-1]
        for mp in reversed(mappings[:-1]):
            flat = flat[mp]
        q = modularity(graph, flat)
        if q - best_q < theta or coarse.n == current.n:
            best_q = max(best_q, q)
            break
        best_q = q
        current = coarse

    flat = levels[-1]
    for mp in reversed(mappings[:-1]):
        flat = flat[mp]
    return SequentialResult(
        communities=flat,
        modularity=float(modularity(graph, flat)),
        num_rounds=len(levels),
        num_passes=total_passes,
    )
