"""Comparator system designs on the shared cost model (Figure 5).

Every comparator in the paper is a BSP Louvain — what differs is the
DecideAndMove *data path* and whether computation is pruned. Each design
below re-implements those choices: the functional result comes from the
same phase-1 engine (configured with the design's pruning and weight-update
scheme), and the design's per-edge/per-vertex cycle charges come from
walking its data path through our cost model, so the runtime *ordering*
emerges from the designs rather than from hard-coded speedups.

Per-edge cost derivations (cost model defaults: coalesced global access
12.5 cycles, scattered global 400, shared 25, global atomic +200, shared
atomic +30, warp primitive 6):

* ``gala``              — shuffle kernel for small degrees (coalesced row
  loads 25 + scattered C[u] 400 + amortised D_V gather ~100 + warp
  primitives ~1 + ALU 4 ≈ 530), hierarchical hash for large degrees
  (row 25 + C[u] 400 + shared probe 25 + shared atomic 55 ≈ 505): ~520.
* ``grappolo_gpu_star`` — the paper's modernised Grappolo: shared-memory
  hashtable for small workloads (≈ 560) but global-memory hashing for the
  rest (row 25 + C[u] 400 + global probe ~1.3x400 + global atomic 600 ≈
  1545), no gain-based pruning, full weight recomputation: ~900.
* ``grappolo_gpu``      — the original release: global-only hashtable for
  everything (~1545) plus poorer occupancy on current hardware (x1.5).
* ``cugraph``           — sort-based: two radix sorts of 64-bit key-value
  pairs per iteration (2 sorts x 8 passes x read+write x 2 arrays,
  coalesced: ≈ 800) + scattered C[u] gather 400 + segmented reductions and
  materialisation passes ≈ 400: ~1600, no pruning.
* ``gunrock``           — generic advance/filter framework: the cuGraph
  pipeline expressed as unfused frontier operators, each re-reading the
  frontier from global memory (x~3 on the sort path) ≈ 4800.
* ``nido``              — batched subgraphs: global hashtable (~1545) plus
  re-streaming each batch over PCIe every iteration (16 B/edge at a
  ~62x bandwidth disadvantage vs HBM ≈ 780) ≈ 2300, plus large
  per-iteration batch-management overhead.
* ``grappolo_cpu``      — 2-socket CPU: no memory-level parallelism for
  the scattered accesses and ~50x lower aggregate throughput on this
  workload: ~26000.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.phase1 import Phase1Config, Phase1Result, run_phase1
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class SystemDesign:
    """One comparator's algorithmic + data-path configuration."""

    name: str
    #: pruning strategy the system actually implements
    pruning: str
    #: 'delta' for GALA's efficient updating, 'recompute' otherwise
    weight_update: str
    #: DecideAndMove cycles per adjacency entry
    decide_cycles_per_edge: float
    #: fixed DecideAndMove cycles per processed vertex
    decide_cycles_per_vertex: float
    #: weight-update cycles per adjacency entry (applied to the moved-
    #: vertex edges for 'delta', to every edge for 'recompute')
    update_cycles_per_edge: float
    #: fixed cycles per iteration (kernel launches, batching, transfers)
    per_iteration_overhead: float = 2e4


GALA_DESIGN = SystemDesign(
    name="GALA",
    pruning="mg",
    weight_update="delta",
    decide_cycles_per_edge=520.0,
    decide_cycles_per_vertex=30.0,
    update_cycles_per_edge=450.0,
    per_iteration_overhead=2e4,
)

BASELINE_DESIGNS: dict[str, SystemDesign] = {
    "cuGraph": SystemDesign(
        name="cuGraph",
        pruning="none",
        weight_update="recompute",
        decide_cycles_per_edge=1600.0,
        decide_cycles_per_vertex=40.0,
        update_cycles_per_edge=800.0,
        per_iteration_overhead=1e5,
    ),
    "Gunrock": SystemDesign(
        name="Gunrock",
        pruning="none",
        weight_update="recompute",
        decide_cycles_per_edge=4800.0,
        decide_cycles_per_vertex=120.0,
        update_cycles_per_edge=2400.0,
        per_iteration_overhead=3e5,
    ),
    "nido": SystemDesign(
        name="nido",
        pruning="none",
        weight_update="recompute",
        decide_cycles_per_edge=2300.0,
        decide_cycles_per_vertex=60.0,
        update_cycles_per_edge=1000.0,
        per_iteration_overhead=5e5,
    ),
    "Grappolo (GPU)": SystemDesign(
        name="Grappolo (GPU)",
        pruning="none",
        weight_update="recompute",
        decide_cycles_per_edge=2300.0,
        decide_cycles_per_vertex=50.0,
        update_cycles_per_edge=1150.0,
        per_iteration_overhead=5e4,
    ),
    "Grappolo (GPU)*": SystemDesign(
        name="Grappolo (GPU)*",
        pruning="none",
        weight_update="recompute",
        decide_cycles_per_edge=900.0,
        decide_cycles_per_vertex=40.0,
        update_cycles_per_edge=450.0,
        per_iteration_overhead=5e4,
    ),
    "Grappolo (CPU)": SystemDesign(
        name="Grappolo (CPU)",
        pruning="none",
        weight_update="recompute",
        decide_cycles_per_edge=26000.0,
        decide_cycles_per_vertex=400.0,
        update_cycles_per_edge=13000.0,
        per_iteration_overhead=1e4,
    ),
}


@dataclass
class BaselineResult:
    """Functional result + simulated runtime of one design."""

    design: SystemDesign
    phase1: Phase1Result
    simulated_cycles: float
    clock_hz: float = 1.41e9

    @property
    def simulated_seconds(self) -> float:
        return self.simulated_cycles / self.clock_hz

    @property
    def modularity(self) -> float:
        return self.phase1.modularity

    @property
    def communities(self) -> np.ndarray:
        return self.phase1.communities


def estimate_cycles(
    design: SystemDesign, result: Phase1Result, graph: CSRGraph
) -> float:
    """Charge ``design``'s data path for ``result``'s recorded workload."""
    total = 0.0
    all_edges = graph.num_directed_edges
    for rec in result.history:
        total += (
            rec.active_edges * design.decide_cycles_per_edge
            + rec.num_active * design.decide_cycles_per_vertex
            + design.per_iteration_overhead
        )
        if design.weight_update == "delta":
            total += rec.moved_edges * design.update_cycles_per_edge
        else:
            total += all_edges * design.update_cycles_per_edge
    return total


def run_baseline(
    graph: CSRGraph,
    design: SystemDesign,
    theta: float = 1e-6,
    max_iterations: int = 500,
) -> BaselineResult:
    """Run one comparator design: functional phase 1 + simulated cycles."""
    result = run_phase1(
        graph,
        Phase1Config(
            pruning=design.pruning,
            weight_update=design.weight_update,
            theta=theta,
            max_iterations=max_iterations,
        ),
    )
    cycles = estimate_cycles(design, result, graph)
    return BaselineResult(design=design, phase1=result, simulated_cycles=cycles)


def run_gala_simulated(
    graph: CSRGraph, theta: float = 1e-6, max_iterations: int = 500
) -> BaselineResult:
    """GALA under the same estimator (the Figure 5 'GALA' bar)."""
    return run_baseline(graph, GALA_DESIGN, theta, max_iterations)
