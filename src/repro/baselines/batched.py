"""Batched semi-asynchronous Louvain (the nido design [16], functional).

nido processes the graph in vertex *batches*: within an iteration, batch
``b``'s DecideAndMove sees the state updates already produced by batches
``0..b-1`` of the same iteration. This sits between the fully synchronous
BSP engine (batch count 1 over all vertices... actually n batches of BSP
semantics) and the sequential algorithm (batch size 1 with immediate
updates):

* more batches  -> fresher state -> usually fewer iterations to converge
  and slightly better per-iteration gains (the sequential algorithm's
  advantage);
* but each batch boundary is a synchronisation point, which is exactly
  why the real nido pays the overheads Figure 5 charges it for.

This functional implementation lets us *measure* that trade-off rather
than assert it (see ``benchmarks/test_batched_baseline.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import ConvergenceTracker
from repro.core.kernels.vectorized import decide_moves
from repro.core.state import CommunityState
from repro.core.weights import delta_update
from repro.graph.csr import CSRGraph


@dataclass
class BatchedResult:
    communities: np.ndarray
    modularity: float
    num_iterations: int
    num_batches: int
    #: modularity after every full iteration (sweep over all batches)
    history: list[float]


def run_batched_phase1(
    graph: CSRGraph,
    num_batches: int = 4,
    theta: float = 1e-6,
    patience: int = 3,
    max_iterations: int = 500,
    remove_self: bool = True,
    resolution: float = 1.0,
) -> BatchedResult:
    """Phase 1 with intra-iteration batch synchronisation.

    ``num_batches=1`` reduces exactly to one BSP sweep per iteration (the
    standard engine's semantics; tested). Batches are contiguous vertex
    ranges, as in nido's partitioned subgraph processing.
    """
    if num_batches < 1:
        raise ValueError("num_batches must be >= 1")
    n = graph.n
    state = CommunityState.singletons(graph, resolution=resolution)
    boundaries = np.linspace(0, n, num_batches + 1).astype(np.int64)

    q = state.modularity()
    # The batched baseline reports the best assignment seen (it never keeps
    # a final oscillating sweep), so it reads the tracker's best directly.
    tracker = ConvergenceTracker(
        theta=theta, patience=patience, initial_q=q, snapshot=state.comm.copy()
    )
    history: list[float] = []

    for _ in range(max_iterations):
        total_moved = 0
        for b in range(num_batches):
            batch = np.arange(boundaries[b], boundaries[b + 1], dtype=np.int64)
            if len(batch) == 0:
                continue
            result = decide_moves(state, batch, remove_self=remove_self)
            next_comm = result.next_comm(state.comm)
            moved = next_comm != state.comm
            total_moved += int(moved.sum())
            if moved.any():
                prev = state.comm
                state.comm = next_comm
                # state refresh *inside* the iteration: later batches see it
                delta_update(state, prev, moved)
                state.refresh_community_aggregates()
        next_q = state.modularity()
        history.append(next_q)
        tracker.update(next_q, state.comm.copy)
        if tracker.converged or total_moved == 0:
            break

    return BatchedResult(
        communities=tracker.best,
        modularity=float(tracker.best_q),
        num_iterations=len(history),
        num_batches=num_batches,
        history=history,
    )
