"""FNR / FPR aggregation over oracle-instrumented engine runs.

Paper Table 1 definitions:

* **FNR** — "proportion of misclassified vertices that will be moved":
  of the vertices the unpruned algorithm would move this iteration, the
  fraction the strategy predicted inactive.
* **FPR** — "proportion of misclassified vertices that will remain
  unmoved": of the vertices that would stay put, the fraction the strategy
  still processed.

Both are averaged over the *predicted* iterations (iteration 0, where
every strategy processes everything by construction, is excluded).

All helpers consume the unified :class:`~repro.core.engine.IterationTrace`
history, so they accept results from any engine-driven runtime — local
(:func:`repro.core.phase1.run_phase1`), multi-GPU, or distributed — run
with ``oracle=True``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import EngineResult, IterationTrace


@dataclass(frozen=True)
class PruningRates:
    """Aggregated misprediction rates of one strategy on one graph."""

    strategy: str
    graph: str
    fnr: float
    fpr: float
    iterations: int
    total_false_negatives: int
    total_false_positives: int

    def as_row(self) -> dict:
        return {
            "graph": self.graph,
            "strategy": self.strategy,
            "FNR": f"{100 * self.fnr:.2f}%",
            "FPR": f"{100 * self.fpr:.2f}%",
        }


def _predicted(history: list[IterationTrace]) -> list[IterationTrace]:
    recs = [h for h in history if h.predicted]
    for h in recs:
        if h.oracle_moved is None:
            raise ValueError(
                "history lacks oracle fields; run phase 1 with oracle=True"
            )
    return recs


def pruning_rates(
    result: EngineResult, strategy: str = "", graph: str = ""
) -> PruningRates:
    """Aggregate FNR/FPR from an oracle-instrumented run.

    Following the paper ("the average FNR and FPR ... over all
    iterations"), per-iteration rates are averaged with equal weight;
    iterations with an empty denominator (nothing would move / nothing
    would stay) are skipped for that rate.
    """
    recs = _predicted(result.history)
    fnrs, fprs = [], []
    tot_fn = tot_fp = 0
    for h in recs:
        n = h.num_active + h.num_inactive
        moved = h.oracle_moved or 0
        unmoved = n - moved
        tot_fn += h.false_negatives or 0
        tot_fp += h.false_positives or 0
        if moved > 0:
            fnrs.append((h.false_negatives or 0) / moved)
        if unmoved > 0:
            fprs.append((h.false_positives or 0) / unmoved)
    return PruningRates(
        strategy=strategy,
        graph=graph,
        fnr=float(np.mean(fnrs)) if fnrs else 0.0,
        fpr=float(np.mean(fprs)) if fprs else 0.0,
        iterations=len(recs),
        total_false_negatives=tot_fn,
        total_false_positives=tot_fp,
    )


def average_inactive_rate(result: EngineResult, skip_first: bool = True) -> float:
    """Mean fraction of pruned vertices per iteration (Figures 1b / 7)."""
    recs = [h for h in result.history if h.predicted or not skip_first]
    if not recs:
        return 0.0
    return float(np.mean([h.inactive_rate for h in recs]))


def inactive_rate_series(result: EngineResult) -> np.ndarray:
    """Per-iteration inactive rate, for the iteration-by-iteration plots."""
    return np.array([h.inactive_rate for h in result.history])


def unmoved_rate_series(result: EngineResult) -> np.ndarray:
    """Per-iteration fraction of vertices that did not move (Figure 1b)."""
    return np.array([h.unmoved_rate for h in result.history])
