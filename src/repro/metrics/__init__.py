"""Quality and prediction metrics.

* :mod:`nmi` — Normalized Mutual Information against ground-truth
  communities (paper Table 4).
* :mod:`fnr_fpr` — false-negative / false-positive rates of pruning
  strategies from oracle-instrumented phase-1 runs (paper Table 1).
* :mod:`quality` — partition-quality measures beyond modularity
  (coverage, performance, conductance) used by the examples.
* :mod:`agreement` — partition-agreement measures beyond NMI (adjusted
  Rand index, purity, variation of information).
"""

from repro.metrics.nmi import normalized_mutual_information, contingency_table
from repro.metrics.fnr_fpr import PruningRates, pruning_rates, average_inactive_rate
from repro.metrics.quality import coverage, partition_performance, mean_conductance
from repro.metrics.agreement import (
    adjusted_rand_index,
    purity,
    variation_of_information,
)

__all__ = [
    "normalized_mutual_information",
    "contingency_table",
    "PruningRates",
    "pruning_rates",
    "average_inactive_rate",
    "coverage",
    "partition_performance",
    "mean_conductance",
    "adjusted_rand_index",
    "purity",
    "variation_of_information",
]
