"""Partition-agreement measures beyond NMI.

* :func:`adjusted_rand_index` — pair-counting agreement, corrected for
  chance (Hubert & Arabie); 1 = identical partitions, ~0 = random.
* :func:`purity` — each detected cluster votes for its dominant
  ground-truth class; the classic (if biased) clustering accuracy.
* :func:`variation_of_information` — Meilă's metric distance between
  partitions (0 = identical; lower is better), in nats.

All are computed from the sparse contingency table shared with the NMI
implementation, so they scale to large vertex counts.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.nmi import contingency_table


def _comb2(x: np.ndarray) -> np.ndarray:
    return x * (x - 1) / 2.0


def adjusted_rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """ARI in [-1, 1]; 1 for identical partitions, ~0 for independent ones.

    ``ARI = (sum_ij C(n_ij,2) - E) / (max_index - E)`` with the usual
    hypergeometric expectation ``E``.
    """
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    n = len(a)
    if n == 0:
        return 1.0
    table = contingency_table(a, b)
    nij = table.tocoo().data
    row = np.asarray(table.sum(axis=1)).ravel()
    col = np.asarray(table.sum(axis=0)).ravel()
    sum_ij = _comb2(nij).sum()
    sum_a = _comb2(row).sum()
    sum_b = _comb2(col).sum()
    total = _comb2(np.array([n]))[0]
    if total == 0:
        return 1.0
    expected = sum_a * sum_b / total
    max_index = (sum_a + sum_b) / 2.0
    denom = max_index - expected
    if denom == 0.0:
        # both partitions trivial (all-singletons or single cluster)
        return 1.0 if sum_ij == max_index else 0.0
    return float((sum_ij - expected) / denom)


def purity(labels_pred: np.ndarray, labels_true: np.ndarray) -> float:
    """Fraction of vertices in their cluster's majority true class.

    Asymmetric: ``purity(pred, true)``. Trivially 1.0 for all-singleton
    predictions — report it next to ARI/NMI, never alone.
    """
    pred = np.asarray(labels_pred)
    true = np.asarray(labels_true)
    n = len(pred)
    if n == 0:
        return 1.0
    table = contingency_table(pred, true).tocsr()
    majorities = table.max(axis=1).toarray().ravel()
    return float(majorities.sum() / n)


def variation_of_information(
    labels_a: np.ndarray, labels_b: np.ndarray
) -> float:
    """VI(A, B) = H(A) + H(B) - 2 I(A; B), in nats. A true metric on the
    space of partitions; 0 iff the partitions are identical."""
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    n = len(a)
    if n == 0:
        return 0.0
    table = contingency_table(a, b).tocoo()
    pij = table.data / n
    row = np.asarray(table.tocsr().sum(axis=1)).ravel() / n
    col = np.asarray(table.tocsr().sum(axis=0)).ravel() / n
    h_a = float(-(row[row > 0] * np.log(row[row > 0])).sum())
    h_b = float(-(col[col > 0] * np.log(col[col > 0])).sum())
    pi = row[table.row]
    pj = col[table.col]
    mi = float((pij * np.log(pij / (pi * pj))).sum())
    return max(0.0, h_a + h_b - 2.0 * mi)
