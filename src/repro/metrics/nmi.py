"""Normalized Mutual Information between two partitions (Strehl & Ghosh).

Used for the paper's Table 4: agreement between detected communities and
the LFR benchmark's planted ground truth. NMI ranges over [0, 1], 1 being a
perfect match up to label permutation. We use the arithmetic-mean
normalisation ``NMI = 2 I(X;Y) / (H(X) + H(Y))``, the convention of the
paper's reference [52].
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def contingency_table(labels_a: np.ndarray, labels_b: np.ndarray) -> sp.csr_matrix:
    """Sparse contingency matrix ``N_ij = |cluster_i(A) ∩ cluster_j(B)|``.

    Labels are compacted internally, so arbitrary non-negative ids work.
    """
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.shape != b.shape:
        raise ValueError("partitions must label the same vertices")
    _, ai = np.unique(a, return_inverse=True)
    _, bi = np.unique(b, return_inverse=True)
    n = len(a)
    table = sp.coo_matrix(
        (np.ones(n), (ai, bi)), shape=(ai.max() + 1 if n else 0, bi.max() + 1 if n else 0)
    ).tocsr()
    table.sum_duplicates()
    return table


def _entropy(counts: np.ndarray, n: int) -> float:
    p = counts[counts > 0] / n
    return float(-(p * np.log(p)).sum())


def normalized_mutual_information(
    labels_a: np.ndarray, labels_b: np.ndarray
) -> float:
    """NMI of two partitions; 1.0 means identical up to relabelling.

    Degenerate cases follow the usual convention: if both partitions are
    trivial (a single cluster each, zero entropy) they agree, NMI = 1; if
    only one is trivial, NMI = 0.
    """
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    n = len(a)
    if n == 0:
        return 1.0
    table = contingency_table(a, b)
    row = np.asarray(table.sum(axis=1)).ravel()
    col = np.asarray(table.sum(axis=0)).ravel()
    h_a = _entropy(row, n)
    h_b = _entropy(col, n)
    if h_a == 0.0 and h_b == 0.0:
        return 1.0
    if h_a == 0.0 or h_b == 0.0:
        return 0.0
    nij = table.tocoo()
    pij = nij.data / n
    # I(X;Y) = sum p_ij log(p_ij / (p_i p_j))
    pi = row[nij.row] / n
    pj = col[nij.col] / n
    mi = float((pij * np.log(pij / (pi * pj))).sum())
    return float(np.clip(2.0 * mi / (h_a + h_b), 0.0, 1.0))
