"""Partition-quality measures beyond modularity.

Modularity is the paper's objective, but the examples also report classic
complementary measures so users can sanity-check detected structure:

* **coverage** — fraction of edge weight falling inside communities;
* **performance** — fraction of vertex pairs "classified correctly"
  (intra-community edges plus absent inter-community pairs);
* **conductance** — per community, the cut weight over the smaller side's
  volume; low mean conductance means well-separated communities.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph


#: adjacency entries scanned per block — bounds peak heap at O(n + chunk)
#: so the metrics stay usable on memory-mapped graphs (docs/scale.md)
_CHUNK_EDGES = 1 << 20


def _iter_edge_blocks(graph: CSRGraph):
    """Yield ``(row_ids, nbrs, weights)`` in bounded consecutive blocks.

    Concatenating the blocks reproduces the whole-graph edge arrays in
    order, so order-sensitive accumulations (``np.add.at``) are unchanged.
    """
    indptr = graph.indptr
    start = 0
    while start < graph.n:
        stop = int(
            np.searchsorted(indptr, indptr[start] + _CHUNK_EDGES, side="right") - 1
        )
        stop = min(max(stop, start + 1), graph.n)
        lo, hi = int(indptr[start]), int(indptr[stop])
        rows = np.repeat(
            np.arange(start, stop), np.diff(indptr[start : stop + 1])
        )
        yield rows, np.asarray(graph.indices[lo:hi]), np.asarray(
            graph.weights[lo:hi]
        )
        start = stop


def _intra_weight(graph: CSRGraph, comm: np.ndarray) -> float:
    """Undirected intra-community weight, loops included once."""
    total = 0.0
    for rows, nbrs, weights in _iter_edge_blocks(graph):
        intra = comm[rows] == comm[nbrs]
        total += float(weights[intra].sum())
    return total / 2.0 + float(graph.self_weight.sum())


def coverage(graph: CSRGraph, communities: np.ndarray) -> float:
    """Intra-community edge weight over total edge weight, in [0, 1]."""
    comm = np.asarray(communities)
    m = graph.total_weight
    return _intra_weight(graph, comm) / m if m > 0 else 1.0


def partition_performance(graph: CSRGraph, communities: np.ndarray) -> float:
    """Fraction of correctly classified vertex pairs (unweighted).

    A pair is correct if it is an intra-community edge or an absent
    inter-community pair. O(n + m); uses community sizes for the pair
    counts rather than materialising pairs.
    """
    comm = np.asarray(communities)
    n = graph.n
    if n < 2:
        return 1.0
    total_pairs = n * (n - 1) / 2.0
    sizes = np.bincount(comm)
    intra_pairs = float((sizes * (sizes - 1) / 2.0).sum())
    intra_count = inter_count = 0
    for rows, nbrs, _ in _iter_edge_blocks(graph):
        intra_blk = int(np.count_nonzero(comm[rows] == comm[nbrs]))
        intra_count += intra_blk
        inter_count += len(rows) - intra_blk
    intra_edges = intra_count / 2.0
    inter_edges = inter_count / 2.0
    inter_pairs = total_pairs - intra_pairs
    correct = intra_edges + (inter_pairs - inter_edges)
    return correct / total_pairs


def mean_conductance(graph: CSRGraph, communities: np.ndarray) -> float:
    """Mean conductance over non-empty communities (lower is better).

    ``phi(C) = cut(C) / min(vol(C), vol(V \\ C))`` with weighted volumes;
    communities spanning the whole graph get conductance 0 by convention.
    """
    comm = np.asarray(communities)
    _, compact = np.unique(comm, return_inverse=True)
    k = compact.max() + 1 if len(compact) else 0
    if k <= 1:
        return 0.0
    cut = np.zeros(k, dtype=np.float64)
    for rows, nbrs, weights in _iter_edge_blocks(graph):
        inter = compact[rows] != compact[nbrs]
        if np.any(inter):
            np.add.at(cut, compact[rows[inter]], weights[inter])
    vol = np.bincount(compact, weights=graph.strength, minlength=k)
    total = graph.two_m
    denom = np.minimum(vol, total - vol)
    phis = np.where(denom > 0, cut / np.maximum(denom, 1e-300), 0.0)
    return float(phis.mean())
