"""Partition-quality measures beyond modularity.

Modularity is the paper's objective, but the examples also report classic
complementary measures so users can sanity-check detected structure:

* **coverage** — fraction of edge weight falling inside communities;
* **performance** — fraction of vertex pairs "classified correctly"
  (intra-community edges plus absent inter-community pairs);
* **conductance** — per community, the cut weight over the smaller side's
  volume; low mean conductance means well-separated communities.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph


def _intra_weight(graph: CSRGraph, comm: np.ndarray) -> float:
    """Undirected intra-community weight, loops included once."""
    row = np.repeat(np.arange(graph.n), np.diff(graph.indptr))
    intra = comm[row] == comm[graph.indices]
    return float(graph.weights[intra].sum()) / 2.0 + float(graph.self_weight.sum())


def coverage(graph: CSRGraph, communities: np.ndarray) -> float:
    """Intra-community edge weight over total edge weight, in [0, 1]."""
    comm = np.asarray(communities)
    m = graph.total_weight
    return _intra_weight(graph, comm) / m if m > 0 else 1.0


def partition_performance(graph: CSRGraph, communities: np.ndarray) -> float:
    """Fraction of correctly classified vertex pairs (unweighted).

    A pair is correct if it is an intra-community edge or an absent
    inter-community pair. O(n + m); uses community sizes for the pair
    counts rather than materialising pairs.
    """
    comm = np.asarray(communities)
    n = graph.n
    if n < 2:
        return 1.0
    total_pairs = n * (n - 1) / 2.0
    sizes = np.bincount(comm)
    intra_pairs = float((sizes * (sizes - 1) / 2.0).sum())
    row = np.repeat(np.arange(n), np.diff(graph.indptr))
    intra_mask = comm[row] == comm[graph.indices]
    intra_edges = float(intra_mask.sum()) / 2.0
    inter_edges = float((~intra_mask).sum()) / 2.0
    inter_pairs = total_pairs - intra_pairs
    correct = intra_edges + (inter_pairs - inter_edges)
    return correct / total_pairs


def mean_conductance(graph: CSRGraph, communities: np.ndarray) -> float:
    """Mean conductance over non-empty communities (lower is better).

    ``phi(C) = cut(C) / min(vol(C), vol(V \\ C))`` with weighted volumes;
    communities spanning the whole graph get conductance 0 by convention.
    """
    comm = np.asarray(communities)
    _, compact = np.unique(comm, return_inverse=True)
    k = compact.max() + 1 if len(compact) else 0
    if k <= 1:
        return 0.0
    row = np.repeat(np.arange(graph.n), np.diff(graph.indptr))
    inter = compact[row] != compact[graph.indices]
    cut = np.zeros(k, dtype=np.float64)
    if np.any(inter):
        np.add.at(cut, compact[row[inter]], graph.weights[inter])
    vol = np.bincount(compact, weights=graph.strength, minlength=k)
    total = graph.two_m
    denom = np.minimum(vol, total - vol)
    phis = np.where(denom > 0, cut / np.maximum(denom, 1e-300), 0.0)
    return float(phis.mean())
