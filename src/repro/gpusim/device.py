"""Simulated GPU device configuration.

Defaults approximate the paper's NVIDIA A100-40GB: 108 SMs, warps of 32,
up to 164 KB of shared memory per SM (we model the common 48 KB per-block
carve-out), and NVLink inter-GPU bandwidth for the multi-GPU runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeviceError
from repro.gpusim.costmodel import CostModel
from repro.gpusim.profiler import SimProfiler


@dataclass(frozen=True)
class DeviceConfig:
    """Static device parameters."""

    name: str = "sim-a100"
    num_sms: int = 108
    warp_size: int = 32
    max_threads_per_block: int = 1024
    #: shared memory available to one block, in bytes
    shared_mem_per_block: int = 48 * 1024
    #: bytes per hashtable bucket (key int32 + two float32 values + pad)
    bucket_bytes: int = 16
    #: SM clock in Hz — converts simulated cycles to simulated seconds
    clock_hz: float = 1.41e9
    #: NVLink-ish per-link bandwidth for the NCCL cost model (bytes/s)
    interconnect_bandwidth: float = 200e9
    #: per-message latency of a collective hop (seconds)
    interconnect_latency: float = 5e-6
    cost: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        for name in (
            "num_sms",
            "warp_size",
            "max_threads_per_block",
            "shared_mem_per_block",
            "bucket_bytes",
            "clock_hz",
            "interconnect_bandwidth",
        ):
            value = getattr(self, name)
            if not value > 0:
                raise DeviceError(f"{name} must be positive, got {value!r}")
        if not self.interconnect_latency >= 0:
            raise DeviceError(
                f"interconnect_latency must be non-negative, "
                f"got {self.interconnect_latency!r}"
            )
        if self.max_threads_per_block < self.warp_size:
            raise DeviceError(
                f"max_threads_per_block ({self.max_threads_per_block}) must "
                f"hold at least one warp ({self.warp_size})"
            )

    def max_shared_buckets(self) -> int:
        """How many hashtable buckets fit in one block's shared memory."""
        return self.shared_mem_per_block // self.bucket_bytes

    def validate_block(self, threads: int) -> None:
        if not (1 <= threads <= self.max_threads_per_block):
            raise DeviceError(
                f"block of {threads} threads outside "
                f"[1, {self.max_threads_per_block}]"
            )
        if threads % self.warp_size != 0 and threads >= self.warp_size:
            raise DeviceError(
                f"block size {threads} must be a multiple of the warp size "
                f"{self.warp_size}"
            )


@dataclass
class Device:
    """One simulated GPU: configuration plus its accounting profiler."""

    config: DeviceConfig = field(default_factory=DeviceConfig)
    profiler: SimProfiler = field(default_factory=SimProfiler)
    device_id: int = 0

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.config.clock_hz

    @property
    def simulated_seconds(self) -> float:
        """Total simulated runtime accumulated so far."""
        return self.cycles_to_seconds(self.profiler.total_cycles)

    def reset(self) -> None:
        self.profiler.reset()
