"""Accounting for simulated cycles and event counts.

Kernels charge cycles into named buckets (``decide_and_move``,
``hashtable``, ``sync`` ...) and bump named counters (``smem_probes``,
``gmem_probes``, ``shuffle_ops`` ...). The benchmark harness reads both to
regenerate the paper's figures: cycles drive the runtime comparisons
(Figures 5/6/9), counters drive the rate plots (Figure 4).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SimProfiler:
    """Named cycle buckets + named event counters."""

    cycles: Dict[str, float] = field(default_factory=lambda: defaultdict(float))
    counters: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def charge(self, bucket: str, cycles: float) -> None:
        """Add ``cycles`` to ``bucket`` (and the grand total)."""
        if cycles < 0:
            raise ValueError("cannot charge negative cycles")
        self.cycles[bucket] += cycles

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` occurrences to counter ``name``."""
        if n < 0:
            raise ValueError("cannot count a negative number of events")
        self.counters[name] += n

    @property
    def total_cycles(self) -> float:
        return float(sum(self.cycles.values()))

    def merge(self, other: "SimProfiler") -> None:
        """Fold another profiler's charges into this one.

        Merging a profiler into itself would silently double every bucket
        (iterating a dict while adding into it) — rejected explicitly.
        """
        if other is self:
            raise ValueError("cannot merge a SimProfiler into itself")
        for k, v in other.cycles.items():
            self.cycles[k] += v
        for k, v in other.counters.items():
            self.counters[k] += v

    def reset(self) -> None:
        self.cycles.clear()
        self.counters.clear()

    def snapshot(self) -> dict:
        """Plain-dict copy for reporting."""
        return {
            "cycles": dict(self.cycles),
            "counters": dict(self.counters),
            "total_cycles": self.total_cycles,
        }

    def diff(self, other: "SimProfiler") -> dict:
        """Buckets/counters where two profilers disagree (empty == equal).

        The equivalence tests pin the batched engine to the scalar one with
        this: asserting ``diff == {}`` names exactly the diverging buckets
        instead of dumping two whole snapshots.
        """
        out: dict = {"cycles": {}, "counters": {}}
        for kind, mine, theirs in (
            ("cycles", self.cycles, other.cycles),
            ("counters", self.counters, other.counters),
        ):
            for key in sorted(set(mine) | set(theirs)):
                a, b = mine.get(key, 0), theirs.get(key, 0)
                if a != b:
                    out[kind][key] = (a, b)
        return {k: v for k, v in out.items() if v}

    def rate(self, numerator: str, denominator: str) -> float:
        """Ratio of two counters (0.0 when the denominator is empty).

        Example: ``rate("smem_accesses", "table_accesses")`` is the paper's
        Figure 4 *access rate*.
        """
        denom = self.counters.get(denominator, 0)
        return self.counters.get(numerator, 0) / denom if denom else 0.0
