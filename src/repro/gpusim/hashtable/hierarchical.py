"""Hierarchical hashtable: GALA's shared-memory-first design (Section 4.2).

Two hash functions: ``h0`` indexes the shared-memory buckets, ``h1`` the
global ones. An access first probes its single ``h0`` bucket in shared
memory; only on a collision (bucket owned by a different community) does it
fall back to the ``h1`` bucket in global memory, linearly probing from
there (the paper's Example 2 and Figure 3).

Because the number of distinct neighbouring communities shrinks as the
algorithm converges, ever more communities win their shared bucket —
exactly the increasing maintenance/access-rate trend of Figure 4.
"""

from __future__ import annotations

from typing import Iterator

from repro.gpusim.costmodel import MemoryKind
from repro.gpusim.device import Device
from repro.gpusim.hashtable.base import SimHashTable, hash0, hash1


class HierarchicalHashTable(SimHashTable):
    """Shared-first probing: h0 -> shared; on collision h1 -> global."""

    kind = "hierarchical"

    def __init__(self, device: Device, shared_buckets: int, global_buckets: int):
        super().__init__(device, max(shared_buckets, 1), max(global_buckets, 1))

    def probe_sequence(self, key: int) -> Iterator[tuple[MemoryKind, int]]:
        yield MemoryKind.SHARED, hash0(key, self.s)
        start = hash1(key, self.g)
        for i in range(self.g):
            yield MemoryKind.GLOBAL, (start + i) % self.g
