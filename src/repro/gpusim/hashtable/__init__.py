"""Simulated per-block hashtables for the hash-based kernel (Section 4.2).

Three designs the paper compares:

* :class:`GlobalOnlyHashTable` — every bucket in global memory (the naive
  design of earlier GPU Louvain implementations [8, 15, 39]);
* :class:`UnifiedHashTable` — one hash function over the concatenated
  shared+global bucket array, implicitly weighting the two levels equally;
* :class:`HierarchicalHashTable` — GALA's design: probe a shared-memory
  bucket first (hash ``h0``), fall back to global (hash ``h1`` + linear
  probing) only on collision.

All tables map a community id to an accumulated ``d_C(v)`` weight and keep
the Figure 4 statistics: where each community ended up *maintained* and
where each access was *served*.

:class:`BatchedTables` is the structure-of-arrays counterpart used by the
batched execution engine: N independent tables of one ``kind``, probed in
vectorised rounds, bit-exact with N scalar tables (see
``hashtable/batched.py``).
"""

from repro.gpusim.hashtable.base import SimHashTable
from repro.gpusim.hashtable.batched import BatchedTables, StreamRuns
from repro.gpusim.hashtable.global_only import GlobalOnlyHashTable
from repro.gpusim.hashtable.unified import UnifiedHashTable
from repro.gpusim.hashtable.hierarchical import HierarchicalHashTable

TABLE_KINDS = {
    "global": GlobalOnlyHashTable,
    "unified": UnifiedHashTable,
    "hierarchical": HierarchicalHashTable,
}


def make_table(kind: str, device, shared_buckets: int, global_buckets: int):
    """Construct a hashtable by name (``global``/``unified``/``hierarchical``)."""
    try:
        cls = TABLE_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown hashtable kind {kind!r}; expected one of {sorted(TABLE_KINDS)}"
        ) from None
    return cls(device, shared_buckets, global_buckets)


__all__ = [
    "SimHashTable",
    "BatchedTables",
    "StreamRuns",
    "GlobalOnlyHashTable",
    "UnifiedHashTable",
    "HierarchicalHashTable",
    "TABLE_KINDS",
    "make_table",
]
