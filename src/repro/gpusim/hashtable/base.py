"""Common machinery of the simulated per-block hashtables.

A table lives for the duration of one vertex's DecideAndMove: it maps each
neighbouring community id to the accumulated edge weight ``d_C(v)``.
Concrete subclasses define only the probe sequence — which bucket (in which
memory space) to try for a given key — while this base class executes the
find-or-insert protocol, charges the cost model per probe (including the
atomicCAS claim and atomicAdd accumulate, as in the paper's Algorithm 3),
and maintains the Figure 4 statistics.

The protocol processes one key at a time, a legal serialisation of the
block's concurrent execution; simultaneous-conflict *costs* are charged by
the kernel layer, which knows which accesses share a warp step.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Iterator

import numpy as np

from repro import analysis
from repro.errors import HashTableFullError
from repro.gpusim.costmodel import MemoryKind
from repro.gpusim.device import Device

_EMPTY = -1
#: distinguishes concurrent tables' racecheck/memcheck regions — every
#: simulated block owns a private table, so slot 3 of two different
#: tables must never alias in the happens-before model
_table_serial = itertools.count()
# Knuth multiplicative constants for the two hash functions.
_MULT0 = 2654435761
_MULT1 = 2246822519


def hash0(key: int, size: int) -> int:
    return int((key * _MULT0) & 0xFFFFFFFF) % size


def hash1(key: int, size: int) -> int:
    return int((key * _MULT1) & 0xFFFFFFFF) % size


def hash0_vec(keys: np.ndarray, size: int) -> np.ndarray:
    """Vectorised :func:`hash0` (identical values for int64 community ids)."""
    prod = np.asarray(keys, dtype=np.uint64) * np.uint64(_MULT0)
    return ((prod & np.uint64(0xFFFFFFFF)) % np.uint64(size)).astype(np.int64)


def hash1_vec(keys: np.ndarray, size: int) -> np.ndarray:
    """Vectorised :func:`hash1` (identical values for int64 community ids)."""
    prod = np.asarray(keys, dtype=np.uint64) * np.uint64(_MULT1)
    return ((prod & np.uint64(0xFFFFFFFF)) % np.uint64(size)).astype(np.int64)


class SimHashTable(ABC):
    """Community-id -> accumulated-weight map split over shared/global."""

    kind: str = "base"

    def __init__(self, device: Device, shared_buckets: int, global_buckets: int):
        if shared_buckets < 0 or global_buckets < 0:
            raise ValueError("bucket counts must be non-negative")
        max_shared = device.config.max_shared_buckets()
        if shared_buckets > max_shared:
            raise HashTableFullError(
                f"{shared_buckets} shared buckets exceed the device budget "
                f"of {max_shared}"
            )
        self.device = device
        self.s = shared_buckets
        self.g = global_buckets
        self.shared_keys = np.full(self.s, _EMPTY, dtype=np.int64)
        self.shared_vals = np.zeros(self.s, dtype=np.float64)
        self.global_keys = np.full(self.g, _EMPTY, dtype=np.int64)
        self.global_vals = np.zeros(self.g, dtype=np.float64)
        # Figure 4 statistics
        self.maintained_shared = 0
        self.maintained_global = 0
        self.accesses_shared = 0
        self.accesses_global = 0
        #: the lane (thread-in-block) performing the next access; the
        #: kernel layer sets this per key so sanitizer findings carry the
        #: offending lane id
        self.san_lane = 0
        self._san_tag = f"table{next(_table_serial)}"
        self._san_reset_shadow(analysis.current())

    def _san_reset_shadow(self, san) -> None:
        if san is not None and san.config.memcheck:
            san.mem.reset_shadow((self._san_tag, "shared"), self.s)
            san.mem.reset_shadow((self._san_tag, "global"), self.g)

    # ------------------------------------------------------------------ #
    @abstractmethod
    def probe_sequence(self, key: int) -> Iterator[tuple[MemoryKind, int]]:
        """Yield ``(space, slot)`` candidates for ``key``, in probe order."""

    def _arrays(self, space: MemoryKind):
        if space is MemoryKind.SHARED:
            return self.shared_keys, self.shared_vals
        return self.global_keys, self.global_vals

    def _charge_probe(self, space: MemoryKind) -> None:
        self.device.profiler.charge(
            "hashtable", self.device.config.cost.access(space)
        )
        self.device.profiler.count(f"{space.value}_probes")

    def _charge_atomic(self, space: MemoryKind) -> None:
        self.device.profiler.charge(
            "hashtable", self.device.config.cost.atomic(space)
        )

    # ------------------------------------------------------------------ #
    def accumulate(self, key: int, weight: float) -> float:
        """Find-or-insert ``key`` and add ``weight``; return the running sum.

        Mirrors Algorithm 3 lines 6-10: probe (atomicCAS to claim an empty
        bucket), then atomicAdd the weight.

        Under an active sanitizer every probe is an atomic racecheck event
        (the probe *is* the atomicCAS on hardware) tagged with the lane
        the kernel stored in ``san_lane``; out-of-bounds probe candidates
        are reported and skipped (cuda-memcheck style) so execution
        continues to collect further findings.
        """
        key = int(key)
        san = analysis.current()
        for space, slot in self.probe_sequence(key):
            keys, vals = self._arrays(space)
            if san is not None:
                region = (self._san_tag, space.value)
                if san.config.memcheck and not san.mem.check_bounds(
                    region, slot, len(keys), kernel="hash", lanes=self.san_lane
                ):
                    continue
                if san.config.racecheck:
                    san.race.access(
                        region, slot, self.san_lane, "atomic", kernel="hash"
                    )
            self._charge_probe(space)
            if keys[slot] == _EMPTY:
                keys[slot] = key  # atomicCAS claim
                self._charge_atomic(space)
                if space is MemoryKind.SHARED:
                    self.maintained_shared += 1
                else:
                    self.maintained_global += 1
                if san is not None and san.config.memcheck:
                    san.mem.mark_init((self._san_tag, space.value), slot)
                    if (
                        space is MemoryKind.GLOBAL
                        and self.s > 0
                        and self.maintained_shared >= self.s
                    ):
                        san.mem.check_capacity(
                            (self._san_tag, "shared"),
                            self.maintained_shared,
                            self.s,
                            kernel="hash",
                        )
            if keys[slot] == key:
                vals[slot] += weight  # atomicAdd
                self._charge_atomic(space)
                if space is MemoryKind.SHARED:
                    self.accesses_shared += 1
                else:
                    self.accesses_global += 1
                return float(vals[slot])
        raise HashTableFullError(
            f"no free bucket for key {key} (s={self.s}, g={self.g})"
        )

    def lookup(self, key: int) -> float | None:
        """Current accumulated weight of ``key`` (None if absent)."""
        key = int(key)
        for space, slot in self.probe_sequence(key):
            keys, vals = self._arrays(space)
            self._charge_probe(space)
            if keys[slot] == _EMPTY:
                return None
            if keys[slot] == key:
                if space is MemoryKind.SHARED:
                    self.accesses_shared += 1
                else:
                    self.accesses_global += 1
                return float(vals[slot])
        return None

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """All (community, weight) entries, shared first.

        This is the gain-evaluation read phase: under an active sanitizer
        each occupied slot records a *plain* read event (one reading lane
        per entry, as in the reduction kernel) and is checked against the
        shadow-init bitmap — a slot populated without going through the
        claim protocol reads as uninitialised.
        """
        occ_s = self.shared_keys != _EMPTY
        occ_g = self.global_keys != _EMPTY
        san = analysis.current()
        if san is not None:
            slots_s = np.flatnonzero(occ_s)
            slots_g = np.flatnonzero(occ_g)
            if san.config.memcheck:
                san.mem.check_init(
                    (self._san_tag, "shared"), slots_s, kernel="hash"
                )
                san.mem.check_init(
                    (self._san_tag, "global"), slots_g, kernel="hash"
                )
            if san.config.racecheck:
                if len(slots_s):
                    san.race.access(
                        (self._san_tag, "shared"),
                        slots_s,
                        np.arange(len(slots_s)),
                        "read",
                        kernel="hash",
                    )
                if len(slots_g):
                    san.race.access(
                        (self._san_tag, "global"),
                        slots_g,
                        len(slots_s) + np.arange(len(slots_g)),
                        "read",
                        kernel="hash",
                    )
        ks = self.shared_keys[occ_s]
        vs = self.shared_vals[occ_s]
        kg = self.global_keys[occ_g]
        vg = self.global_vals[occ_g]
        return np.concatenate([ks, kg]), np.concatenate([vs, vg])

    @property
    def num_entries(self) -> int:
        return self.maintained_shared + self.maintained_global

    def maintenance_rate(self) -> float:
        """Fraction of communities resident in shared memory (Figure 4)."""
        total = self.num_entries
        return self.maintained_shared / total if total else 0.0

    def access_rate(self) -> float:
        """Fraction of value accesses served from shared memory (Figure 4)."""
        total = self.accesses_shared + self.accesses_global
        return self.accesses_shared / total if total else 0.0

    def reset(self) -> None:
        """Clear contents and statistics for the next vertex."""
        self.shared_keys.fill(_EMPTY)
        self.shared_vals.fill(0.0)
        self.global_keys.fill(_EMPTY)
        self.global_vals.fill(0.0)
        self.maintained_shared = self.maintained_global = 0
        self.accesses_shared = self.accesses_global = 0
        self._san_reset_shadow(analysis.current())
