"""Batched structure-of-arrays hashtables: many per-block tables at once.

The scalar tables (:mod:`repro.gpusim.hashtable.base`) execute one
find-or-insert at a time through a Python probe generator — faithful, but
the per-key interpreter overhead makes simulator-backed experiments
100-1000x slower than the host kernels. :class:`BatchedTables` keeps the
*semantics* of N independent scalar tables of one geometry while resolving
whole key vectors per NumPy step:

* **bit-exact contents and statistics** — each table's keys are inserted
  in stream (first-occurrence) order exactly as the scalar protocol would,
  so bucket layouts, per-key probe paths, maintenance/access statistics and
  every profiler charge match the scalar tables bit for bit (pinned by
  tests);
* **vectorised probe rounds** — each Python-level iteration advances one
  probe of every table's in-flight key simultaneously (tables are
  independent, so one key per table per round is a legal serialisation);
  duplicate keys never re-enter the probe loop: an occurrence of an
  already-resolved key replays a *fixed* probe path (buckets only ever
  transition empty -> claimed), so its probes, atomics and accesses are
  accounted for arithmetically via occurrence counts;
* **bulk accounting** — probes/atomics are charged through single
  ``profiler.charge``/``count`` calls with event totals; all per-event
  costs are integer-valued cycles, so bulk totals equal the scalar
  charge-per-event sums exactly (no float drift).

Capacity exhaustion raises :class:`~repro.errors.HashTableFullError`
exactly when the scalar tables would; when several tables exhaust, the
reported key is the earliest one *detected* (stream-first within its
probe round), which may differ from the scalar error's key — the
raise/no-raise behaviour itself is identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import analysis
from repro.errors import HashTableFullError
from repro.gpusim.costmodel import MemoryKind
from repro.gpusim.device import Device
from repro.gpusim.hashtable.base import (
    _EMPTY,
    _table_serial,
    hash0_vec,
    hash1_vec,
)

_INT64_MAX = np.iinfo(np.int64).max


@dataclass
class StreamRuns:
    """Per-distinct-key outcome of :meth:`BatchedTables.accumulate_stream`.

    One entry ("run") per distinct ``(table, key)`` pair of the stream,
    sorted by table id and, within a table, by insertion (first-occurrence)
    order. ``value`` is the weight total accumulated into the bucket by
    this stream (summed in stream order, ``np.bincount`` semantics).
    """

    table: np.ndarray  #: int64, owning table id
    key: np.ndarray  #: int64, the distinct key
    value: np.ndarray  #: float64, weight accumulated by this stream
    occ: np.ndarray  #: int64, occurrences in the stream
    resident_shared: np.ndarray  #: bool, key resolved to a shared bucket
    probes_shared: np.ndarray  #: int64, shared probes of one traversal
    probes_global: np.ndarray  #: int64, global probes of one traversal

    def __len__(self) -> int:
        return len(self.key)


def _empty_runs() -> StreamRuns:
    z = np.empty(0, dtype=np.int64)
    return StreamRuns(
        table=z,
        key=z.copy(),
        value=np.empty(0, dtype=np.float64),
        occ=z.copy(),
        resident_shared=np.empty(0, dtype=bool),
        probes_shared=z.copy(),
        probes_global=z.copy(),
    )


class BatchedTables:
    """``n_tables`` independent simulated hashtables of one geometry.

    The geometry normalisation mirrors the scalar classes exactly
    (``global`` folds the shared budget into global memory, ``unified`` /
    ``hierarchical`` clamp empty regions), so ``BatchedTables(kind, ...)``
    has the same ``s``/``g`` and the same probe sequences as
    ``make_table(kind, ...)``.
    """

    def __init__(
        self,
        kind: str,
        device: Device,
        shared_buckets: int,
        global_buckets: int,
        n_tables: int,
    ):
        if n_tables < 0:
            raise ValueError("n_tables must be non-negative")
        # Geometry rules copied from GlobalOnlyHashTable / UnifiedHashTable
        # / HierarchicalHashTable __init__ — one place per design.
        if kind == "global":
            s, g = 0, max(global_buckets + shared_buckets, 1)
        elif kind == "unified":
            s, g = shared_buckets, max(global_buckets, 1)
        elif kind == "hierarchical":
            s, g = max(shared_buckets, 1), max(global_buckets, 1)
        else:
            raise ValueError(
                f"unknown hashtable kind {kind!r}; expected one of "
                "['global', 'hierarchical', 'unified']"
            )
        if s < 0 or g < 0:
            raise ValueError("bucket counts must be non-negative")
        max_shared = device.config.max_shared_buckets()
        if s > max_shared:
            raise HashTableFullError(
                f"{s} shared buckets exceed the device budget of {max_shared}"
            )
        self.kind = kind
        self.device = device
        self.n_tables = n_tables
        self.s = s
        self.g = g
        self.shared_keys = np.full((n_tables, s), _EMPTY, dtype=np.int64)
        self.shared_vals = np.zeros((n_tables, s), dtype=np.float64)
        self.global_keys = np.full((n_tables, g), _EMPTY, dtype=np.int64)
        self.global_vals = np.zeros((n_tables, g), dtype=np.float64)
        # Figure 4 statistics, one entry per table
        self.maintained_shared = np.zeros(n_tables, dtype=np.int64)
        self.maintained_global = np.zeros(n_tables, dtype=np.int64)
        self.accesses_shared = np.zeros(n_tables, dtype=np.int64)
        self.accesses_global = np.zeros(n_tables, dtype=np.int64)
        # Sanitizer wiring: the N tables share two flat regions (one per
        # space) with addresses encoded as ``table * buckets + slot`` so
        # distinct tables never alias in the happens-before model; the
        # per-run resolution of the last accumulate_stream is kept so the
        # kernel can replay the gain-phase reads after its block barrier.
        self._san_tag = f"btables{next(_table_serial)}"
        self._last_resolution: tuple | None = None
        self._san_reset_shadow(analysis.current())

    def _san_reset_shadow(self, san) -> None:
        if san is not None and san.config.memcheck:
            san.mem.reset_shadow(
                (self._san_tag, "shared"), self.n_tables * self.s
            )
            san.mem.reset_shadow(
                (self._san_tag, "global"), self.n_tables * self.g
            )

    def _san_flat_addr(
        self, tables: np.ndarray, is_shared: np.ndarray, slots: np.ndarray
    ) -> np.ndarray:
        """Region-flat addresses: ``table * buckets(space) + slot``."""
        return np.where(
            is_shared, tables * self.s + slots, tables * self.g + slots
        )

    # ------------------------------------------------------------------ #
    @property
    def max_probes(self) -> int:
        """Length of every table's probe sequence (same as scalar)."""
        if self.kind == "global":
            return self.g
        if self.kind == "unified":
            return self.s + self.g
        return 1 + self.g  # hierarchical: one shared probe, then global

    @property
    def num_entries(self) -> np.ndarray:
        return self.maintained_shared + self.maintained_global

    def probe_slots(
        self, keys: np.ndarray, p: np.ndarray | int
    ) -> tuple[np.ndarray, np.ndarray]:
        """The ``p``-th probe candidate of each key: ``(is_shared, slot)``.

        Matches element ``p`` of the scalar ``probe_sequence(key)`` of the
        same kind (tested), with slots numbered within their own space.
        """
        keys = np.asarray(keys, dtype=np.int64)
        p = np.broadcast_to(np.asarray(p, dtype=np.int64), keys.shape)
        if self.kind == "global":
            slot = (hash0_vec(keys, self.g) + p) % self.g
            return np.zeros(keys.shape, dtype=bool), slot
        if self.kind == "unified":
            total = self.s + self.g
            idx = (hash0_vec(keys, total) + p) % total
            is_shared = idx < self.s
            return is_shared, np.where(is_shared, idx, idx - self.s)
        is_shared = p == 0
        slot = np.where(
            is_shared,
            hash0_vec(keys, self.s),
            (hash1_vec(keys, self.g) + p - 1) % self.g,
        )
        return is_shared, slot

    # ------------------------------------------------------------------ #
    def _occupants(
        self, tables: np.ndarray, is_shared: np.ndarray, slots: np.ndarray
    ) -> np.ndarray:
        out = np.empty(len(tables), dtype=np.int64)
        sh = is_shared
        out[sh] = self.shared_keys[tables[sh], slots[sh]]
        out[~sh] = self.global_keys[tables[~sh], slots[~sh]]
        return out

    def _charge_probes(self, n_shared: int, n_global: int) -> None:
        cost = self.device.config.cost
        prof = self.device.profiler
        if n_shared:
            prof.charge("hashtable", cost.access(MemoryKind.SHARED, n_shared))
            prof.count("shared_probes", n_shared)
        if n_global:
            prof.charge("hashtable", cost.access(MemoryKind.GLOBAL, n_global))
            prof.count("global_probes", n_global)

    # ------------------------------------------------------------------ #
    def accumulate_stream(
        self,
        table_of: np.ndarray,
        keys: np.ndarray,
        weights: np.ndarray,
        lanes: np.ndarray | None = None,
    ) -> StreamRuns:
        """Find-or-insert a ``(table, key, weight)`` stream, in stream order.

        Equivalent to calling ``table[t].accumulate(k, w)`` for the stream
        entries one by one: per-table bucket layouts, probe/atomic charges
        and Figure 4 statistics are bit-identical. Weight totals follow the
        repo-wide exactness convention — each ``(table, key)`` group is
        summed sequentially in stream order — so fresh buckets end up
        bit-equal to the scalar's one-at-a-time accumulation. (A bucket
        that already held weight from a *previous* call receives this
        stream's pre-summed total in one addition instead.)

        ``lanes`` optionally supplies the simulated lane (thread-in-block)
        id of every stream element; it is used only to tag sanitizer
        racecheck events (defaults to the stream position) and does not
        affect execution or accounting.
        """
        table_of = np.asarray(table_of, dtype=np.int64)
        keys = np.asarray(keys, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        n = len(keys)
        if len(table_of) != n or len(weights) != n:
            raise ValueError("table_of, keys and weights must align")
        if n == 0:
            return _empty_runs()
        if np.any((table_of < 0) | (table_of >= self.n_tables)):
            raise ValueError("table id out of range")

        # Distinct (table, key) runs, stably grouped so each run's weights
        # stay in stream order and first_flat is its first occurrence.
        order = np.lexsort((keys, table_of))
        st, sk = table_of[order], keys[order]
        new = np.empty(n, dtype=bool)
        new[0] = True
        new[1:] = (st[1:] != st[:-1]) | (sk[1:] != sk[:-1])
        run_of_sorted = np.cumsum(new) - 1
        starts = np.flatnonzero(new)
        run_table = st[starts]
        run_key = sk[starts]
        first_flat = np.minimum.reduceat(order, starts)
        occ = np.bincount(run_of_sorted).astype(np.int64)
        value = np.bincount(run_of_sorted, weights=weights[order])

        # Insertion order: per table, by first occurrence in the stream.
        ord2 = np.lexsort((first_flat, run_table))
        run_table = run_table[ord2]
        run_key = run_key[ord2]
        occ = occ[ord2]
        value = value[ord2]
        first_flat = first_flat[ord2]
        n_runs = len(run_key)

        per_table = np.bincount(run_table, minlength=self.n_tables)
        offs = np.concatenate([[0], np.cumsum(per_table)]).astype(np.int64)

        # Pointer-advancing probe rounds: each table has at most one key in
        # flight (its next run, in insertion order); every Python iteration
        # advances one probe of every in-flight key.
        res_shared = np.zeros(n_runs, dtype=bool)
        res_slot = np.zeros(n_runs, dtype=np.int64)
        claimed = np.zeros(n_runs, dtype=bool)
        probes_sh = np.zeros(n_runs, dtype=np.int64)
        probes_gl = np.zeros(n_runs, dtype=np.int64)
        nxt = offs[:-1].copy()
        live = nxt < offs[1:]
        probing = nxt[live]
        p = np.zeros(len(probing), dtype=np.int64)
        maxp = self.max_probes
        san = analysis.current()
        while len(probing):
            ptab = run_table[probing]
            is_sh, slot = self.probe_slots(run_key[probing], p)
            if san is not None and san.config.memcheck:
                if bool(is_sh.any()):
                    san.mem.check_bounds(
                        (self._san_tag, "shared"), slot[is_sh], self.s,
                        kernel="hash",
                    )
                if not bool(is_sh.all()):
                    san.mem.check_bounds(
                        (self._san_tag, "global"), slot[~is_sh], self.g,
                        kernel="hash",
                    )
            # run ids in the probe set are unique (one per table), so
            # buffered fancy-index increments are exact
            probes_sh[probing[is_sh]] += 1
            probes_gl[probing[~is_sh]] += 1
            occupant = self._occupants(ptab, is_sh, slot)
            won = occupant == _EMPTY
            found = occupant == run_key[probing]
            done = won | found
            if np.any(done):
                druns = probing[done]
                dtab = ptab[done]
                dsh = is_sh[done]
                dslot = slot[done]
                # claim the empty buckets (atomicCAS); found keys were
                # inserted by an earlier call and are plain hits
                cw = won[done]
                self.shared_keys[dtab[dsh & cw], dslot[dsh & cw]] = run_key[
                    druns[dsh & cw]
                ]
                self.global_keys[dtab[~dsh & cw], dslot[~dsh & cw]] = run_key[
                    druns[~dsh & cw]
                ]
                res_shared[druns] = dsh
                res_slot[druns] = dslot
                claimed[druns] = cw
                # pull each resolved table's next run into the probe set
                nxt[dtab] += 1
                fresh_tab = dtab[nxt[dtab] < offs[1:][dtab]]
                fresh = nxt[fresh_tab]
                probing = np.concatenate([probing[~done], fresh])
                p = np.concatenate(
                    [p[~done] + 1, np.zeros(len(fresh), dtype=np.int64)]
                )
            else:
                p = p + 1
            exhausted = p >= maxp
            if np.any(exhausted):
                bad = probing[exhausted]
                worst = bad[np.argmin(first_flat[bad])]
                raise HashTableFullError(
                    f"no free bucket for key {int(run_key[worst])} "
                    f"(s={self.s}, g={self.g})"
                )

        # Accumulate values (stream-ordered group sums; fresh buckets held
        # exactly 0.0, so += reproduces the scalar running sums bit-exactly).
        sh = res_shared
        self.shared_vals[run_table[sh], res_slot[sh]] += value[sh]
        self.global_vals[run_table[~sh], res_slot[~sh]] += value[~sh]

        # Bulk accounting: every occurrence of a run replays its probe
        # path and does one atomicAdd; first occurrences of claimed runs
        # add the atomicCAS.
        self._charge_probes(
            int((probes_sh * occ).sum()), int((probes_gl * occ).sum())
        )
        cost = self.device.config.cost
        prof = self.device.profiler
        n_at_sh = int(occ[sh].sum() + (claimed & sh).sum())
        n_at_gl = int(occ[~sh].sum() + (claimed & ~sh).sum())
        if n_at_sh:
            prof.charge("hashtable", cost.atomic(MemoryKind.SHARED, n_at_sh))
        if n_at_gl:
            prof.charge("hashtable", cost.atomic(MemoryKind.GLOBAL, n_at_gl))

        self.maintained_shared += np.bincount(
            run_table[claimed & sh], minlength=self.n_tables
        )
        self.maintained_global += np.bincount(
            run_table[claimed & ~sh], minlength=self.n_tables
        )
        self.accesses_shared += np.bincount(
            run_table[sh], weights=occ[sh], minlength=self.n_tables
        ).astype(np.int64)
        self.accesses_global += np.bincount(
            run_table[~sh], weights=occ[~sh], minlength=self.n_tables
        ).astype(np.int64)

        self._last_resolution = (run_table, res_shared, res_slot)
        if san is not None:
            self._san_after_stream(
                san, table_of, lanes, order, run_of_sorted, ord2,
                run_table, res_shared, res_slot, claimed,
            )

        return StreamRuns(
            table=run_table,
            key=run_key,
            value=value,
            occ=occ,
            resident_shared=res_shared,
            probes_shared=probes_sh,
            probes_global=probes_gl,
        )

    # ------------------------------------------------------------------ #
    def _san_after_stream(
        self,
        san,
        table_of: np.ndarray,
        lanes: np.ndarray | None,
        order: np.ndarray,
        run_of_sorted: np.ndarray,
        ord2: np.ndarray,
        run_table: np.ndarray,
        res_shared: np.ndarray,
        res_slot: np.ndarray,
        claimed: np.ndarray,
    ) -> None:
        """Post-resolution sanitizer events for one accumulate_stream.

        Every stream occurrence replays its run's resolved bucket as one
        atomic racecheck event (claim + add are both atomics); claimed
        buckets are marked initialised; a table whose shared level filled
        completely while it still spilled to global is a capacity
        overflow.
        """
        n = len(table_of)
        n_runs = len(run_table)
        flat_addr = self._san_flat_addr(run_table, res_shared, res_slot)
        if san.config.racecheck and n:
            # map each stream element to its run (post-ord2 numbering)
            new_of_old = np.empty(n_runs, dtype=np.int64)
            new_of_old[ord2] = np.arange(n_runs, dtype=np.int64)
            run_flat = np.empty(n, dtype=np.int64)
            run_flat[order] = new_of_old[run_of_sorted]
            lane_of = (
                np.arange(n, dtype=np.int64)
                if lanes is None
                else np.asarray(lanes, dtype=np.int64)
            )
            e_sh = res_shared[run_flat]
            for space, mask in (("shared", e_sh), ("global", ~e_sh)):
                if bool(mask.any()):
                    san.race.access(
                        (self._san_tag, space),
                        flat_addr[run_flat][mask],
                        lane_of[mask],
                        "atomic",
                        kernel="hash",
                    )
        if san.config.memcheck:
            for space, mask in (
                ("shared", claimed & res_shared),
                ("global", claimed & ~res_shared),
            ):
                if bool(mask.any()):
                    san.mem.mark_init(
                        (self._san_tag, space), flat_addr[mask]
                    )
            if self.s > 0:
                overflow = np.flatnonzero(
                    (self.maintained_shared >= self.s)
                    & (self.maintained_global > 0)
                )
                for t in overflow[:8]:
                    san.mem.check_capacity(
                        (self._san_tag, "shared"),
                        int(self.maintained_shared[t]),
                        self.s,
                        kernel="hash",
                    )

    def san_read_entries(self, san) -> None:
        """Record the gain-phase entry reads for the sanitizer.

        Called by the kernel *after* its block barrier: one plain read
        event per resident entry (the reduction lane that evaluates it),
        plus the shadow-init check — mirroring what
        :meth:`SimHashTable.items` records on the scalar engine.
        """
        for space, keys_arr, buckets in (
            ("shared", self.shared_keys, self.s),
            ("global", self.global_keys, self.g),
        ):
            tv, ts = np.nonzero(keys_arr != _EMPTY)
            if not len(tv):
                continue
            addr = tv * buckets + ts
            if san.config.memcheck:
                san.mem.check_init((self._san_tag, space), addr, kernel="hash")
            if san.config.racecheck:
                # entry index within its table = the reading lane
                starts = np.flatnonzero(
                    np.concatenate([[True], tv[1:] != tv[:-1]])
                )
                offsets = np.zeros(len(tv), dtype=np.int64)
                offsets[starts] = np.arange(len(tv), dtype=np.int64)[starts]
                lane = np.arange(len(tv), dtype=np.int64) - np.maximum.accumulate(
                    offsets
                )
                san.race.access(
                    (self._san_tag, space), addr, lane, "read", kernel="hash"
                )

    # ------------------------------------------------------------------ #
    def lookup_many(
        self, table_of: np.ndarray, keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched ``lookup``: ``(values, found)`` per query.

        Probes and access statistics are charged exactly as the scalar
        ``lookup`` would per query (tables are read-only here, so any
        number of simultaneous queries per table is legal).
        """
        table_of = np.asarray(table_of, dtype=np.int64)
        keys = np.asarray(keys, dtype=np.int64)
        nq = len(keys)
        values = np.zeros(nq, dtype=np.float64)
        found = np.zeros(nq, dtype=bool)
        if nq == 0:
            return values, found
        if np.any((table_of < 0) | (table_of >= self.n_tables)):
            raise ValueError("table id out of range")
        probing = np.arange(nq, dtype=np.int64)
        p = np.zeros(nq, dtype=np.int64)
        n_sh = n_gl = 0
        maxp = self.max_probes
        acc_sh = np.zeros(self.n_tables, dtype=np.int64)
        acc_gl = np.zeros(self.n_tables, dtype=np.int64)
        while len(probing):
            ptab = table_of[probing]
            is_sh, slot = self.probe_slots(keys[probing], p)
            n_sh += int(is_sh.sum())
            n_gl += int((~is_sh).sum())
            occupant = self._occupants(ptab, is_sh, slot)
            hit = occupant == keys[probing]
            if np.any(hit):
                hq = probing[hit]
                hsh = is_sh[hit]
                hslot = slot[hit]
                htab = ptab[hit]
                values[hq[hsh]] = self.shared_vals[htab[hsh], hslot[hsh]]
                values[hq[~hsh]] = self.global_vals[htab[~hsh], hslot[~hsh]]
                found[hq] = True
                acc_sh += np.bincount(htab[hsh], minlength=self.n_tables)
                acc_gl += np.bincount(htab[~hsh], minlength=self.n_tables)
            cont = ~hit & (occupant != _EMPTY)
            probing = probing[cont]
            p = p[cont] + 1
            keep = p < maxp
            probing, p = probing[keep], p[keep]
        self._charge_probes(n_sh, n_gl)
        self.accesses_shared += acc_sh
        self.accesses_global += acc_gl
        return values, found

    # ------------------------------------------------------------------ #
    def items_flat(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All entries as ``(table, key, value)``, shared slots first per
        table then global — the concatenation of every table's ``items()``."""
        sv, ss = np.nonzero(self.shared_keys != _EMPTY)
        gv, gs = np.nonzero(self.global_keys != _EMPTY)
        tb = np.concatenate([sv, gv])
        ky = np.concatenate(
            [self.shared_keys[sv, ss], self.global_keys[gv, gs]]
        )
        vl = np.concatenate(
            [self.shared_vals[sv, ss], self.global_vals[gv, gs]]
        )
        order = np.argsort(tb, kind="stable")
        return tb[order], ky[order], vl[order]

    def reset(self) -> None:
        """Clear contents and statistics of every table."""
        self.shared_keys.fill(_EMPTY)
        self.shared_vals.fill(0.0)
        self.global_keys.fill(_EMPTY)
        self.global_vals.fill(0.0)
        self.maintained_shared.fill(0)
        self.maintained_global.fill(0)
        self.accesses_shared.fill(0)
        self.accesses_global.fill(0)
        self._last_resolution = None
        self._san_reset_shadow(analysis.current())
