"""Global-only hashtable: the naive baseline (paper Section 4.2).

Every bucket lives in global memory; collisions are resolved by linear
probing. This is the design of the earlier GPU Louvain implementations the
paper cites [8, 15, 39] and the "Global-only" bar of Figure 9(b).
"""

from __future__ import annotations

from typing import Iterator

from repro.gpusim.costmodel import MemoryKind
from repro.gpusim.device import Device
from repro.gpusim.hashtable.base import SimHashTable, hash0


class GlobalOnlyHashTable(SimHashTable):
    """All buckets in global memory, linear probing."""

    kind = "global"

    def __init__(self, device: Device, shared_buckets: int, global_buckets: int):
        # shared_buckets is accepted for interface uniformity but unused.
        super().__init__(device, 0, max(global_buckets + shared_buckets, 1))

    def probe_sequence(self, key: int) -> Iterator[tuple[MemoryKind, int]]:
        start = hash0(key, self.g)
        for i in range(self.g):
            yield MemoryKind.GLOBAL, (start + i) % self.g
