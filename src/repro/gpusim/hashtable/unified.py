"""Unified hashtable: one hash over the concatenated bucket space.

A single hash function addresses all ``s + g`` buckets; an element lands in
shared memory only with probability ``s / (s + g)`` under a random hash —
the paper's point that this design "implicitly assigns equal importance to
both shared memory and global memory". Linear probing continues through the
combined space (wrapping), so an element hashed into the global region can
even spill *back* into shared and vice versa.
"""

from __future__ import annotations

from typing import Iterator

from repro.gpusim.costmodel import MemoryKind
from repro.gpusim.device import Device
from repro.gpusim.hashtable.base import SimHashTable, hash0


class UnifiedHashTable(SimHashTable):
    """Single hash over shared ++ global, linear probing across both."""

    kind = "unified"

    def __init__(self, device: Device, shared_buckets: int, global_buckets: int):
        super().__init__(device, shared_buckets, max(global_buckets, 1))

    def probe_sequence(self, key: int) -> Iterator[tuple[MemoryKind, int]]:
        total = self.s + self.g
        start = hash0(key, total)
        for i in range(total):
            idx = (start + i) % total
            if idx < self.s:
                yield MemoryKind.SHARED, idx
            else:
                yield MemoryKind.GLOBAL, idx - self.s
