"""Warp-level primitives (paper Algorithm 2's building blocks).

A :class:`WarpContext` models one warp: up to 32 lanes, each holding
register values, exchanging them with the CUDA warp primitives the
shuffle-based kernel relies on:

* ``match_any_sync(values)``    — per-lane bitmask of lanes holding the
  same value (CUDA ``__match_any_sync``);
* ``reduce_add_sync(mask, v)``  — per-lane sum of ``v`` over the lane's
  mask group (``__reduce_add_sync`` over a match mask);
* ``reduce_max_sync(values)``   — warp-wide maximum broadcast to all lanes;
* ``shfl_idx_sync(values, src)``— read another lane's register.

All primitives operate only on *active* lanes (the ``active`` mask models
CUDA's member mask) and charge the cost model per invocation — these run on
the register file, so they cost a handful of cycles regardless of how many
lanes participate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DeviceError
from repro.gpusim.device import Device


@dataclass
class WarpContext:
    """One warp's execution context."""

    device: Device
    #: boolean mask of active lanes (length = warp size)
    active: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        w = self.device.config.warp_size
        if self.active is None:
            self.active = np.ones(w, dtype=bool)
        self.active = np.asarray(self.active, dtype=bool)
        if len(self.active) != w:
            raise DeviceError(
                f"active mask must have {w} lanes, got {len(self.active)}"
            )

    @property
    def width(self) -> int:
        return self.device.config.warp_size

    def _charge(self, n: int = 1) -> None:
        self.device.profiler.charge(
            "warp_primitives", self.device.config.cost.warp_primitive(n)
        )
        self.device.profiler.count("warp_primitive_ops", n)

    # ------------------------------------------------------------------ #
    def match_any_sync(self, values: np.ndarray) -> np.ndarray:
        """``mask[i]`` has bit ``j`` set iff lane ``j`` is active and holds
        the same value as lane ``i`` (inactive lanes get mask 0)."""
        values = np.asarray(values)
        if len(values) != self.width:
            raise DeviceError("values must cover every lane")
        self._charge()
        masks = np.zeros(self.width, dtype=np.int64)
        act = np.flatnonzero(self.active)
        if len(act) == 0:
            return masks
        vals = values[act]
        same = vals[:, None] == vals[None, :]
        bits = (1 << act.astype(np.int64))[None, :]
        masks[act] = (same * bits).sum(axis=1)
        return masks

    def reduce_add_sync(self, masks: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Per-lane sum of ``values`` over the lanes in that lane's mask."""
        values = np.asarray(values, dtype=np.float64)
        masks = np.asarray(masks, dtype=np.int64)
        self._charge()
        out = np.zeros(self.width, dtype=np.float64)
        lanes = np.arange(self.width, dtype=np.int64)
        member = (masks[:, None] >> lanes[None, :]) & 1
        out[self.active] = (member[self.active] * values[None, :]).sum(axis=1)
        return out

    def reduce_max_sync(self, values: np.ndarray) -> float:
        """Warp-wide max over active lanes, broadcast to the caller."""
        values = np.asarray(values, dtype=np.float64)
        self._charge()
        if not np.any(self.active):
            return -np.inf
        return float(values[self.active].max())

    def shfl_idx_sync(self, values: np.ndarray, src_lane: int) -> float:
        """Read lane ``src_lane``'s register (``__shfl_sync``)."""
        if not (0 <= src_lane < self.width):
            raise DeviceError(f"source lane {src_lane} out of range")
        self._charge()
        return float(np.asarray(values)[src_lane])

    def ballot_sync(self, predicate: np.ndarray) -> int:
        """Bitmask of active lanes whose predicate holds."""
        predicate = np.asarray(predicate, dtype=bool)
        self._charge()
        bits = np.flatnonzero(predicate & self.active).astype(np.int64)
        return int((1 << bits).sum())
