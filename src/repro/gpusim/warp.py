"""Warp-level primitives (paper Algorithm 2's building blocks).

A :class:`WarpContext` models one warp: up to 32 lanes, each holding
register values, exchanging them with the CUDA warp primitives the
shuffle-based kernel relies on:

* ``match_any_sync(values)``    — per-lane bitmask of lanes holding the
  same value (CUDA ``__match_any_sync``);
* ``reduce_add_sync(mask, v)``  — per-lane sum of ``v`` over the lane's
  mask group (``__reduce_add_sync`` over a match mask);
* ``reduce_max_sync(values)``   — warp-wide maximum broadcast to all lanes;
* ``shfl_idx_sync(values, src)``— read another lane's register.

All primitives operate only on *active* lanes (the ``active`` mask models
CUDA's member mask) and charge the cost model per invocation — these run on
the register file, so they cost a handful of cycles regardless of how many
lanes participate.

:class:`WarpBatch` is the structure-of-arrays counterpart: the same
primitives evaluated over an ``(n_warps, 32)`` lane matrix at once, one
matrix row per warp. Each batched call charges the cost model the
*identical* per-invocation cycles — one warp-primitive charge per matrix
row — through a single bulk ``profiler.charge``/``count`` pair, so a
batched execution is bit-exact with ``n_warps`` scalar ones in both
results and accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import analysis
from repro.errors import DeviceError
from repro.gpusim.device import Device


def _san_primitive(primitive: str, active: np.ndarray, masks=None) -> None:
    """Synccheck hook: one call per simulated warp-primitive invocation.

    Costs one module-global read when no sanitizer session is active.
    Flags empty active masks and (given per-lane ``masks`` words) mask
    bits naming inactive lanes — both are hangs on real hardware.
    """
    san = analysis.current()
    if san is not None and san.config.synccheck:
        san.sync.warp_primitive(primitive, active, masks=masks)


def _validated_mask(active: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Validate an active-lane mask once: boolean dtype, exact shape."""
    arr = np.asarray(active)
    if arr.dtype != np.bool_:
        raise DeviceError(
            f"active mask must be boolean, got dtype {arr.dtype}"
        )
    if arr.shape != shape:
        raise DeviceError(
            f"active mask must have shape {shape}, got {arr.shape}"
        )
    return arr


@dataclass
class WarpContext:
    """One warp's execution context."""

    device: Device
    #: boolean mask of active lanes (length = warp size); ``None`` means
    #: all lanes active
    active: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        w = self.device.config.warp_size
        if self.active is None:
            self.active = np.ones(w, dtype=bool)
        else:
            self.active = _validated_mask(self.active, (w,))

    @property
    def width(self) -> int:
        return self.device.config.warp_size

    def _charge(self, n: int = 1) -> None:
        self.device.profiler.charge(
            "warp_primitives", self.device.config.cost.warp_primitive(n)
        )
        self.device.profiler.count("warp_primitive_ops", n)

    # ------------------------------------------------------------------ #
    def match_any_sync(self, values: np.ndarray) -> np.ndarray:
        """``mask[i]`` has bit ``j`` set iff lane ``j`` is active and holds
        the same value as lane ``i`` (inactive lanes get mask 0)."""
        values = np.asarray(values)
        if len(values) != self.width:
            raise DeviceError("values must cover every lane")
        _san_primitive("match_any_sync", self.active)
        self._charge()
        masks = np.zeros(self.width, dtype=np.int64)
        act = np.flatnonzero(self.active)
        if len(act) == 0:
            return masks
        vals = values[act]
        same = vals[:, None] == vals[None, :]
        bits = (1 << act.astype(np.int64))[None, :]
        masks[act] = (same * bits).sum(axis=1)
        return masks

    def reduce_add_sync(self, masks: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Per-lane sum of ``values`` over the lanes in that lane's mask."""
        values = np.asarray(values, dtype=np.float64)
        masks = np.asarray(masks, dtype=np.int64)
        _san_primitive("reduce_add_sync", self.active, masks=masks)
        self._charge()
        out = np.zeros(self.width, dtype=np.float64)
        lanes = np.arange(self.width, dtype=np.int64)
        member = (masks[:, None] >> lanes[None, :]) & 1
        out[self.active] = (member[self.active] * values[None, :]).sum(axis=1)
        return out

    def reduce_max_sync(self, values: np.ndarray) -> float:
        """Warp-wide max over active lanes, broadcast to the caller."""
        values = np.asarray(values, dtype=np.float64)
        _san_primitive("reduce_max_sync", self.active)
        self._charge()
        if not np.any(self.active):
            return -np.inf
        return float(values[self.active].max())

    def shfl_idx_sync(self, values: np.ndarray, src_lane: int) -> float:
        """Read lane ``src_lane``'s register (``__shfl_sync``)."""
        if not (0 <= src_lane < self.width):
            raise DeviceError(f"source lane {src_lane} out of range")
        _san_primitive("shfl_idx_sync", self.active)
        self._charge()
        return float(np.asarray(values)[src_lane])

    def ballot_sync(self, predicate: np.ndarray) -> int:
        """Bitmask of active lanes whose predicate holds."""
        predicate = np.asarray(predicate, dtype=bool)
        _san_primitive("ballot_sync", self.active)
        self._charge()
        bits = np.flatnonzero(predicate & self.active).astype(np.int64)
        return int((1 << bits).sum())


@dataclass
class WarpBatch:
    """A batch of independent warps in structure-of-arrays layout.

    Every method evaluates one warp primitive on all ``n_warps`` rows of
    the lane matrix simultaneously and charges exactly ``n_warps``
    per-invocation costs in one bulk call. Results and accounting are
    bit-exact with running :class:`WarpContext` row by row: integer mask
    arithmetic is order-independent, and the float reductions sum the
    same 32 contiguous lane registers with the same NumPy reduction, so
    even the floating-point bit patterns agree (pinned by tests).
    """

    device: Device
    #: boolean mask of active lanes, shape ``(n_warps, warp_size)``
    active: np.ndarray

    def __post_init__(self) -> None:
        w = self.device.config.warp_size
        arr = np.asarray(self.active)
        if arr.ndim != 2 or arr.shape[1] != w:
            raise DeviceError(
                f"lane matrix must be (n_warps, {w}), got {arr.shape}"
            )
        self.active = _validated_mask(arr, arr.shape)

    @property
    def n_warps(self) -> int:
        return self.active.shape[0]

    @property
    def width(self) -> int:
        return self.device.config.warp_size

    def _charge(self, invocations: int | None = None) -> None:
        n = self.n_warps if invocations is None else invocations
        self.device.profiler.charge(
            "warp_primitives", self.device.config.cost.warp_primitive(n)
        )
        self.device.profiler.count("warp_primitive_ops", n)

    def _check(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        if values.shape != self.active.shape:
            raise DeviceError(
                f"values must be {self.active.shape}, got {values.shape}"
            )
        return values

    # ------------------------------------------------------------------ #
    def match_any_sync(self, values: np.ndarray) -> np.ndarray:
        """Per-lane same-value bitmasks, one ``__match_any_sync`` per row."""
        values = self._check(values)
        _san_primitive("match_any_sync", self.active)
        self._charge()
        # (n, i, j): lane j active and holding lane i's value, within row
        same = (
            (values[:, :, None] == values[:, None, :])
            & self.active[:, None, :]
            & self.active[:, :, None]
        )
        bits = (np.int64(1) << np.arange(self.width, dtype=np.int64))[None, None, :]
        return (same * bits).sum(axis=2)

    def reduce_add_sync(self, masks: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Per-lane sum of ``values`` over each lane's mask group, per row.

        The innermost sum runs over the 32 contiguous lane registers of
        each row — the same reduction :meth:`WarpContext.reduce_add_sync`
        performs — keeping the float results bit-identical.
        """
        values = np.asarray(self._check(values), dtype=np.float64)
        masks = np.asarray(self._check(masks), dtype=np.int64)
        _san_primitive("reduce_add_sync", self.active, masks=masks)
        self._charge()
        lanes = np.arange(self.width, dtype=np.int64)
        member = (masks[:, :, None] >> lanes[None, None, :]) & 1
        out = (member * values[:, None, :]).sum(axis=2)
        return np.where(self.active, out, 0.0)

    def reduce_max_sync(self, values: np.ndarray) -> np.ndarray:
        """Per-row max over active lanes (``-inf`` for all-inactive rows)."""
        values = np.asarray(self._check(values), dtype=np.float64)
        _san_primitive("reduce_max_sync", self.active)
        self._charge()
        masked = np.where(self.active, values, -np.inf)
        return masked.max(axis=1)

    def shfl_idx_sync(self, values: np.ndarray, src_lanes: np.ndarray) -> np.ndarray:
        """Read ``values[row, src_lanes[row]]`` for every row."""
        values = self._check(values)
        src_lanes = np.asarray(src_lanes, dtype=np.int64)
        if src_lanes.shape != (self.n_warps,):
            raise DeviceError("src_lanes must give one source lane per warp")
        if np.any((src_lanes < 0) | (src_lanes >= self.width)):
            raise DeviceError("source lane out of range")
        _san_primitive("shfl_idx_sync", self.active)
        self._charge()
        return np.asarray(
            values[np.arange(self.n_warps), src_lanes], dtype=np.float64
        )

    def ballot_sync(self, predicate: np.ndarray) -> np.ndarray:
        """Per-row bitmask of active lanes whose predicate holds."""
        predicate = np.asarray(self._check(predicate), dtype=bool)
        _san_primitive("ballot_sync", self.active)
        self._charge()
        bits = (np.int64(1) << np.arange(self.width, dtype=np.int64))[None, :]
        return ((predicate & self.active) * bits).sum(axis=1)
