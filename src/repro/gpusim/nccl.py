"""Simulated NCCL-style collectives with a bandwidth-latency cost model.

The multi-GPU runtime (paper Section 4.3) synchronises per-vertex state
after each iteration, choosing between:

* **dense** synchronisation — ``ncclAllReduce`` over full-length arrays;
* **sparse** synchronisation — ``ncclAllGather`` of only the changed
  (vertex, value) pairs.

The collectives here move real NumPy data between the simulated devices'
buffers *and* charge a standard ring-algorithm cost:

* ring AllReduce of ``B`` bytes on ``k`` ranks: ``2 (k-1)/k * B / bw``
  plus ``2 (k-1)`` hop latencies;
* ring AllGather of ``B`` bytes per rank: ``(k-1) * B / bw`` plus
  ``(k-1)`` hop latencies.

Each participating device is charged the same wall-clock (collectives are
bulk-synchronous), converted to cycles via the device clock so computation
and communication live on one axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import DeviceError
from repro.gpusim.device import Device
from repro.obs import _session as obs


@dataclass
class Communicator:
    """A clique of simulated devices participating in collectives."""

    devices: Sequence[Device]

    def __post_init__(self) -> None:
        if len(self.devices) < 1:
            raise DeviceError("communicator needs at least one device")

    @property
    def size(self) -> int:
        return len(self.devices)

    # ------------------------------------------------------------------ #
    def _charge_all(self, seconds: float, bucket: str) -> None:
        for dev in self.devices:
            cycles = seconds * dev.config.clock_hz
            dev.profiler.charge(bucket, cycles)

    def _ring_allreduce_seconds(self, nbytes: float) -> float:
        k = self.size
        if k == 1:
            return 0.0
        cfg = self.devices[0].config
        bw_time = 2.0 * (k - 1) / k * nbytes / cfg.interconnect_bandwidth
        lat_time = 2.0 * (k - 1) * cfg.interconnect_latency
        return bw_time + lat_time

    def _ring_allgather_seconds(self, nbytes_per_rank: float) -> float:
        k = self.size
        if k == 1:
            return 0.0
        cfg = self.devices[0].config
        bw_time = (k - 1) * nbytes_per_rank / cfg.interconnect_bandwidth
        lat_time = (k - 1) * cfg.interconnect_latency
        return bw_time + lat_time

    # ------------------------------------------------------------------ #
    def all_reduce_max(
        self, buffers: list[np.ndarray], bucket: str = "comm_dense"
    ) -> np.ndarray:
        """Element-wise max-AllReduce (dense sync of community arrays).

        Every rank contributes a full-length buffer; every rank receives
        the element-wise maximum. Charged as one ring AllReduce of the
        buffer size.
        """
        self._validate_buffers(buffers)
        seconds = self._ring_allreduce_seconds(buffers[0].nbytes)
        with obs.span(
            "nccl/allreduce_max",
            bytes=int(buffers[0].nbytes),
            ranks=self.size,
            simulated_seconds=seconds,
            bucket=bucket,
        ):
            out = buffers[0].copy()
            for buf in buffers[1:]:
                np.maximum(out, buf, out=out)
        self._charge_all(seconds, bucket)
        self._count_bytes(out.nbytes, dense=True)
        obs.inc("nccl/collectives")
        return out

    def all_reduce_sum(
        self, buffers: list[np.ndarray], bucket: str = "comm_dense"
    ) -> np.ndarray:
        """Element-wise sum-AllReduce (for aggregate arrays)."""
        self._validate_buffers(buffers)
        out = buffers[0].astype(np.float64, copy=True)
        seconds = self._ring_allreduce_seconds(out.nbytes)
        with obs.span(
            "nccl/allreduce_sum",
            bytes=int(out.nbytes),
            ranks=self.size,
            simulated_seconds=seconds,
            bucket=bucket,
        ):
            for buf in buffers[1:]:
                out += buf
        self._charge_all(seconds, bucket)
        self._count_bytes(out.nbytes, dense=True)
        obs.inc("nccl/collectives")
        return out

    def all_gather(
        self, chunks: list[np.ndarray], bucket: str = "comm_sparse"
    ) -> np.ndarray:
        """Concatenate every rank's chunk on every rank (sparse sync).

        Cost follows the *largest* per-rank chunk (ring steps are lockstep).
        """
        if len(chunks) != self.size:
            raise DeviceError("need exactly one chunk per rank")
        max_bytes = max((np.atleast_1d(c).nbytes for c in chunks), default=0)
        total_bytes = sum(np.atleast_1d(c).nbytes for c in chunks)
        seconds = self._ring_allgather_seconds(max_bytes)
        with obs.span(
            "nccl/allgather",
            bytes=int(total_bytes),
            ranks=self.size,
            simulated_seconds=seconds,
            bucket=bucket,
        ):
            out = np.concatenate([np.atleast_1d(c) for c in chunks])
        self._charge_all(seconds, bucket)
        self._count_bytes(total_bytes, dense=False)
        obs.inc("nccl/collectives")
        return out

    # ------------------------------------------------------------------ #
    def _validate_buffers(self, buffers: list[np.ndarray]) -> None:
        if len(buffers) != self.size:
            raise DeviceError("need exactly one buffer per rank")
        shapes = {b.shape for b in buffers}
        if len(shapes) != 1:
            raise DeviceError(f"buffer shapes differ across ranks: {shapes}")

    def _count_bytes(self, nbytes: float, dense: bool) -> None:
        key = "dense_bytes" if dense else "sparse_bytes"
        for dev in self.devices:
            dev.profiler.count(key, int(nbytes))
