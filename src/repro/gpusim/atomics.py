"""Atomic operations with serialisation-conflict accounting.

The hash-based kernel uses ``atomicCAS`` to claim hashtable buckets and
``atomicAdd`` to accumulate ``d_C(v)``. When multiple lanes of a warp hit
the same address in the same step, the hardware serialises them — the cost
of the step is the longest chain. The helpers here perform the update
functionally (NumPy scatter) and charge the cost model accordingly.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.costmodel import MemoryKind
from repro.gpusim.device import Device


def _max_conflict(addresses: np.ndarray) -> int:
    if len(addresses) == 0:
        return 0
    return int(np.bincount(addresses).max())


def atomic_add(
    device: Device,
    array: np.ndarray,
    addresses: np.ndarray,
    values: np.ndarray,
    space: MemoryKind,
    bucket: str = "atomics",
) -> None:
    """Concurrent ``array[addresses] += values`` with conflict costing.

    ``addresses`` are the per-lane targets of one simultaneous warp/block
    step; duplicates serialise.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if len(addresses) == 0:
        return
    np.add.at(array, addresses, values)
    conflict = _max_conflict(addresses)
    device.profiler.charge(
        bucket, device.config.cost.atomic(space, n=1, max_conflict=conflict)
    )
    device.profiler.count(f"{space.value}_atomics", len(addresses))


def atomic_cas_claim(
    device: Device,
    slots: np.ndarray,
    addresses: np.ndarray,
    keys: np.ndarray,
    empty: int,
    space: MemoryKind,
    bucket: str = "atomics",
) -> np.ndarray:
    """Concurrent compare-and-swap claims of hashtable buckets.

    Each lane tries ``CAS(slots[addr], empty, key)``. Returns the value each
    lane observed *before* its own CAS resolved (the CUDA return-value
    semantics): ``empty`` means the lane won the bucket, the winner's key
    means it lost to a same-step claimant, an existing key means the bucket
    was already owned.

    Lanes are resolved in lane order, which is a legal serialisation of the
    hardware's arbitrary one.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    keys = np.asarray(keys, dtype=np.int64)
    observed = np.empty(len(addresses), dtype=np.int64)
    for lane, (addr, key) in enumerate(zip(addresses, keys)):
        observed[lane] = slots[addr]
        if slots[addr] == empty:
            slots[addr] = key
    if len(addresses):
        conflict = _max_conflict(addresses)
        device.profiler.charge(
            bucket, device.config.cost.atomic(space, n=1, max_conflict=conflict)
        )
        device.profiler.count(f"{space.value}_atomics", len(addresses))
    return observed
