"""Atomic operations with serialisation-conflict accounting.

The hash-based kernel uses ``atomicCAS`` to claim hashtable buckets and
``atomicAdd`` to accumulate ``d_C(v)``. When multiple lanes of a warp hit
the same address in the same step, the hardware serialises them — the cost
of the step is the longest chain. The helpers here perform the update
functionally (NumPy scatter) and charge the cost model accordingly.

:func:`plain_store` / :func:`plain_load` are the *non-atomic* counterparts:
same lane-vector call shape, ordinary load/store costing, and — crucially —
``write``/``read`` (not ``atomic``) events to the sanitizer's racecheck, so
a kernel that reaches for them where an atomic is required trips the
write-write / read-write hazard detectors (see :mod:`repro.analysis`).

All four helpers are sanitizer-aware: when a :mod:`repro.analysis` session
is active they bounds-check the address vector (faulting lanes are
reported and skipped, cuda-memcheck style) and record one access event per
lane; when no session is active the extra cost is one module-global read.
"""

from __future__ import annotations

import numpy as np

from repro import analysis
from repro.gpusim.costmodel import MemoryKind
from repro.gpusim.device import Device

#: racecheck/memcheck region tag for these free-standing helpers
_REGION = "atomics"


def _max_conflict(addresses: np.ndarray) -> int:
    if len(addresses) == 0:
        return 0
    return int(np.bincount(addresses).max())


def _sanitize_access(
    san,
    array: np.ndarray,
    addresses: np.ndarray,
    mode: str,
    space: MemoryKind,
) -> np.ndarray:
    """Report OOB lanes + record race events; return the in-bounds mask."""
    region = (_REGION, space.value)
    lanes = np.arange(len(addresses), dtype=np.int64)
    ok = np.ones(len(addresses), dtype=bool)
    if san.config.memcheck:
        ok = san.mem.check_bounds(
            region, addresses, len(array), kernel=_REGION, lanes=lanes
        )
    if san.config.racecheck and bool(ok.any()):
        san.race.access(
            region, addresses[ok], lanes[ok], mode, kernel=_REGION
        )
    return ok


def atomic_add(
    device: Device,
    array: np.ndarray,
    addresses: np.ndarray,
    values: np.ndarray,
    space: MemoryKind,
    bucket: str = "atomics",
) -> None:
    """Concurrent ``array[addresses] += values`` with conflict costing.

    ``addresses`` are the per-lane targets of one simultaneous warp/block
    step; duplicates serialise.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if len(addresses) == 0:
        return
    san = analysis.current()
    if san is not None:
        ok = _sanitize_access(san, array, addresses, "atomic", space)
        addresses, values = addresses[ok], values[ok]
        if len(addresses) == 0:
            return
    np.add.at(array, addresses, values)
    conflict = _max_conflict(addresses)
    device.profiler.charge(
        bucket, device.config.cost.atomic(space, n=1, max_conflict=conflict)
    )
    device.profiler.count(f"{space.value}_atomics", len(addresses))


def atomic_cas_claim(
    device: Device,
    slots: np.ndarray,
    addresses: np.ndarray,
    keys: np.ndarray,
    empty: int,
    space: MemoryKind,
    bucket: str = "atomics",
) -> np.ndarray:
    """Concurrent compare-and-swap claims of hashtable buckets.

    Each lane tries ``CAS(slots[addr], empty, key)``. Returns the value each
    lane observed *before* its own CAS resolved (the CUDA return-value
    semantics): ``empty`` means the lane won the bucket, the winner's key
    means it lost to a same-step claimant, an existing key means the bucket
    was already owned.

    Lanes are resolved in lane order, which is a legal serialisation of the
    hardware's arbitrary one. Faulting lanes (out-of-bounds addresses under
    an active sanitizer) observe ``empty`` and claim nothing.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    keys = np.asarray(keys, dtype=np.int64)
    observed = np.full(len(addresses), empty, dtype=np.int64)
    san = analysis.current()
    valid = None
    if san is not None and len(addresses):
        valid = _sanitize_access(san, slots, addresses, "atomic", space)
    for lane, (addr, key) in enumerate(zip(addresses, keys)):
        if valid is not None and not valid[lane]:
            continue
        observed[lane] = slots[addr]
        if slots[addr] == empty:
            slots[addr] = key
    if len(addresses):
        conflict = _max_conflict(addresses if valid is None else addresses[valid])
        device.profiler.charge(
            bucket, device.config.cost.atomic(space, n=1, max_conflict=conflict)
        )
        device.profiler.count(f"{space.value}_atomics", len(addresses))
    return observed


def plain_store(
    device: Device,
    array: np.ndarray,
    addresses: np.ndarray,
    values: np.ndarray,
    space: MemoryKind,
    bucket: str = "stores",
) -> None:
    """Non-atomic scatter ``array[addresses] = values`` for one step.

    Lanes resolve in lane order (last writer wins on duplicates — exactly
    the nondeterminism the racecheck exists to flag: concurrent plain
    writes to one address are a ``write-write`` hazard).
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    values = np.asarray(values)
    if len(addresses) == 0:
        return
    san = analysis.current()
    if san is not None:
        ok = _sanitize_access(san, array, addresses, "write", space)
        addresses, values = addresses[ok], values[ok]
        if len(addresses) == 0:
            return
    array[addresses] = values
    device.profiler.charge(
        bucket, device.config.cost.access(space, n=len(addresses))
    )
    device.profiler.count(f"{space.value}_stores", len(addresses))


def plain_load(
    device: Device,
    array: np.ndarray,
    addresses: np.ndarray,
    space: MemoryKind,
    bucket: str = "loads",
) -> np.ndarray:
    """Non-atomic gather ``array[addresses]`` for one step.

    Reads record ``read`` events: overlapping a write by another lane in
    the same epoch is a ``read-write`` hazard. Faulting lanes (under an
    active sanitizer) read 0.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if len(addresses) == 0:
        return np.empty(0, dtype=array.dtype)
    out = np.zeros(len(addresses), dtype=array.dtype)
    san = analysis.current()
    ok = None
    if san is not None:
        ok = _sanitize_access(san, array, addresses, "read", space)
    if ok is None:
        out[:] = array[addresses]
    elif bool(ok.any()):
        out[ok] = array[addresses[ok]]
    device.profiler.charge(
        bucket, device.config.cost.access(space, n=len(addresses))
    )
    device.profiler.count(f"{space.value}_loads", len(addresses))
    return out
