"""Kernel launch configuration and occupancy accounting.

The simulator's kernels charge *serial* cycles (every simulated access
summed). Real GPUs overlap thousands of warps; this module supplies the
conversion: a :class:`LaunchPlan` maps a workload onto blocks/warps, its
:func:`occupancy` says how many warps the device can keep in flight, and
``parallel_seconds`` divides serial cycles by the effective parallelism —
the throughput view used when comparing simulated runtimes across
configurations with *different* parallel shapes (e.g. warp-per-vertex vs
block-per-vertex in the Figure 9 workloads).

Within one experiment all variants share a shape, so relative orderings are
unaffected; this module exists to expose the absolute-scale assumption
explicitly rather than bury it in the cost constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError
from repro.gpusim.device import Device, DeviceConfig


@dataclass(frozen=True)
class LaunchPlan:
    """One kernel launch: how a vertex workload maps onto the device."""

    num_blocks: int
    threads_per_block: int
    #: vertices handled per warp (shuffle kernel: 1) or per block (hash: 1)
    items_per_group: int
    #: "warp" or "block" — the cooperative group owning one vertex
    group: str

    @property
    def total_threads(self) -> int:
        return self.num_blocks * self.threads_per_block

    def warps_per_block(self, config: DeviceConfig) -> int:
        return max(1, self.threads_per_block // config.warp_size)


def plan_warp_per_vertex(
    num_vertices: int, config: DeviceConfig, threads_per_block: int = 256
) -> LaunchPlan:
    """Shuffle-kernel launch: one warp per small-degree vertex."""
    config.validate_block(threads_per_block)
    warps_per_block = threads_per_block // config.warp_size
    if warps_per_block == 0:
        raise DeviceError("block smaller than one warp")
    blocks = -(-num_vertices // warps_per_block)
    return LaunchPlan(
        num_blocks=max(blocks, 1),
        threads_per_block=threads_per_block,
        items_per_group=1,
        group="warp",
    )


def plan_block_per_vertex(
    num_vertices: int, config: DeviceConfig, threads_per_block: int = 128
) -> LaunchPlan:
    """Hash-kernel launch: one block per large-degree vertex."""
    config.validate_block(threads_per_block)
    return LaunchPlan(
        num_blocks=max(num_vertices, 1),
        threads_per_block=threads_per_block,
        items_per_group=1,
        group="block",
    )


def occupancy(plan: LaunchPlan, config: DeviceConfig) -> float:
    """Fraction of the device's warp slots the launch can fill, in (0, 1].

    Simplified A100 occupancy: 64 warp slots per SM, limited by how many
    of the launch's blocks fit per SM (shared-memory-agnostic — the
    kernels size their tables to fit by construction).
    """
    warp_slots_per_sm = 64
    warps_per_block = plan.warps_per_block(config)
    blocks_per_sm = max(1, warp_slots_per_sm // warps_per_block)
    resident_blocks = min(plan.num_blocks, blocks_per_sm * config.num_sms)
    resident_warps = resident_blocks * warps_per_block
    return min(1.0, resident_warps / (warp_slots_per_sm * config.num_sms))


def effective_parallelism(plan: LaunchPlan, config: DeviceConfig) -> float:
    """How many warps the whole device executes concurrently for this
    launch (>= 1)."""
    warp_slots_per_sm = 64
    return max(1.0, occupancy(plan, config) * warp_slots_per_sm * config.num_sms)


def parallel_seconds(
    device: Device, serial_cycles: float, plan: LaunchPlan
) -> float:
    """Convert serial simulated cycles into throughput-view seconds."""
    para = effective_parallelism(plan, device.config)
    return device.cycles_to_seconds(serial_cycles / para)
