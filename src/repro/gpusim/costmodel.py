"""Cycle-cost model of the simulated GPU's memory hierarchy.

Latency constants approximate an NVIDIA A100 (the paper's hardware) in SM
clock cycles. Absolute values matter less than the *ratios* — the
experiments report relative speedups, and the ratios (register ≪ shared ≪
global, atomics costlier than plain accesses, warp primitives ≈ a few
cycles) are what drive the paper's Figures 4/6/9.

Coalescing: a warp accessing consecutive global addresses is served by a
single memory transaction. The kernels pass ``coalesced=True`` for their
streaming loads of adjacency rows (consecutive by construction), in which
case the per-access cost is divided by the warp width, modelling perfect
coalescing; scattered accesses (hash probes, community lookups) pay the
full per-transaction latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class MemoryKind(str, Enum):
    """Levels of the simulated memory hierarchy."""

    REGISTER = "register"
    SHARED = "shared"
    GLOBAL = "global"


@dataclass(frozen=True)
class CostModel:
    """Latency table, in SM cycles."""

    register_cycles: float = 1.0
    shared_cycles: float = 25.0
    global_cycles: float = 400.0
    #: additional cost of an atomic beyond the plain access (reservation +
    #: L2 round trip for global atomics)
    shared_atomic_cycles: float = 30.0
    global_atomic_cycles: float = 200.0
    #: one warp-level primitive (__match_any_sync / __reduce_*_sync / shfl)
    warp_primitive_cycles: float = 6.0
    #: plain ALU op
    alu_cycles: float = 1.0
    warp_size: int = 32

    def access(self, kind: MemoryKind, n: int = 1, coalesced: bool = False) -> float:
        """Cycles for ``n`` accesses at level ``kind``."""
        base = {
            MemoryKind.REGISTER: self.register_cycles,
            MemoryKind.SHARED: self.shared_cycles,
            MemoryKind.GLOBAL: self.global_cycles,
        }[kind]
        if coalesced and kind is MemoryKind.GLOBAL:
            # n consecutive addresses -> ceil(n / warp_size) transactions
            transactions = -(-n // self.warp_size)
            return base * transactions
        return base * n

    def atomic(self, kind: MemoryKind, n: int = 1, max_conflict: int = 1) -> float:
        """Cycles for ``n`` atomics, serialised ``max_conflict`` deep.

        When several lanes hit the same address simultaneously the hardware
        serialises them; the worst chain dominates the warp's latency, so
        the cost scales with ``max_conflict``.
        """
        if kind is MemoryKind.SHARED:
            per = self.shared_cycles + self.shared_atomic_cycles
        elif kind is MemoryKind.GLOBAL:
            per = self.global_cycles + self.global_atomic_cycles
        else:
            raise ValueError("atomics operate on shared or global memory")
        return per * n * max(1, max_conflict)

    def warp_primitive(self, n: int = 1) -> float:
        return self.warp_primitive_cycles * n

    def alu(self, n: int = 1) -> float:
        return self.alu_cycles * n


def shared_bank_conflict_factor(addresses, banks: int = 32) -> int:
    """Serialisation factor of one simultaneous shared-memory warp access.

    Shared memory is striped over ``banks`` banks; lanes hitting *distinct*
    addresses in the same bank serialise, while lanes reading the *same*
    address broadcast for free. Returns the worst per-bank count of
    distinct addresses (>= 1 when any access happens).
    """
    import numpy as np

    addresses = np.asarray(addresses, dtype=np.int64)
    if len(addresses) == 0:
        return 0
    unique = np.unique(addresses)  # same-address lanes broadcast
    per_bank = np.bincount(unique % banks, minlength=banks)
    return int(per_bank.max())
