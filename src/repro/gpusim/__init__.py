"""Simulated GPU substrate.

The paper's memory-management contributions (Section 4) are about *where*
the DecideAndMove intermediate states live in the GPU memory hierarchy —
registers exchanged with warp primitives, a hashtable split across shared
and global memory — and how many accesses land on each level. This package
provides a functional simulator of exactly those mechanisms:

* :mod:`costmodel` / :mod:`profiler` — a cycle-cost model (A100-flavoured
  latencies) and named accounting buckets;
* :mod:`device`   — device configuration (warp size, shared-memory budget);
* :mod:`warp`     — warp-level primitives (``__match_any_sync``,
  ``__reduce_add_sync``, ``__reduce_max_sync``, ``__shfl_sync``), scalar
  (:class:`~repro.gpusim.warp.WarpContext`) and batched
  (:class:`~repro.gpusim.warp.WarpBatch`);
* :mod:`atomics`  — atomicAdd / atomicCAS with serialisation-conflict costs;
* :mod:`hashtable` — the three hashtable designs the paper compares
  (global-only, unified, hierarchical), plus the batched
  structure-of-arrays execution of many tables at once;
* :mod:`nccl`     — ring AllReduce / AllGather collectives with a
  bandwidth-latency communication cost model (for multi-GPU scaling).

Simulated kernels execute real computation (they return bit-identical
community decisions to the vectorised backend — tested) while charging the
cost model for every simulated memory access, so relative kernel costs
reproduce the paper's orderings without CUDA hardware.

Two execution engines drive the simulated kernels:

* ``"batched"`` (default) — structure-of-arrays NumPy execution of whole
  degree-bucketed vertex batches per step; bit-exact with the scalar
  engine in both decisions and every profiler counter (tested), and fast
  enough to run fig4/fig9 at paper-comparable scale;
* ``"scalar"``  — the one-vertex-at-a-time reference interpreter.

Select per kernel (``engine=...``), per run (``GalaConfig.gpusim_engine``)
or globally via the ``REPRO_GPUSIM_ENGINE`` environment variable.
"""

import os

from repro.gpusim.costmodel import CostModel, MemoryKind
from repro.gpusim.device import Device, DeviceConfig
from repro.gpusim.profiler import SimProfiler
from repro.gpusim.warp import WarpBatch, WarpContext

#: Engines the simulated kernels accept, in preference order.
ENGINES = ("batched", "scalar")


def resolve_engine(engine: str | None = None) -> str:
    """Resolve the gpusim execution engine.

    Explicit argument wins; otherwise the ``REPRO_GPUSIM_ENGINE``
    environment variable; otherwise ``"batched"``.
    """
    if engine is None:
        engine = os.environ.get("REPRO_GPUSIM_ENGINE") or "batched"
    engine = str(engine).lower()
    if engine not in ENGINES:
        raise ValueError(
            f"unknown gpusim engine {engine!r}; expected one of {list(ENGINES)}"
        )
    return engine


__all__ = [
    "CostModel",
    "MemoryKind",
    "Device",
    "DeviceConfig",
    "SimProfiler",
    "WarpContext",
    "WarpBatch",
    "ENGINES",
    "resolve_engine",
]
