"""Simulated GPU substrate.

The paper's memory-management contributions (Section 4) are about *where*
the DecideAndMove intermediate states live in the GPU memory hierarchy —
registers exchanged with warp primitives, a hashtable split across shared
and global memory — and how many accesses land on each level. This package
provides a functional simulator of exactly those mechanisms:

* :mod:`costmodel` / :mod:`profiler` — a cycle-cost model (A100-flavoured
  latencies) and named accounting buckets;
* :mod:`device`   — device configuration (warp size, shared-memory budget);
* :mod:`warp`     — warp-level primitives (``__match_any_sync``,
  ``__reduce_add_sync``, ``__reduce_max_sync``, ``__shfl_sync``);
* :mod:`atomics`  — atomicAdd / atomicCAS with serialisation-conflict costs;
* :mod:`hashtable` — the three hashtable designs the paper compares
  (global-only, unified, hierarchical);
* :mod:`nccl`     — ring AllReduce / AllGather collectives with a
  bandwidth-latency communication cost model (for multi-GPU scaling).

Simulated kernels execute real computation (they return bit-identical
community decisions to the vectorised backend — tested) while charging the
cost model for every simulated memory access, so relative kernel costs
reproduce the paper's orderings without CUDA hardware.
"""

from repro.gpusim.costmodel import CostModel, MemoryKind
from repro.gpusim.device import Device, DeviceConfig
from repro.gpusim.profiler import SimProfiler
from repro.gpusim.warp import WarpContext

__all__ = [
    "CostModel",
    "MemoryKind",
    "Device",
    "DeviceConfig",
    "SimProfiler",
    "WarpContext",
]
