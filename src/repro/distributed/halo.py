"""Per-rank graph views and ghost-vertex bookkeeping.

A :class:`RankView` is what one MPI rank would hold in a Vite-style
distributed Louvain:

* the ids it **owns** (it decides moves for these and is the single
  writer of their state);
* its **ghosts** — non-owned vertices adjacent to an owned vertex, whose
  community ids the rank must mirror to evaluate gains;
* for each *other* rank, which of this rank's owned vertices that rank
  ghosts (the send list of the halo exchange).

Send lists are the transpose of ghost sets, so a rank only ever sends an
update to ranks that actually mirror the vertex — the communication-
volume property that distinguishes halo exchange from broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph
from repro.graph.partition import VertexPartition


@dataclass
class RankView:
    """One rank's ownership + halo structure."""

    rank: int
    owned: np.ndarray  # sorted vertex ids this rank owns
    ghosts: np.ndarray  # sorted non-owned vertices adjacent to owned ones
    #: send_lists[r] = owned vertices that rank r keeps as ghosts
    send_lists: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def num_owned(self) -> int:
        return len(self.owned)

    @property
    def num_ghosts(self) -> int:
        return len(self.ghosts)

    def visible(self) -> np.ndarray:
        """All vertices whose community id this rank can read locally."""
        return np.union1d(self.owned, self.ghosts)


def build_rank_views(
    graph: CSRGraph, partition: VertexPartition, chunk_edges: int = 1 << 20
) -> list[RankView]:
    """Construct every rank's view from a vertex partition.

    Scans the adjacency in row blocks of at most ``chunk_edges`` entries
    (a single row may exceed that only by its own degree) and marks ghosts
    in a ``(ranks, n)`` bitmap, so peak heap is O(ranks * n + chunk) and
    never O(E) — out-of-core graphs page through their mapped arrays
    block by block.
    """
    if partition.n != graph.n:
        raise PartitionError("partition does not cover this graph")
    k = partition.num_parts
    owner = partition.owner
    indptr = graph.indptr

    ghost_flags = np.zeros((k, graph.n), dtype=bool)
    start = 0
    while start < graph.n:
        stop = int(
            np.searchsorted(indptr, indptr[start] + chunk_edges, side="right") - 1
        )
        stop = min(max(stop, start + 1), graph.n)
        nbrs = np.asarray(graph.indices[indptr[start] : indptr[stop]])
        row_owner = np.repeat(
            owner[start:stop], np.diff(indptr[start : stop + 1])
        )
        cross = owner[nbrs] != row_owner
        ghost_flags[row_owner[cross], nbrs[cross]] = True
        start = stop

    views = [
        RankView(
            rank=r,
            owned=np.flatnonzero(owner == r),
            ghosts=np.flatnonzero(ghost_flags[r]),
        )
        for r in range(k)
    ]

    # transpose ghost sets into send lists
    for r, view in enumerate(views):
        for other in views:
            if other.rank == r:
                continue
            mine_ghosted_there = other.ghosts[owner[other.ghosts] == r]
            if len(mine_ghosted_there):
                view.send_lists[other.rank] = mine_ghosted_there
    return views
