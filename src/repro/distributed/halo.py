"""Per-rank graph views and ghost-vertex bookkeeping.

A :class:`RankView` is what one MPI rank would hold in a Vite-style
distributed Louvain:

* the ids it **owns** (it decides moves for these and is the single
  writer of their state);
* its **ghosts** — non-owned vertices adjacent to an owned vertex, whose
  community ids the rank must mirror to evaluate gains;
* for each *other* rank, which of this rank's owned vertices that rank
  ghosts (the send list of the halo exchange).

Send lists are the transpose of ghost sets, so a rank only ever sends an
update to ranks that actually mirror the vertex — the communication-
volume property that distinguishes halo exchange from broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph
from repro.graph.partition import VertexPartition


@dataclass
class RankView:
    """One rank's ownership + halo structure."""

    rank: int
    owned: np.ndarray  # sorted vertex ids this rank owns
    ghosts: np.ndarray  # sorted non-owned vertices adjacent to owned ones
    #: send_lists[r] = owned vertices that rank r keeps as ghosts
    send_lists: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def num_owned(self) -> int:
        return len(self.owned)

    @property
    def num_ghosts(self) -> int:
        return len(self.ghosts)

    def visible(self) -> np.ndarray:
        """All vertices whose community id this rank can read locally."""
        return np.union1d(self.owned, self.ghosts)


def build_rank_views(
    graph: CSRGraph, partition: VertexPartition
) -> list[RankView]:
    """Construct every rank's view from a vertex partition."""
    if partition.n != graph.n:
        raise PartitionError("partition does not cover this graph")
    k = partition.num_parts
    owner = partition.owner
    row = np.repeat(np.arange(graph.n), np.diff(graph.indptr))

    views: list[RankView] = []
    for r in range(k):
        owned = np.flatnonzero(owner == r)
        mask = owner[row] == r
        nbrs = graph.indices[mask]
        ghosts = np.unique(nbrs[owner[nbrs] != r])
        views.append(RankView(rank=r, owned=owned, ghosts=ghosts))

    # transpose ghost sets into send lists
    for r, view in enumerate(views):
        for other in views:
            if other.rank == r:
                continue
            mine_ghosted_there = other.ghosts[owner[other.ghosts] == r]
            if len(mine_ghosted_there):
                view.send_lists[other.rank] = mine_ghosted_there
    return views
