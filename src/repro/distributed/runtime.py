"""Distributed BSP phase 1 with halo exchange (Vite-style, paper ref [24]).

Each simulated rank holds its own community array, valid only on its
owned + ghost entries. Per iteration (driven by the unified engine in
:mod:`repro.core.engine`):

1. every rank runs DecideAndMove for its owned active vertices against
   its local view (ghost community ids + globally allreduced community
   aggregates — the same consistent BSP snapshot every rank shares);
2. each rank applies its own moves, then sends each neighbouring rank
   exactly the (vertex, new community) pairs that rank ghosts — the halo
   exchange, with per-message byte/latency accounting;
3. community strengths are rebuilt from per-rank owned contributions with
   one AllReduce (they are O(#communities), not O(n)).

Because every rank computes from the identical BSP snapshot, the final
assignment is bit-identical to the single-engine result for any rank
count and any partition (tested). What differs — and what this module
measures — is the communication: halo volume is proportional to the
*boundary* moved vertices, not to n.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import (
    EngineConfig,
    Executor,
    IterationTrace,
    run_engine,
)
from repro.core.kernels.vectorized import decide_moves
from repro.core.state import CommunityState
from repro.core.weights import make_weight_updater
from repro.graph.csr import CSRGraph
from repro.graph.partition import VertexPartition, partition_contiguous
from repro.distributed.halo import RankView, build_rank_views
from repro.obs import _session as obs

#: bytes per halo update record: vertex id (8) + community id (8)
HALO_BYTES_PER_UPDATE = 16
#: simple MPI-ish cost model for the simulated interconnect
LINK_BANDWIDTH = 25e9  # bytes/s
MESSAGE_LATENCY = 2e-6  # seconds per point-to-point message


@dataclass
class HaloStats:
    """Communication accounting for one run."""

    messages: int = 0
    bytes_sent: int = 0
    #: per-iteration payload bytes (all ranks summed)
    bytes_per_iteration: list = field(default_factory=list)

    def record(self, iteration_bytes: int, iteration_messages: int) -> None:
        self.messages += iteration_messages
        self.bytes_sent += iteration_bytes
        self.bytes_per_iteration.append(iteration_bytes)

    def comm_seconds(self) -> float:
        return (
            self.bytes_sent / LINK_BANDWIDTH
            + self.messages * MESSAGE_LATENCY
        )


@dataclass
class DistributedConfig:
    num_ranks: int = 2
    pruning: str = "mg"
    #: community-weight update scheme (``delta``/``recompute``) — the same
    #: factory as the local and multi-GPU runtimes, so the Figure 6
    #: recompute-vs-delta ablation runs distributed too
    weight_update: str = "delta"
    remove_self: bool = True
    resolution: float = 1.0
    theta: float = 1e-6
    patience: int = 3
    max_iterations: int = 500
    #: engine-level FNR/FPR instrumentation (measurement only)
    oracle: bool = False
    seed: int = 0

    def engine_config(self) -> EngineConfig:
        return EngineConfig(
            pruning=self.pruning,
            remove_self=self.remove_self,
            theta=self.theta,
            patience=self.patience,
            max_iterations=self.max_iterations,
            oracle=self.oracle,
            seed=self.seed,
        )


@dataclass
class DistributedResult:
    communities: np.ndarray
    modularity: float
    num_iterations: int
    history: list[IterationTrace]
    views: list[RankView]
    stats: HaloStats
    #: what dense broadcast of the full array every iteration would cost
    broadcast_bytes_equivalent: int = 0


class DistributedExecutor(Executor):
    """Rank-partitioned executor: local-mirror decide, halo-exchange apply."""

    def __init__(
        self,
        graph: CSRGraph,
        config: DistributedConfig,
        partition: VertexPartition | None = None,
    ):
        self.config = config
        part = partition or partition_contiguous(graph, config.num_ranks)
        if part.num_parts != config.num_ranks:
            raise ValueError("partition parts must match num_ranks")
        self.partition = part
        self.views = build_rank_views(graph, part)
        self.updater = make_weight_updater(config.weight_update)
        self.stats = HaloStats()

        # Per-rank local community arrays. Entries outside owned+ghost are
        # poisoned with -1 so any read of a non-mirrored vertex is caught
        # by the equivalence assertions in apply_and_sync.
        self.local_comm: list[np.ndarray] = []
        for view in self.views:
            arr = np.full(graph.n, -1, dtype=np.int64)
            vis = view.visible()
            arr[vis] = vis  # singleton initialisation
            self.local_comm.append(arr)

        # Shared BSP reference state for aggregates/weights. comm_strength
        # and d_comm are maintained exactly as the single engine does;
        # per-rank DecideAndMove reads community ids from the rank's own
        # local array.
        self.state = CommunityState.singletons(
            graph, resolution=config.resolution
        )
        self._moved_per_rank: list[np.ndarray] = []
        self._last_bytes = 0
        self._last_messages = 0

    def decide(self, active_idx: np.ndarray, active: np.ndarray) -> np.ndarray:
        state = self.state
        next_comm = state.comm.copy()
        self._moved_per_rank = []
        for view in self.views:
            idx = view.owned[active[view.owned]]
            if len(idx) == 0:
                self._moved_per_rank.append(np.empty(0, dtype=np.int64))
                continue
            # the rank decides against ITS OWN mirrored ids
            rank_state = CommunityState(
                graph=state.graph,
                comm=self.local_comm[view.rank],
                d_comm=state.d_comm,
                comm_strength=state.comm_strength,
                comm_size=state.comm_size,
                resolution=self.config.resolution,
            )
            result = decide_moves(
                rank_state, idx, remove_self=self.config.remove_self
            )
            movers = idx[result.move]
            next_comm[movers] = result.best_comm[result.move]
            self._moved_per_rank.append(movers)
        return next_comm

    def apply_and_sync(self, next_comm: np.ndarray, moved: np.ndarray) -> float:
        state = self.state

        # Halo exchange: each rank updates its own mirror with (a) its own
        # moves and (b) the updates it receives for its ghosts.
        iteration_bytes = 0
        iteration_messages = 0
        halo_span = obs.span("halo/exchange", ranks=len(self.views))
        with halo_span:
            for view, movers in zip(self.views, self._moved_per_rank):
                self.local_comm[view.rank][movers] = next_comm[movers]
                for dest, send_list in view.send_lists.items():
                    payload = np.intersect1d(movers, send_list, assume_unique=False)
                    if len(payload) == 0:
                        continue
                    self.local_comm[dest][payload] = next_comm[payload]
                    iteration_bytes += len(payload) * HALO_BYTES_PER_UPDATE
                    iteration_messages += 1
            halo_span.tag(bytes=iteration_bytes, messages=iteration_messages)
        obs.inc("comm/halo_bytes_total", iteration_bytes)
        obs.inc("comm/halo_messages_total", iteration_messages)
        self.stats.record(iteration_bytes, iteration_messages)
        self._last_bytes = iteration_bytes
        self._last_messages = iteration_messages

        # Soundness of the mirrors: every rank's visible entries must
        # match the global assignment after the exchange.
        for view in self.views:
            vis = view.visible()
            np.testing.assert_array_equal(
                self.local_comm[view.rank][vis], next_comm[vis]
            )

        # aggregate refresh (the O(#communities) AllReduce)
        prev_comm = state.comm
        state.comm = next_comm
        self.updater(state, prev_comm, moved)
        state.refresh_community_aggregates()
        return state.modularity()

    def collect(self, trace: IterationTrace) -> None:
        trace.comm_bytes = self._last_bytes
        trace.comm_messages = self._last_messages


def run_distributed_phase1(
    graph: CSRGraph,
    config: DistributedConfig | None = None,
    partition: VertexPartition | None = None,
) -> DistributedResult:
    """Run phase 1 across simulated ranks with halo-exchange consistency."""
    cfg = config or DistributedConfig()
    executor = DistributedExecutor(graph, cfg, partition)
    result = run_engine(executor, cfg.engine_config())
    return DistributedResult(
        communities=result.communities,
        modularity=result.modularity,
        num_iterations=result.num_iterations,
        history=result.history,
        views=executor.views,
        stats=executor.stats,
        broadcast_bytes_equivalent=(
            result.num_iterations * graph.n * 8 * cfg.num_ranks
        ),
    )
