"""Distributed BSP phase 1 with halo exchange (Vite-style, paper ref [24]).

Each simulated rank holds its own community array, valid only on its
owned + ghost entries. Per iteration:

1. every rank runs DecideAndMove for its owned active vertices against
   its local view (ghost community ids + globally allreduced community
   aggregates — the same consistent BSP snapshot every rank shares);
2. each rank applies its own moves, then sends each neighbouring rank
   exactly the (vertex, new community) pairs that rank ghosts — the halo
   exchange, with per-message byte/latency accounting;
3. community strengths are rebuilt from per-rank owned contributions with
   one AllReduce (they are O(#communities), not O(n)).

Because every rank computes from the identical BSP snapshot, the final
assignment is bit-identical to the single-engine result for any rank
count and any partition (tested). What differs — and what this module
measures — is the communication: halo volume is proportional to the
*boundary* moved vertices, not to n.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.kernels.vectorized import decide_moves
from repro.core.pruning.base import IterationContext, make_strategy
from repro.core.state import CommunityState
from repro.core.weights import delta_update
from repro.graph.csr import CSRGraph
from repro.graph.partition import VertexPartition, partition_contiguous
from repro.distributed.halo import RankView, build_rank_views
from repro.utils.rng import as_generator

#: bytes per halo update record: vertex id (8) + community id (8)
HALO_BYTES_PER_UPDATE = 16
#: simple MPI-ish cost model for the simulated interconnect
LINK_BANDWIDTH = 25e9  # bytes/s
MESSAGE_LATENCY = 2e-6  # seconds per point-to-point message


@dataclass
class HaloStats:
    """Communication accounting for one run."""

    messages: int = 0
    bytes_sent: int = 0
    #: per-iteration payload bytes (all ranks summed)
    bytes_per_iteration: list = field(default_factory=list)

    def record(self, iteration_bytes: int, iteration_messages: int) -> None:
        self.messages += iteration_messages
        self.bytes_sent += iteration_bytes
        self.bytes_per_iteration.append(iteration_bytes)

    def comm_seconds(self) -> float:
        return (
            self.bytes_sent / LINK_BANDWIDTH
            + self.messages * MESSAGE_LATENCY
        )


@dataclass
class DistributedConfig:
    num_ranks: int = 2
    pruning: str = "mg"
    remove_self: bool = True
    resolution: float = 1.0
    theta: float = 1e-6
    patience: int = 3
    max_iterations: int = 500
    seed: int = 0


@dataclass
class DistributedResult:
    communities: np.ndarray
    modularity: float
    num_iterations: int
    views: list[RankView]
    stats: HaloStats
    #: what dense broadcast of the full array every iteration would cost
    broadcast_bytes_equivalent: int = 0


def run_distributed_phase1(
    graph: CSRGraph,
    config: DistributedConfig | None = None,
    partition: VertexPartition | None = None,
) -> DistributedResult:
    """Run phase 1 across simulated ranks with halo-exchange consistency."""
    cfg = config or DistributedConfig()
    part = partition or partition_contiguous(graph, cfg.num_ranks)
    if part.num_parts != cfg.num_ranks:
        raise ValueError("partition parts must match num_ranks")
    views = build_rank_views(graph, part)
    owner = part.owner

    # Per-rank local community arrays. Entries outside owned+ghost are
    # poisoned with -1 so any read of a non-mirrored vertex is caught by
    # the equivalence assertions below.
    local_comm = []
    for view in views:
        arr = np.full(graph.n, -1, dtype=np.int64)
        vis = view.visible()
        arr[vis] = vis  # singleton initialisation
        local_comm.append(arr)

    # Shared BSP reference state for aggregates/weights. comm_strength and
    # d_comm are maintained exactly as the single engine does; per-rank
    # DecideAndMove reads community ids from the rank's own local array.
    state = CommunityState.singletons(graph, resolution=cfg.resolution)
    strategy = make_strategy(cfg.pruning)
    strategy.reset(state)
    active = strategy.initial_active(state)
    rng = as_generator(cfg.seed)

    q = state.modularity()
    best_q = q
    best_comm = state.comm.copy()
    bad_streak = 0
    stats = HaloStats()
    iterations = 0

    for it in range(cfg.max_iterations):
        iterations += 1
        next_comm = state.comm.copy()
        moved_per_rank: list[np.ndarray] = []

        for view in views:
            idx = view.owned[active[view.owned]]
            if len(idx) == 0:
                moved_per_rank.append(np.empty(0, dtype=np.int64))
                continue
            # the rank decides against ITS OWN mirrored ids
            rank_state = CommunityState(
                graph=graph,
                comm=local_comm[view.rank],
                d_comm=state.d_comm,
                comm_strength=state.comm_strength,
                comm_size=state.comm_size,
                resolution=cfg.resolution,
            )
            result = decide_moves(rank_state, idx, remove_self=cfg.remove_self)
            movers = idx[result.move]
            next_comm[movers] = result.best_comm[result.move]
            moved_per_rank.append(movers)

        moved = next_comm != state.comm
        num_moved = int(moved.sum())

        # Halo exchange: each rank updates its own mirror with (a) its own
        # moves and (b) the updates it receives for its ghosts.
        iteration_bytes = 0
        iteration_messages = 0
        for view, movers in zip(views, moved_per_rank):
            local_comm[view.rank][movers] = next_comm[movers]
            for dest, send_list in view.send_lists.items():
                payload = np.intersect1d(movers, send_list, assume_unique=False)
                if len(payload) == 0:
                    continue
                local_comm[dest][payload] = next_comm[payload]
                iteration_bytes += len(payload) * HALO_BYTES_PER_UPDATE
                iteration_messages += 1
        stats.record(iteration_bytes, iteration_messages)

        # Soundness of the mirrors: every rank's visible entries must
        # match the global assignment after the exchange.
        for view in views:
            vis = view.visible()
            np.testing.assert_array_equal(
                local_comm[view.rank][vis], next_comm[vis]
            )

        # aggregate refresh (the O(#communities) AllReduce)
        prev_comm = state.comm
        state.comm = next_comm
        delta_update(state, prev_comm, moved)
        state.refresh_community_aggregates()
        next_q = state.modularity()

        improved = next_q >= best_q + cfg.theta
        if next_q > best_q:
            best_q = next_q
            best_comm = state.comm.copy()

        ctx = IterationContext(
            state=state, prev_comm=prev_comm, moved=moved, active=active,
            iteration=it, rng=rng, remove_self=cfg.remove_self,
        )
        active = strategy.next_active(ctx)
        q = next_q
        bad_streak = 0 if improved else bad_streak + 1
        if bad_streak >= cfg.patience or num_moved == 0:
            break

    # Mirror the single engine's return-best semantics exactly, ties
    # included: when the final sweep's Q bit-equals the best seen (a limit
    # cycle), the single engine keeps the *final* state, not the snapshot —
    # the bit-identical-assignment guarantee covers that case too.
    if best_q > q:
        final_comm, final_q = best_comm, best_q
    else:
        final_comm, final_q = state.comm.copy(), q
    return DistributedResult(
        communities=final_comm,
        modularity=float(final_q),
        num_iterations=iterations,
        views=views,
        stats=stats,
        broadcast_bytes_equivalent=iterations * graph.n * 8 * cfg.num_ranks,
    )
