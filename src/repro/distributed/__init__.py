"""Distributed-memory Louvain with ghost-vertex halo exchange (Vite-style).

The paper's lineage includes Vite [24], which runs Louvain over MPI ranks:
each rank owns a vertex partition, keeps *ghost* copies of the community
ids of non-owned neighbours, and after every BSP iteration exchanges only
the updates its neighbours need ("halo exchange") instead of broadcasting
full arrays (the multi-GPU runtime's NCCL pattern).

This package simulates that model faithfully: per-rank views with explicit
ghost sets, point-to-point messages with byte/latency accounting, and an
equivalence guarantee — the distributed run is bit-identical to the
single-engine BSP result for any rank count (tested).
"""

from repro.distributed.halo import RankView, build_rank_views
from repro.distributed.runtime import (
    DistributedConfig,
    DistributedExecutor,
    DistributedResult,
    run_distributed_phase1,
)

__all__ = [
    "RankView",
    "build_rank_views",
    "DistributedConfig",
    "DistributedExecutor",
    "DistributedResult",
    "run_distributed_phase1",
]
