"""Dense / sparse / adaptive synchronisation (paper Section 4.3).

After each BSP iteration every device must see every vertex's new community
id, movement flag, and community weight. Two representations [18]:

* **dense** — AllReduce full-length arrays. Volume is O(n) regardless of
  how much changed; best in early iterations when most vertices move.
* **sparse** — AllGather only the moved vertices as (id, value) pairs.
  Volume is O(moved); wins in late iterations, at the cost of a local
  scatter ("slight data rearrangement overhead", which we charge too).

The adaptive policy compares the two volumes each iteration and picks the
cheaper one, which is exactly the paper's "threshold according to
communication size".
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np


class SyncMode(str, Enum):
    DENSE = "dense"
    SPARSE = "sparse"
    ADAPTIVE = "adaptive"


#: bytes synchronised per vertex in dense mode: community id (8) +
#: movement flag (1) + community weight (8)
DENSE_BYTES_PER_VERTEX = 17
#: bytes per moved vertex in sparse mode: vertex id (8) + community id (8)
#: + community weight (8)
SPARSE_BYTES_PER_MOVED = 24


@dataclass(frozen=True)
class SyncPlan:
    """The volume comparison behind one iteration's mode choice."""

    mode: SyncMode
    dense_bytes: int
    sparse_bytes: int
    num_moved: int
    n: int

    @property
    def chosen_bytes(self) -> int:
        return self.dense_bytes if self.mode is SyncMode.DENSE else self.sparse_bytes


def choose_sync_mode(
    n: int, num_moved: int, requested: SyncMode = SyncMode.ADAPTIVE
) -> SyncPlan:
    """Pick dense vs sparse for one iteration.

    In adaptive mode, sparse wins when its total volume (every rank
    gathering every other rank's moved set) is below the dense AllReduce
    volume.
    """
    dense_bytes = n * DENSE_BYTES_PER_VERTEX
    sparse_bytes = num_moved * SPARSE_BYTES_PER_MOVED
    if requested is SyncMode.ADAPTIVE:
        mode = SyncMode.SPARSE if sparse_bytes < dense_bytes else SyncMode.DENSE
    else:
        mode = requested
    return SyncPlan(
        mode=mode,
        dense_bytes=dense_bytes,
        sparse_bytes=sparse_bytes,
        num_moved=num_moved,
        n=n,
    )


def dense_sync_comm(comm_chunks, owners_masks, communicator):
    """Dense AllReduce of the full community array.

    Each rank contributes a full-length buffer holding its owned entries
    and ``-1`` elsewhere; a max-AllReduce reconstructs the global array
    (community ids are non-negative).
    """
    buffers = []
    for chunk, mask in zip(comm_chunks, owners_masks):
        buf = np.full(len(mask), -1, dtype=np.int64)
        buf[mask] = chunk[mask]
        buffers.append(buf)
    return communicator.all_reduce_max(buffers)


def sparse_sync_comm(comm, moved_ids_per_rank, communicator):
    """Sparse AllGather of (vertex, community) pairs of moved vertices.

    ``comm`` is each rank's pre-sync array (identical across ranks for the
    unmoved entries); moved entries are patched in from the gathered pairs.
    Returns the patched array.
    """
    pairs = []
    for ids in moved_ids_per_rank:
        ids = np.asarray(ids, dtype=np.int64)
        pairs.append(np.stack([ids, comm[ids]]) if len(ids) else np.empty((2, 0), dtype=np.int64))
    flat = [p.ravel() for p in pairs]
    gathered = communicator.all_gather(flat)
    # Rebuild: consume each rank's (ids, values) block.
    out = comm.copy()
    offset = 0
    for p in pairs:
        k = p.shape[1]
        block = gathered[offset: offset + 2 * k].reshape(2, k)
        out[block[0]] = block[1]
        offset += 2 * k
    return out
