"""Multi-GPU BSP phase-1 runtime (paper Section 4.3, Figure 10).

Each simulated device owns a vertex partition. Per iteration:

1. every device runs DecideAndMove for its *owned, active* vertices and is
   charged a computation cost proportional to the adjacency it streamed
   (the same cost model as the single-GPU kernels);
2. devices exchange the updated per-vertex state with the configured
   dense/sparse/adaptive synchronisation, moving real buffers through the
   simulated NCCL communicator (charged with the ring cost model);
3. every device applies the merged state and proceeds.

Because the BSP snapshot every device computes from is identical, the
multi-GPU run produces **bit-identical communities** to the single-GPU
engine (a test invariant); what changes is the simulated time: computation
shrinks with more devices, communication does not — reproducing Figure
10(b)'s breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.kernels.vectorized import decide_moves
from repro.core.pruning.base import IterationContext, make_strategy
from repro.core.state import CommunityState
from repro.core.weights import make_weight_updater
from repro.graph.csr import CSRGraph
from repro.graph.partition import VertexPartition, partition_contiguous
from repro.gpusim.costmodel import MemoryKind
from repro.gpusim.device import Device, DeviceConfig
from repro.gpusim.nccl import Communicator
from repro.multigpu.sync import (
    SyncMode,
    SyncPlan,
    choose_sync_mode,
    dense_sync_comm,
    sparse_sync_comm,
)
from repro.utils.rng import as_generator


@dataclass
class MultiGpuConfig:
    """Configuration of a multi-GPU phase-1 run."""

    num_gpus: int = 1
    sync_mode: SyncMode = SyncMode.ADAPTIVE
    pruning: str = "mg"
    weight_update: str = "delta"
    remove_self: bool = True
    theta: float = 1e-6
    patience: int = 3
    max_iterations: int = 500
    seed: int = 0
    device_config: DeviceConfig = field(default_factory=DeviceConfig)


@dataclass
class MultiGpuIteration:
    """Per-iteration record: what moved and what the sync cost."""

    iteration: int
    num_active: int
    num_moved: int
    modularity: float
    sync_plan: SyncPlan


@dataclass
class MultiGpuResult:
    """Result plus per-device simulated time breakdown."""

    communities: np.ndarray
    modularity: float
    num_iterations: int
    history: list[MultiGpuIteration]
    devices: list[Device]
    partition: VertexPartition

    def compute_seconds(self) -> float:
        """Parallel computation time: the slowest device's compute cycles."""
        return max(
            d.cycles_to_seconds(d.profiler.cycles.get("compute", 0.0))
            for d in self.devices
        )

    def comm_seconds(self) -> float:
        """Communication time (identical on every device; take device 0)."""
        d = self.devices[0]
        comm = sum(
            v for k, v in d.profiler.cycles.items() if k.startswith("comm")
        )
        return d.cycles_to_seconds(comm)

    def total_seconds(self) -> float:
        return self.compute_seconds() + self.comm_seconds()


def _estimate_decide_cycles(
    graph: CSRGraph, active_idx: np.ndarray, device: Device
) -> float:
    """Computation cost of DecideAndMove over ``active_idx``.

    Same per-edge accounting as the simulated kernels: coalesced row loads
    (indices + weights), a scattered community load, gain ALU work, plus
    per-vertex fixed overhead — without the per-vertex Python loop, so the
    multi-GPU experiments can run at realistic sizes.
    """
    cost = device.config.cost
    degrees = np.diff(graph.indptr)[active_idx]
    edges = int(degrees.sum())
    n_vert = len(active_idx)
    cycles = (
        cost.access(MemoryKind.GLOBAL, edges, coalesced=True) * 2
        + cost.access(MemoryKind.GLOBAL, edges)
        + cost.alu(edges * 4)
        + cost.warp_primitive(n_vert * 3)
    )
    return cycles


def run_multigpu_phase1(
    graph: CSRGraph,
    config: MultiGpuConfig | None = None,
    partition: VertexPartition | None = None,
) -> MultiGpuResult:
    """Run phase 1 distributed over ``config.num_gpus`` simulated devices."""
    cfg = config or MultiGpuConfig()
    part = partition or partition_contiguous(graph, cfg.num_gpus)
    if part.num_parts != cfg.num_gpus:
        raise ValueError("partition parts must match num_gpus")
    devices = [
        Device(config=cfg.device_config, device_id=i) for i in range(cfg.num_gpus)
    ]
    communicator = Communicator(devices)
    owned_masks = [part.owner == i for i in range(cfg.num_gpus)]

    strategy = make_strategy(cfg.pruning)
    updater = make_weight_updater(cfg.weight_update)
    rng = as_generator(cfg.seed)

    state = CommunityState.singletons(graph)
    strategy.reset(state)
    active = strategy.initial_active(state)
    q = state.modularity()
    best_q = q
    best_state = None
    bad_streak = 0
    history: list[MultiGpuIteration] = []

    for it in range(cfg.max_iterations):
        next_comm = state.comm.copy()
        moved_ids_per_rank: list[np.ndarray] = []
        total_active = 0

        # (1) per-device DecideAndMove on owned active vertices
        for dev, mask in zip(devices, owned_masks):
            idx = np.flatnonzero(active & mask)
            total_active += len(idx)
            if len(idx):
                result = decide_moves(state, idx, remove_self=cfg.remove_self)
                movers = idx[result.move]
                next_comm[movers] = result.best_comm[result.move]
                moved_ids_per_rank.append(movers)
            else:
                moved_ids_per_rank.append(np.empty(0, dtype=np.int64))
            dev.profiler.charge(
                "compute", _estimate_decide_cycles(graph, idx, dev)
            )

        moved = next_comm != state.comm
        num_moved = int(moved.sum())

        # (2) synchronise the new assignment across devices
        plan = choose_sync_mode(graph.n, num_moved, cfg.sync_mode)
        if plan.mode is SyncMode.DENSE:
            merged = dense_sync_comm(
                [next_comm] * cfg.num_gpus, owned_masks, communicator
            )
        else:
            merged = sparse_sync_comm(next_comm, moved_ids_per_rank, communicator)
            if cfg.num_gpus > 1:
                # local scatter overhead of the sparse representation — a
                # bulk rearrangement kernel, so charged at streaming rates
                for dev in devices:
                    dev.profiler.charge(
                        "comm_sparse_scatter",
                        dev.config.cost.access(
                            MemoryKind.GLOBAL, max(num_moved, 1), coalesced=True
                        ),
                    )
        np.testing.assert_array_equal(merged, next_comm)  # sync soundness

        # (3) apply + update (every device holds the merged state; charge
        # the weight-update stream to the owners)
        prev_comm = state.comm
        state.comm = merged
        updater(state, prev_comm, moved)
        state.refresh_community_aggregates()
        for dev, mask in zip(devices, owned_masks):
            movers_owned = int(np.sum(moved & mask))
            dev.profiler.charge(
                "compute", dev.config.cost.access(MemoryKind.GLOBAL, max(movers_owned, 1)),
            )

        next_q = state.modularity()
        history.append(
            MultiGpuIteration(it, total_active, num_moved, next_q, plan)
        )
        # Progress = a new best by >= theta (limit-cycle-proof; see the
        # single-GPU engine for the rationale).
        improved = next_q >= best_q + cfg.theta
        if next_q > best_q:
            best_q = next_q
            best_state = state.copy()

        ctx = IterationContext(
            state=state,
            prev_comm=prev_comm,
            moved=moved,
            active=active,
            iteration=it,
            rng=rng,
            remove_self=cfg.remove_self,
        )
        active = strategy.next_active(ctx)
        q = next_q
        bad_streak = 0 if improved else bad_streak + 1
        if bad_streak >= cfg.patience or num_moved == 0:
            break

    if best_state is not None and best_q > q:
        state = best_state
        q = best_q
    return MultiGpuResult(
        communities=state.comm.copy(),
        modularity=q,
        num_iterations=len(history),
        history=history,
        devices=devices,
        partition=part,
    )
