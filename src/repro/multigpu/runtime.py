"""Multi-GPU BSP phase-1 runtime (paper Section 4.3, Figure 10).

Each simulated device owns a vertex partition. Per iteration (driven by
the unified engine in :mod:`repro.core.engine`):

1. every device runs DecideAndMove for its *owned, active* vertices and is
   charged a computation cost proportional to the adjacency it streamed
   (the same cost model as the single-GPU kernels);
2. devices exchange the updated per-vertex state with the configured
   dense/sparse/adaptive synchronisation, moving real buffers through the
   simulated NCCL communicator (charged with the ring cost model);
3. every device applies the merged state and proceeds.

Because the BSP snapshot every device computes from is identical, the
multi-GPU run produces **bit-identical communities** to the single-GPU
engine (a test invariant); what changes is the simulated time: computation
shrinks with more devices, communication does not — reproducing Figure
10(b)'s breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import (
    EngineConfig,
    Executor,
    IterationTrace,
    run_engine,
)
from repro.core.kernels.vectorized import decide_moves
from repro.core.state import CommunityState
from repro.core.weights import make_weight_updater
from repro.graph.csr import CSRGraph
from repro.graph.partition import VertexPartition, partition_contiguous
from repro.gpusim.costmodel import MemoryKind
from repro.gpusim.device import Device, DeviceConfig
from repro.gpusim.nccl import Communicator
from repro.multigpu.sync import (
    SyncMode,
    SyncPlan,
    choose_sync_mode,
    dense_sync_comm,
    sparse_sync_comm,
)
from repro.obs import _session as obs

#: the unified per-iteration record (engine schema); kept under the
#: historical multi-GPU name for existing consumers
MultiGpuIteration = IterationTrace


@dataclass
class MultiGpuConfig:
    """Configuration of a multi-GPU phase-1 run."""

    num_gpus: int = 1
    sync_mode: SyncMode = SyncMode.ADAPTIVE
    pruning: str = "mg"
    weight_update: str = "delta"
    remove_self: bool = True
    resolution: float = 1.0
    theta: float = 1e-6
    patience: int = 3
    max_iterations: int = 500
    #: engine-level FNR/FPR instrumentation (measurement only — the
    #: full-set decide is charged to the devices, so leave this off for
    #: the Figure 10 timing experiments)
    oracle: bool = False
    seed: int = 0
    device_config: DeviceConfig = field(default_factory=DeviceConfig)

    def engine_config(self) -> EngineConfig:
        return EngineConfig(
            pruning=self.pruning,
            remove_self=self.remove_self,
            theta=self.theta,
            patience=self.patience,
            max_iterations=self.max_iterations,
            oracle=self.oracle,
            seed=self.seed,
        )


@dataclass
class MultiGpuResult:
    """Result plus per-device simulated time breakdown."""

    communities: np.ndarray
    modularity: float
    num_iterations: int
    history: list[IterationTrace]
    devices: list[Device]
    partition: VertexPartition

    def compute_seconds(self) -> float:
        """Parallel computation time: the slowest device's compute cycles."""
        return max(
            d.cycles_to_seconds(d.profiler.cycles.get("compute", 0.0))
            for d in self.devices
        )

    def comm_seconds(self) -> float:
        """Communication time (identical on every device; take device 0)."""
        d = self.devices[0]
        comm = sum(
            v for k, v in d.profiler.cycles.items() if k.startswith("comm")
        )
        return d.cycles_to_seconds(comm)

    def total_seconds(self) -> float:
        return self.compute_seconds() + self.comm_seconds()


def _estimate_decide_cycles(
    graph: CSRGraph, active_idx: np.ndarray, device: Device
) -> float:
    """Computation cost of DecideAndMove over ``active_idx``.

    Same per-edge accounting as the simulated kernels: coalesced row loads
    (indices + weights), a scattered community load, gain ALU work, plus
    per-vertex fixed overhead — without the per-vertex Python loop, so the
    multi-GPU experiments can run at realistic sizes.
    """
    cost = device.config.cost
    degrees = np.diff(graph.indptr)[active_idx]
    edges = int(degrees.sum())
    n_vert = len(active_idx)
    cycles = (
        cost.access(MemoryKind.GLOBAL, edges, coalesced=True) * 2
        + cost.access(MemoryKind.GLOBAL, edges)
        + cost.alu(edges * 4)
        + cost.warp_primitive(n_vert * 3)
    )
    return cycles


class MultiGpuExecutor(Executor):
    """Partitioned executor: per-device decide, NCCL-synchronised apply."""

    def __init__(
        self,
        graph: CSRGraph,
        config: MultiGpuConfig,
        partition: VertexPartition | None = None,
    ):
        self.config = config
        self.partition = partition or partition_contiguous(graph, config.num_gpus)
        if self.partition.num_parts != config.num_gpus:
            raise ValueError("partition parts must match num_gpus")
        self.devices = [
            Device(config=config.device_config, device_id=i)
            for i in range(config.num_gpus)
        ]
        self.communicator = Communicator(self.devices)
        self.owned_masks = [
            self.partition.owner == i for i in range(config.num_gpus)
        ]
        self.updater = make_weight_updater(config.weight_update)
        self.state = CommunityState.singletons(
            graph, resolution=config.resolution
        )
        self._moved_ids_per_rank: list[np.ndarray] = []
        self._last_plan: SyncPlan | None = None
        self._cycles_seen = 0.0

    def decide(self, active_idx: np.ndarray, active: np.ndarray) -> np.ndarray:
        state = self.state
        graph = state.graph
        next_comm = state.comm.copy()
        self._moved_ids_per_rank = []
        for dev, mask in zip(self.devices, self.owned_masks):
            idx = np.flatnonzero(active & mask)
            if len(idx):
                result = decide_moves(
                    state, idx, remove_self=self.config.remove_self
                )
                movers = idx[result.move]
                next_comm[movers] = result.best_comm[result.move]
                self._moved_ids_per_rank.append(movers)
            else:
                self._moved_ids_per_rank.append(np.empty(0, dtype=np.int64))
            dev.profiler.charge(
                "compute", _estimate_decide_cycles(graph, idx, dev)
            )
        return next_comm

    def apply_and_sync(self, next_comm: np.ndarray, moved: np.ndarray) -> float:
        cfg = self.config
        state = self.state
        num_moved = int(moved.sum())

        # synchronise the new assignment across devices
        plan = choose_sync_mode(state.graph.n, num_moved, cfg.sync_mode)
        self._last_plan = plan
        with obs.span(
            "sync/" + plan.mode.value,
            bytes=plan.chosen_bytes,
            moved=num_moved,
            dense_bytes=plan.dense_bytes,
            sparse_bytes=plan.sparse_bytes,
        ):
            if plan.mode is SyncMode.DENSE:
                merged = dense_sync_comm(
                    [next_comm] * cfg.num_gpus, self.owned_masks, self.communicator
                )
            else:
                merged = sparse_sync_comm(
                    next_comm, self._moved_ids_per_rank, self.communicator
                )
                if cfg.num_gpus > 1:
                    # local scatter overhead of the sparse representation — a
                    # bulk rearrangement kernel, so charged at streaming rates
                    for dev in self.devices:
                        dev.profiler.charge(
                            "comm_sparse_scatter",
                            dev.config.cost.access(
                                MemoryKind.GLOBAL, max(num_moved, 1), coalesced=True
                            ),
                        )
        obs.inc("sync/plan_bytes_total", plan.chosen_bytes)
        np.testing.assert_array_equal(merged, next_comm)  # sync soundness

        # apply + update (every device holds the merged state; charge the
        # weight-update stream to the owners)
        prev_comm = state.comm
        state.comm = merged
        self.updater(state, prev_comm, moved)
        state.refresh_community_aggregates()
        for dev, mask in zip(self.devices, self.owned_masks):
            movers_owned = int(np.sum(moved & mask))
            dev.profiler.charge(
                "compute",
                dev.config.cost.access(MemoryKind.GLOBAL, max(movers_owned, 1)),
            )
        return state.modularity()

    def collect(self, trace: IterationTrace) -> None:
        trace.sync_plan = self._last_plan
        if self._last_plan is not None:
            trace.comm_bytes = self._last_plan.chosen_bytes
        total = sum(d.profiler.total_cycles for d in self.devices)
        trace.sim_cycles = total - self._cycles_seen
        self._cycles_seen = total

    def profilers(self) -> dict:
        return {f"dev{d.device_id}": d.profiler for d in self.devices}


def run_multigpu_phase1(
    graph: CSRGraph,
    config: MultiGpuConfig | None = None,
    partition: VertexPartition | None = None,
) -> MultiGpuResult:
    """Run phase 1 distributed over ``config.num_gpus`` simulated devices."""
    cfg = config or MultiGpuConfig()
    executor = MultiGpuExecutor(graph, cfg, partition)
    result = run_engine(executor, cfg.engine_config())
    return MultiGpuResult(
        communities=result.communities,
        modularity=result.modularity,
        num_iterations=result.num_iterations,
        history=result.history,
        devices=executor.devices,
        partition=executor.partition,
    )
