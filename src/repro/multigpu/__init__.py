"""Multi-GPU scaling of GALA (paper Section 4.3).

Vertices (and their adjacency rows) are partitioned across simulated
devices; each device runs DecideAndMove for its own vertices, then the
per-iteration state (community ids, movement flags, community weights) is
synchronised with either a **dense** AllReduce or a **sparse** AllGather of
the changed vertices only, switched adaptively on communication volume.
"""

from repro.multigpu.sync import SyncMode, SyncPlan, choose_sync_mode
from repro.multigpu.runtime import (
    MultiGpuConfig,
    MultiGpuExecutor,
    MultiGpuIteration,
    MultiGpuResult,
    run_multigpu_phase1,
)

__all__ = [
    "SyncMode",
    "SyncPlan",
    "choose_sync_mode",
    "MultiGpuConfig",
    "MultiGpuExecutor",
    "MultiGpuIteration",
    "MultiGpuResult",
    "run_multigpu_phase1",
]
