"""Graph substrate: CSR storage, builders, I/O, generators, coarsening.

The whole library operates on :class:`repro.graph.csr.CSRGraph`, a weighted
undirected graph in compressed-sparse-row form with self-loops held out of
the adjacency in an explicit ``self_weight`` array (see the class docstring
for the weight conventions, which follow the paper's Section 2.1).
"""

from repro.graph.csr import CSRGraph
from repro.graph.fingerprint import compute_csr_sha256, csr_sha256, graph_fingerprint
from repro.graph.builder import (
    build_csr,
    from_edge_array,
    symmetrize_edges,
    coalesce_edges,
)
from repro.graph.coarsen import coarsen_graph
from repro.graph.mmap_store import (
    MmapCSRGraph,
    MmapCSRWriter,
    is_mmap_store,
    open_mmap,
    save_mmap,
)
from repro.graph.external import build_from_edge_chunks, edge_list_to_mmap
from repro.graph.partition import VertexPartition, partition_contiguous, partition_by_degree
from repro.graph.reorder import degree_order, bfs_order, relabel_graph

__all__ = [
    "CSRGraph",
    "csr_sha256",
    "compute_csr_sha256",
    "graph_fingerprint",
    "build_csr",
    "from_edge_array",
    "symmetrize_edges",
    "coalesce_edges",
    "coarsen_graph",
    "MmapCSRGraph",
    "MmapCSRWriter",
    "is_mmap_store",
    "open_mmap",
    "save_mmap",
    "build_from_edge_chunks",
    "edge_list_to_mmap",
    "VertexPartition",
    "partition_contiguous",
    "partition_by_degree",
    "degree_order",
    "bfs_order",
    "relabel_graph",
]
