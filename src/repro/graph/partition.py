"""Vertex partitioning for the multi-GPU runtime (paper Section 4.3).

GALA partitions *vertices* (and their adjacency rows) across GPUs; each GPU
owns its vertices' intermediate states, so only the per-iteration community
assignments and deltas must be synchronised. Two partitioners are provided:

* :func:`partition_contiguous` — contiguous vertex ranges (what GALA's
  artifact does after a degree-ordering preprocessing step).
* :func:`partition_by_degree` — greedy balance on *edge* count, which evens
  out the DecideAndMove work when the degree distribution is skewed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class VertexPartition:
    """Assignment of each vertex to one of ``num_parts`` owners.

    Attributes
    ----------
    owner:
        ``int64[n]`` owning part per vertex.
    num_parts:
        Number of parts (simulated GPUs).
    """

    owner: np.ndarray
    num_parts: int

    def __post_init__(self) -> None:
        if self.num_parts < 1:
            raise PartitionError("num_parts must be >= 1")
        if len(self.owner) and (
            self.owner.min() < 0 or self.owner.max() >= self.num_parts
        ):
            raise PartitionError("owner id out of range")

    @property
    def n(self) -> int:
        return len(self.owner)

    def vertices_of(self, part: int) -> np.ndarray:
        """Vertex ids owned by ``part`` (ascending)."""
        return np.flatnonzero(self.owner == part)

    def sizes(self) -> np.ndarray:
        """Vertices per part."""
        return np.bincount(self.owner, minlength=self.num_parts)

    def edge_loads(self, graph: CSRGraph) -> np.ndarray:
        """Adjacency entries (directed edges) owned by each part."""
        deg = np.diff(graph.indptr)
        return np.bincount(self.owner, weights=deg, minlength=self.num_parts)


def partition_contiguous(graph: CSRGraph, num_parts: int) -> VertexPartition:
    """Split vertices into contiguous, near-equal-**edge** ranges.

    The split points are chosen on the cumulative degree so that each part
    carries roughly ``2m / num_parts`` adjacency entries, mirroring the
    contiguous-chunk distribution used by GALA after its preprocessing.
    """
    if num_parts < 1:
        raise PartitionError("num_parts must be >= 1")
    n = graph.n
    owner = np.zeros(n, dtype=np.int64)
    if num_parts == 1 or n == 0:
        return VertexPartition(owner=owner, num_parts=num_parts)
    cum = graph.indptr[1:].astype(np.float64)  # cumulative edges after v
    total = cum[-1] if len(cum) else 0.0
    targets = total * np.arange(1, num_parts) / num_parts
    split = np.searchsorted(cum, targets, side="left")
    owner = np.searchsorted(split, np.arange(n), side="right")
    return VertexPartition(owner=owner.astype(np.int64), num_parts=num_parts)


def partition_by_degree(graph: CSRGraph, num_parts: int) -> VertexPartition:
    """Greedy longest-processing-time balance on adjacency-row lengths.

    Vertices are assigned in decreasing degree order to the currently
    lightest part. Produces tighter edge balance than contiguous ranges on
    power-law graphs, at the cost of non-contiguous ownership.
    """
    if num_parts < 1:
        raise PartitionError("num_parts must be >= 1")
    deg = np.diff(graph.indptr)
    order = np.argsort(-deg, kind="stable")
    loads = np.zeros(num_parts, dtype=np.float64)
    owner = np.zeros(graph.n, dtype=np.int64)
    # Greedy LPT: a heap would be O(n log k); with k <= 16 simulated GPUs a
    # vectorised argmin per vertex is simpler and fast enough.
    for v in order:
        p = int(np.argmin(loads))
        owner[v] = p
        loads[p] += deg[v] + 1.0  # +1 accounts for per-vertex fixed work
    return VertexPartition(owner=owner, num_parts=num_parts)
