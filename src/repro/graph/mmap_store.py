"""Out-of-core CSR storage: ``np.memmap``-backed graphs on disk.

The paper's graphs reach 1.8 B edges; anything past laptop scale cannot
hold its adjacency in one process heap, let alone one copy per worker.
This module stores the four CSR payload arrays as raw little-endian
files in a directory ("mmap store") and exposes them through
:class:`MmapCSRGraph`, a :class:`~repro.graph.csr.CSRGraph` whose arrays
are read-only ``np.memmap`` views:

* every consumer of the CSRGraph interface (kernels, engine, coarsening)
  works unchanged — the arrays index and slice like any ndarray, the OS
  pages adjacency in on demand and can evict it under pressure;
* the multiprocess runtime maps the same store read-only in every worker
  (``open_mmap`` per rank), so the graph payload crosses process
  boundaries zero times — the property the out-of-core format exists for;
* ``fingerprint`` hashes the files **chunk-wise** to the exact digest
  :func:`~repro.graph.fingerprint.compute_csr_sha256` would produce, and
  caches it into ``meta.json`` so reopening a store never re-reads it;
* ``validate()`` is re-implemented chunk-wise (the base implementation
  materialises O(E) index/sort scratch), including a streaming symmetry
  check.

Store layout (``save_mmap`` / :class:`MmapCSRWriter` write it,
``open_mmap`` reads it)::

    <dir>/meta.json          n, nnz, name, dtypes, cached digest/total
    <dir>/indptr.bin         int64[n + 1], little-endian
    <dir>/indices.bin        int64[nnz]
    <dir>/weights.bin        float64[nnz]
    <dir>/self_weight.bin    float64[n]

O(n) working memory is considered in budget throughout (the multiprocess
runtime shares O(n) assignment arrays anyway); O(E) is never
materialised by anything in this module.
"""

from __future__ import annotations

import json
import mmap as _mmap_mod
import os
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Union

import numpy as np

from repro.errors import GraphFormatError, GraphValidationError
from repro.graph.csr import CSRGraph

PathLike = Union[str, os.PathLike]

#: default adjacency entries per processing chunk (~16 MiB of (id, weight)
#: pairs) — large enough to amortise NumPy call overhead, small enough that
#: per-chunk scratch stays tens of MB
DEFAULT_CHUNK_EDGES = 1 << 20

META_NAME = "meta.json"
ARRAY_FILES = {
    "indptr": ("indptr.bin", "<i8"),
    "indices": ("indices.bin", "<i8"),
    "weights": ("weights.bin", "<f8"),
    "self_weight": ("self_weight.bin", "<f8"),
}
FORMAT_NAME = "gala-csr"
FORMAT_VERSION = 1


def is_mmap_store(path: PathLike) -> bool:
    """Whether ``path`` looks like a graph store directory."""
    return os.path.isdir(path) and os.path.isfile(
        os.path.join(os.fspath(path), META_NAME)
    )


# --------------------------------------------------------------------- #
# streaming helpers
# --------------------------------------------------------------------- #
def _splitmix(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer over a uint64 array (vectorised)."""
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def _edge_hash(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """64-bit orientation-insensitive mix of each directed edge's endpoints.

    Hashes ``(min, max)``, so the two stored directions of one undirected
    edge hash identically and cancel under XOR: the XOR-fold over all
    adjacency entries is zero iff every ``(u, v)`` record appears an even
    number of times — which, for duplicate-free sorted rows, holds iff the
    adjacency is *structurally* symmetric (up to a 2^-64-ish
    accidental-cancellation chance, fine for a validator). Weights are
    deliberately excluded: the builder sums duplicate input records in a
    per-direction order, so ``w(u, v)`` and ``w(v, u)`` may differ in the
    last ulp on legitimately-built graphs (the in-RAM validator likewise
    compares them with ``np.allclose``) — the streaming weight check uses
    the tolerant signed signature below instead.
    """
    with np.errstate(over="ignore"):
        lo = np.minimum(u, v).astype(np.uint64)
        hi = np.maximum(u, v).astype(np.uint64)
        return (
            _splitmix(lo + np.uint64(0x9E3779B97F4A7C15))
            ^ _splitmix(hi + np.uint64(0xC2B2AE3D27D4EB4F))
        )


def iter_row_blocks(
    indptr: np.ndarray, chunk_edges: int
) -> Iterator[tuple[int, int]]:
    """Yield ``(v0, v1)`` row ranges whose adjacency spans ≤ ``chunk_edges``
    entries each (a single row larger than the budget gets its own block —
    blocks always advance)."""
    n = len(indptr) - 1
    v0 = 0
    while v0 < n:
        target = int(indptr[v0]) + chunk_edges
        v1 = int(np.searchsorted(indptr, target, side="right")) - 1
        v1 = min(max(v1, v0 + 1), n)
        yield v0, v1
        v0 = v1


# --------------------------------------------------------------------- #
# the memmap-backed graph
# --------------------------------------------------------------------- #
@dataclass
class MmapCSRGraph(CSRGraph):
    """A :class:`CSRGraph` whose payload arrays are on-disk memmaps.

    Everything inherited works unchanged and with O(n) heap: ``strength``
    (segmented ``reduceat`` streams the weights file), ``degrees``
    (``np.diff`` over the indptr map), ``total_weight`` (NumPy's pairwise
    sum reads the map incrementally — bit-identical to the in-RAM sum of
    the same bytes). Only the O(E)-scratch members are overridden:
    ``validate`` runs chunk-wise and ``fingerprint`` hashes the files
    chunk-wise (and caches the digest into ``meta.json``).

    ``row_ids`` still materialises O(E) — chunked consumers (the
    multiprocess workers, the delta updater) never call it, but nothing
    prevents an explicit caller from paying for it.
    """

    path: str = ""
    chunk_edges: int = DEFAULT_CHUNK_EDGES

    # ------------------------------------------------------------------ #
    @property
    def fingerprint(self) -> str:
        """Chunk-wise sha256 over the payload files — the exact digest
        :func:`~repro.graph.fingerprint.compute_csr_sha256` produces for
        the same arrays, lazily computed once and cached in ``meta.json``
        so reopening the store never re-hashes it."""
        if self._fingerprint is None:
            import hashlib

            h = hashlib.sha256()
            step = max(self.chunk_edges, 1)
            for arr in (self.indptr, self.indices, self.weights, self.self_weight):
                for lo in range(0, len(arr), step):
                    h.update(np.ascontiguousarray(arr[lo:lo + step]).tobytes())
            object.__setattr__(self, "_fingerprint", h.hexdigest())
            self._update_meta(sha256=self._fingerprint)
        return self._fingerprint

    def _update_meta(self, **fields) -> None:
        """Best-effort write-back of cached derived values into meta.json
        (a read-only store directory just skips the cache)."""
        meta_path = os.path.join(self.path, META_NAME)
        try:
            with open(meta_path) as fh:
                meta = json.load(fh)
            meta.update(fields)
            tmp = meta_path + ".tmp"
            with open(tmp, "w") as fh:
                json.dump(meta, fh, indent=2)
            os.replace(tmp, meta_path)
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Chunk-wise structural audit; raises GraphValidationError.

        Checks the same invariants as the in-RAM validator — indptr
        shape/monotonicity, index range, non-negative weights, sorted
        duplicate-free rows, no loops in the adjacency — in O(n) heap.
        Symmetry, which the in-RAM path checks with an O(E) double
        lexsort, is checked in two streaming accumulators: an XOR fold of
        an orientation-insensitive endpoint hash (see :func:`_edge_hash`
        — given duplicate-free rows, a zero fold means every directed
        record has its structural mirror), and a signed weight signature
        ``Σ ±w·g(u, v)`` (``+`` for ``u < v``, ``g`` a per-edge
        pseudorandom factor in ``[1, 2)``) whose mirrored terms cancel —
        compared against zero with the same relative tolerance the in-RAM
        validator's ``np.allclose`` weight check uses.
        """
        indptr = self.indptr
        if indptr.ndim != 1 or len(indptr) < 1:
            raise GraphValidationError("indptr must be 1-D with >= 1 entries")
        if indptr[0] != 0:
            raise GraphValidationError("indptr[0] must be 0")
        if indptr[-1] != len(self.indices):
            raise GraphValidationError("indptr[-1] must equal len(indices)")
        if len(self.indices) != len(self.weights):
            raise GraphValidationError("indices and weights must align")
        if len(self.self_weight) != self.n:
            raise GraphValidationError("self_weight must have one entry per vertex")
        step = max(self.chunk_edges, 1)
        for lo in range(0, len(indptr) - 1, step):
            hi = min(lo + step, len(indptr) - 1)
            if np.any(indptr[lo:hi + 1][1:] < indptr[lo:hi + 1][:-1]):
                raise GraphValidationError("indptr must be non-decreasing")
        for lo in range(0, self.n, step):
            hi = min(lo + step, self.n)
            if np.any(self.self_weight[lo:hi] < 0):
                raise GraphValidationError("negative edge weight")

        acc = np.uint64(0)
        wsig = 0.0
        wmag = 0.0
        for v0, v1 in iter_row_blocks(indptr, step):
            p0, p1 = int(indptr[v0]), int(indptr[v1])
            ids = np.asarray(self.indices[p0:p1])
            w = np.asarray(self.weights[p0:p1])
            if len(ids) == 0:
                continue
            if ids.min() < 0 or ids.max() >= self.n:
                raise GraphValidationError("neighbour id out of range")
            if np.any(w < 0):
                raise GraphValidationError("negative edge weight")
            deg = np.diff(indptr[v0:v1 + 1]).astype(np.int64)
            rows = np.repeat(np.arange(v0, v1, dtype=np.int64), deg)
            if np.any(ids == rows):
                raise GraphValidationError(
                    "self-loop found in adjacency; loops belong in self_weight"
                )
            if len(ids) > 1:
                same_row = rows[1:] == rows[:-1]
                d = np.diff(ids)
                if np.any(same_row & (d < 0)):
                    raise GraphValidationError("adjacency row not sorted")
                if np.any(same_row & (d == 0)):
                    raise GraphValidationError("adjacency row has duplicate neighbours")
            h = _edge_hash(rows, ids)
            acc ^= np.bitwise_xor.reduce(h)
            g = 1.0 + h.astype(np.float64) / 2.0**64
            term = w * g
            wsig += float(np.where(rows < ids, term, -term).sum())
            wmag += float(np.abs(term).sum())
        if acc != np.uint64(0):
            raise GraphValidationError("adjacency is not symmetric")
        # allclose-equivalent tolerance over the summed signature
        if abs(wsig) > 1e-8 + 1e-5 * wmag:
            raise GraphValidationError(
                "adjacency weights are not symmetric"
            )

    # ------------------------------------------------------------------ #
    def release_pages(self) -> None:
        """Drop this process's resident file-backed pages (``MADV_DONTNEED``).

        The data stays in the OS page cache; the next access minor-faults
        it back. Chunked consumers call this after each pass so peak RSS
        tracks the chunk size, not the file size. Best-effort no-op where
        madvise is unavailable.
        """
        for arr in (self.indices, self.weights):
            mm = getattr(arr, "_mmap", None)
            if mm is None:
                continue
            try:
                mm.madvise(_mmap_mod.MADV_DONTNEED)
            except (AttributeError, OSError, ValueError):
                return

    @property
    def resident_nbytes(self) -> int:
        """Heap bytes this graph pins per process: only ``self_weight``-
        scale O(n) metadata counts — the payload is file-backed and
        evictable. The serving registry budgets with this."""
        return int(self.indptr.nbytes + self.self_weight.nbytes)

    @property
    def store_nbytes(self) -> int:
        """On-disk bytes of the payload files."""
        return int(
            self.indptr.nbytes
            + self.indices.nbytes
            + self.weights.nbytes
            + self.self_weight.nbytes
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MmapCSRGraph(name={self.name!r}, n={self.n}, "
            f"nnz={self.num_directed_edges}, path={self.path!r})"
        )


# --------------------------------------------------------------------- #
# writer (streaming builds) and save/open
# --------------------------------------------------------------------- #
class MmapCSRWriter:
    """Incremental writer for a store directory.

    The chunked builders (the external-sort converter, the disk
    generators) stream final CSR rows through :meth:`append_rows` in
    ascending vertex order; ``indptr`` and ``self_weight`` (both O(n))
    accumulate in RAM and hit disk at :meth:`finalize`. Nothing O(E) is
    ever resident.
    """

    def __init__(self, path: PathLike, n: int, name: str = "graph"):
        if n < 0:
            raise GraphFormatError("n must be >= 0")
        self.path = os.fspath(path)
        self.n = n
        self.name = name
        os.makedirs(self.path, exist_ok=True)
        self._counts = np.zeros(n, dtype=np.int64)
        self._self_weight = np.zeros(n, dtype=np.float64)
        self._next_row = 0
        self._nnz = 0
        self._idx_fh = open(os.path.join(self.path, "indices.bin"), "wb")
        self._w_fh = open(os.path.join(self.path, "weights.bin"), "wb")
        self._finalized = False

    def append_rows(
        self, counts: np.ndarray, indices: np.ndarray, weights: np.ndarray
    ) -> None:
        """Append the adjacency of the next ``len(counts)`` rows.

        ``indices``/``weights`` hold those rows' entries concatenated;
        each row must already be sorted by neighbour id and coalesced.
        """
        counts = np.asarray(counts, dtype=np.int64)
        total = int(counts.sum())
        if total != len(indices) or total != len(weights):
            raise GraphFormatError("row counts do not match entry arrays")
        if self._next_row + len(counts) > self.n:
            raise GraphFormatError("more rows appended than the declared n")
        self._counts[self._next_row:self._next_row + len(counts)] = counts
        self._next_row += len(counts)
        self._nnz += total
        self._idx_fh.write(np.ascontiguousarray(indices, dtype="<i8").tobytes())
        self._w_fh.write(np.ascontiguousarray(weights, dtype="<f8").tobytes())

    def add_self_weight(self, vertices: np.ndarray, weights: np.ndarray) -> None:
        """Accumulate self-loop weight (callable any time before finalize)."""
        np.add.at(self._self_weight, np.asarray(vertices, dtype=np.int64),
                  np.asarray(weights, dtype=np.float64))

    def finalize(
        self, validate: bool = True, chunk_edges: int = DEFAULT_CHUNK_EDGES
    ) -> "MmapCSRGraph":
        """Write indptr/self_weight/meta and open the finished store."""
        if self._finalized:
            raise GraphFormatError("writer already finalized")
        if self._next_row != self.n:
            raise GraphFormatError(
                f"only {self._next_row} of {self.n} rows were appended"
            )
        self._finalized = True
        self._idx_fh.close()
        self._w_fh.close()
        indptr = np.zeros(self.n + 1, dtype="<i8")
        np.cumsum(self._counts, out=indptr[1:])
        indptr.tofile(os.path.join(self.path, "indptr.bin"))
        self._self_weight.astype("<f8").tofile(
            os.path.join(self.path, "self_weight.bin")
        )
        meta = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "name": self.name,
            "n": self.n,
            "nnz": self._nnz,
        }
        with open(os.path.join(self.path, META_NAME), "w") as fh:
            json.dump(meta, fh, indent=2)
        return open_mmap(self.path, validate=validate, chunk_edges=chunk_edges)

    def abort(self) -> None:
        """Close handles without finalizing (error-path cleanup)."""
        if not self._finalized:
            self._finalized = True
            self._idx_fh.close()
            self._w_fh.close()

    def __enter__(self) -> "MmapCSRWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()


def save_mmap(
    graph: CSRGraph,
    path: PathLike,
    name: str | None = None,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
) -> MmapCSRGraph:
    """Write ``graph`` into a store directory and reopen it memmapped.

    Chunk-wise copy, so the source may itself be memmapped (store-to-store
    copy never materialises O(E)). A digest already cached on the source
    is carried into ``meta.json``, making the copy's ``fingerprint`` free.
    """
    path = os.fspath(path)
    os.makedirs(path, exist_ok=True)
    step = max(chunk_edges, 1)
    for attr, (fname, dtype) in ARRAY_FILES.items():
        arr = getattr(graph, attr)
        with open(os.path.join(path, fname), "wb") as fh:
            for lo in range(0, len(arr), step):
                fh.write(
                    np.ascontiguousarray(arr[lo:lo + step], dtype=dtype).tobytes()
                )
    meta = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": name or graph.name,
        "n": int(graph.n),
        "nnz": int(graph.num_directed_edges),
    }
    if graph._fingerprint is not None:
        meta["sha256"] = graph._fingerprint
    if graph._total_weight is not None:
        meta["total_weight"] = float(graph._total_weight)
    with open(os.path.join(path, META_NAME), "w") as fh:
        json.dump(meta, fh, indent=2)
    # the source was (or is being) validated by its own loader; the copy
    # is byte-identical, so re-validating here would be pure double work
    return open_mmap(path, validate=False, chunk_edges=chunk_edges)


def open_mmap(
    path: PathLike,
    validate: bool = True,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    name: str | None = None,
) -> MmapCSRGraph:
    """Open a store directory as a read-only :class:`MmapCSRGraph`.

    ``validate=True`` (the default, matching the fail-fast policy of the
    other loaders) runs the chunk-wise structural audit; workers re-opening
    a store their parent already validated pass ``False``.
    """
    path = os.fspath(path)
    meta_path = os.path.join(path, META_NAME)
    try:
        with open(meta_path) as fh:
            meta = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise GraphFormatError(f"cannot read graph store {path!r}: {exc}") from exc
    if meta.get("format") != FORMAT_NAME:
        raise GraphFormatError(
            f"{path!r} is not a {FORMAT_NAME} store (format={meta.get('format')!r})"
        )
    n = int(meta["n"])
    nnz = int(meta["nnz"])
    arrays = {}
    shapes = {
        "indptr": n + 1,
        "indices": nnz,
        "weights": nnz,
        "self_weight": n,
    }
    for attr, (fname, dtype) in ARRAY_FILES.items():
        fpath = os.path.join(path, fname)
        want = shapes[attr]
        try:
            size = os.path.getsize(fpath)
        except OSError as exc:
            raise GraphFormatError(f"store {path!r} is missing {fname}") from exc
        if size != want * 8:
            raise GraphFormatError(
                f"store {path!r}: {fname} holds {size} bytes, expected {want * 8}"
            )
        arrays[attr] = (
            np.memmap(fpath, dtype=dtype, mode="r", shape=(want,))
            if want
            else np.empty(0, dtype=dtype)
        )
    graph = MmapCSRGraph(
        indptr=arrays["indptr"],
        indices=arrays["indices"],
        weights=arrays["weights"],
        self_weight=arrays["self_weight"],
        name=name or str(meta.get("name", os.path.basename(path))),
        path=path,
        chunk_edges=chunk_edges,
    )
    if "sha256" in meta:
        object.__setattr__(graph, "_fingerprint", str(meta["sha256"]))
    if "total_weight" in meta:
        object.__setattr__(graph, "_total_weight", float(meta["total_weight"]))
    if validate:
        try:
            graph.validate()
        except GraphValidationError as exc:
            raise GraphValidationError(f"{path}: {exc}") from exc
    return graph


def row_block_slices(
    graph: CSRGraph, chunk_edges: int
) -> Iterator[tuple[int, int, int, int]]:
    """Yield ``(v0, v1, p0, p1)`` aligned row/adjacency ranges of ≤
    ``chunk_edges`` entries — the iteration pattern every chunked consumer
    of a store shares."""
    indptr = graph.indptr
    for v0, v1 in iter_row_blocks(indptr, chunk_edges):
        yield v0, v1, int(indptr[v0]), int(indptr[v1])


def split_by_edges(
    vertices: np.ndarray,
    degrees: np.ndarray,
    chunk_edges: int,
    release: Optional[Callable[[], None]] = None,
) -> Iterator[np.ndarray]:
    """Split a sorted vertex array into consecutive slices of ≤
    ``chunk_edges`` summed degree (single oversized vertices get their own
    slice). Calls ``release`` after each yielded slice is consumed —
    that's where chunked decide/update loops drop their resident pages.
    """
    if len(vertices) == 0:
        return
    cum = np.cumsum(degrees, dtype=np.int64)
    lo = 0
    while lo < len(vertices):
        base = cum[lo - 1] if lo else 0
        hi = int(np.searchsorted(cum, base + chunk_edges, side="right"))
        hi = max(hi, lo + 1)
        yield vertices[lo:hi]
        if release is not None:
            release()
        lo = hi
