"""Structural statistics used to characterise workloads.

The benchmark harness prints these alongside each stand-in graph so the
EXPERIMENTS.md record shows what each synthetic workload actually looks like
(degree skew, clustering, community-structure strength).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics for one graph."""

    name: str
    n: int
    num_edges: int
    total_weight: float
    min_degree: int
    max_degree: int
    mean_degree: float
    degree_skew: float
    frac_small_degree: float  # fraction with degree < 32 (shuffle-kernel share)
    frac_large_degree: float  # fraction with degree > 2000 (hash-kernel stress)

    def as_row(self) -> dict:
        return {
            "graph": self.name,
            "n": self.n,
            "m": self.num_edges,
            "|E|": round(self.total_weight, 1),
            "deg(min/mean/max)": f"{self.min_degree}/{self.mean_degree:.1f}/{self.max_degree}",
            "skew": round(self.degree_skew, 2),
            "deg<32": f"{100 * self.frac_small_degree:.0f}%",
            "deg>2000": f"{100 * self.frac_large_degree:.1f}%",
        }


def compute_stats(graph: CSRGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    deg = np.diff(graph.indptr)
    if graph.n == 0:
        return GraphStats(graph.name, 0, 0, 0.0, 0, 0, 0.0, 0.0, 0.0, 0.0)
    mean = float(deg.mean())
    std = float(deg.std())
    skew = float(((deg - mean) ** 3).mean() / std**3) if std > 0 else 0.0
    return GraphStats(
        name=graph.name,
        n=graph.n,
        num_edges=graph.num_edges,
        total_weight=graph.total_weight,
        min_degree=int(deg.min()),
        max_degree=int(deg.max()),
        mean_degree=mean,
        degree_skew=skew,
        frac_small_degree=float(np.mean(deg < 32)),
        frac_large_degree=float(np.mean(deg > 2000)),
    )


def degree_histogram(graph: CSRGraph, bins: int = 20) -> tuple[np.ndarray, np.ndarray]:
    """Log-binned degree histogram ``(bin_edges, counts)``."""
    deg = np.diff(graph.indptr)
    max_deg = max(int(deg.max()), 1) if len(deg) else 1
    edges = np.unique(
        np.round(np.logspace(0, np.log10(max_deg + 1), bins + 1)).astype(np.int64)
    )
    counts, _ = np.histogram(deg, bins=edges)
    return edges, counts


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component label per vertex, via scipy's CSR connected components."""
    import scipy.sparse as sp
    from scipy.sparse.csgraph import connected_components as cc

    mat = sp.csr_matrix(
        (np.ones(len(graph.indices)), graph.indices, graph.indptr),
        shape=(graph.n, graph.n),
    )
    _, labels = cc(mat, directed=False)
    return labels
