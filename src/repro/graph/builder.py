"""Edge-list to CSR construction.

The builder is the single chokepoint through which every generator and loader
produces a :class:`~repro.graph.csr.CSRGraph`, so the conventions (symmetric
adjacency, coalesced parallel edges, loops held out in ``self_weight``) are
enforced in exactly one place.
"""

from __future__ import annotations

import numpy as np

from repro import analysis
from repro.errors import GraphValidationError
from repro.graph.csr import CSRGraph


def validate_graph(graph: CSRGraph, source: str | None = None) -> CSRGraph:
    """Fail-fast CSR audit: raise on any structural finding.

    Runs the :mod:`repro.analysis` CSR validator (indptr shape, index
    range, sorted/duplicate-free rows, symmetry, weight parity with
    ``2m``) and raises :class:`GraphValidationError` carrying the
    structured finding records when anything is wrong. Loaders call this
    on every graph read from disk; returns the graph so it can wrap a
    construction expression.
    """
    findings = analysis.validate_csr(graph, source=source)
    if findings:
        detail = "\n".join(f"  - {f}" for f in findings[:10])
        raise GraphValidationError(
            f"{source or graph.name}: CSR validation failed with "
            f"{len(findings)} finding(s):\n{detail}",
            findings=findings,
        )
    return graph


def symmetrize_edges(
    src: np.ndarray, dst: np.ndarray, w: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mirror every non-loop edge so both directions are present.

    Input edges may be directed or carry each undirected edge once; loops are
    passed through unchanged (they are split out later by ``coalesce_edges``).
    """
    loop = src == dst
    s2 = np.concatenate([src, dst[~loop]])
    d2 = np.concatenate([dst, src[~loop]])
    w2 = np.concatenate([w, w[~loop]])
    return s2, d2, w2


def coalesce_edges(
    n: int, src: np.ndarray, dst: np.ndarray, w: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Sum parallel edges and split out self-loops.

    Returns ``(src, dst, w, self_weight)`` where the first three arrays carry
    the coalesced non-loop edges (both directions) sorted by ``(src, dst)``,
    and ``self_weight[v]`` is the summed loop weight at ``v``.
    """
    self_weight = np.zeros(n, dtype=np.float64)
    loop = src == dst
    if np.any(loop):
        np.add.at(self_weight, src[loop], w[loop])
        src, dst, w = src[~loop], dst[~loop], w[~loop]
    if len(src) == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy(), np.empty(0, dtype=np.float64), self_weight
    order = np.lexsort((dst, src))
    src, dst, w = src[order], dst[order], w[order]
    # Collapse runs of identical (src, dst) pairs.
    new_run = np.empty(len(src), dtype=bool)
    new_run[0] = True
    new_run[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
    run_starts = np.flatnonzero(new_run)
    w_sum = np.add.reduceat(w, run_starts)
    return src[run_starts], dst[run_starts], w_sum, self_weight


def build_csr(
    n: int,
    src: np.ndarray,
    dst: np.ndarray,
    w: np.ndarray,
    self_weight: np.ndarray,
    name: str = "graph",
) -> CSRGraph:
    """Assemble a CSR graph from *already symmetric, coalesced* edges.

    ``src``/``dst``/``w`` must contain both directions of every non-loop edge
    exactly once and be sorted by ``(src, dst)``; ``coalesce_edges`` produces
    exactly this form.
    """
    counts = np.bincount(src, minlength=n) if len(src) else np.zeros(n, dtype=np.int64)
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return CSRGraph(
        indptr=indptr,
        indices=dst.astype(np.int64, copy=False),
        weights=w.astype(np.float64, copy=False),
        self_weight=self_weight.astype(np.float64, copy=False),
        name=name,
    )


def from_edge_array(
    n: int,
    src: np.ndarray,
    dst: np.ndarray,
    w: np.ndarray | float | None = None,
    name: str = "graph",
    already_symmetric: bool = False,
) -> CSRGraph:
    """Build a graph from a raw edge list (the main public entry point).

    Parameters
    ----------
    n:
        Number of vertices; edges must reference ids in ``[0, n)``.
    src, dst:
        Edge endpoint arrays. Each undirected edge may appear once (in either
        direction) or in both directions with equal weight if
        ``already_symmetric=True``. Parallel edges are summed; self-loops are
        routed into ``self_weight``.
    w:
        Edge weights; a scalar (or None, meaning 1.0) is broadcast.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise GraphValidationError("src and dst must have equal shape")
    if len(src) and (min(src.min(), dst.min()) < 0 or max(src.max(), dst.max()) >= n):
        raise GraphValidationError(f"edge endpoint out of range [0, {n})")
    if w is None:
        w = 1.0
    if np.isscalar(w):
        w = np.full(len(src), float(w), dtype=np.float64)
    else:
        w = np.asarray(w, dtype=np.float64)
        if w.shape != src.shape:
            raise GraphValidationError("w must match src/dst shape")
    if np.any(w < 0):
        raise GraphValidationError("negative edge weight")
    if not already_symmetric:
        src, dst, w = symmetrize_edges(src, dst, w)
    s, d, ww, self_w = coalesce_edges(n, src, dst, w)
    if already_symmetric:
        # Trust-but-verify: symmetric input must coalesce to a symmetric set.
        rev = np.lexsort((s, d))
        if not (
            np.array_equal(s, d[rev])
            and np.array_equal(d, s[rev])
            and np.allclose(ww, ww[rev])
        ):
            raise GraphValidationError(
                "already_symmetric=True but edge list is not symmetric"
            )
    graph = build_csr(n, s, d, ww, self_w, name=name)
    # Under an active sanitizer session every constructed graph gets the
    # full CSR audit — the generators and phase-2 contraction all funnel
    # through here, so a builder bug surfaces as a recorded finding even
    # before the engine's own per-level audit runs.
    san = analysis.current()
    if san is not None:
        san.audit_graph(graph, source=f"builder:{name}")
    return graph
