"""Stochastic block model / planted partition generators.

Used for community-structure stand-ins where we need direct control over the
intra- vs inter-community edge densities (and hence the achievable
modularity). Edges are sampled without building the dense probability
matrix: for each block pair we draw the binomial edge count and then sample
that many endpoints uniformly, which keeps generation O(m).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeneratorParameterError
from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, as_generator


def stochastic_block_model(
    block_sizes: list[int] | np.ndarray,
    p_matrix: np.ndarray,
    seed: SeedLike = None,
    name: str = "sbm",
) -> tuple[CSRGraph, np.ndarray]:
    """Sample an SBM graph.

    Parameters
    ----------
    block_sizes:
        Vertices per block.
    p_matrix:
        Symmetric ``k x k`` matrix of edge probabilities.

    Returns
    -------
    (graph, blocks): the graph and the ground-truth block label per vertex.
    """
    sizes = np.asarray(block_sizes, dtype=np.int64)
    p = np.asarray(p_matrix, dtype=np.float64)
    k = len(sizes)
    if p.shape != (k, k):
        raise GeneratorParameterError(f"p_matrix must be {k}x{k}")
    if not np.allclose(p, p.T):
        raise GeneratorParameterError("p_matrix must be symmetric")
    if np.any(p < 0) or np.any(p > 1):
        raise GeneratorParameterError("probabilities must lie in [0, 1]")
    rng = as_generator(seed)
    n = int(sizes.sum())
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    blocks = np.repeat(np.arange(k), sizes)

    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    for a in range(k):
        for b in range(a, k):
            if p[a, b] == 0.0:
                continue
            if a == b:
                pairs = sizes[a] * (sizes[a] - 1) // 2
            else:
                pairs = sizes[a] * sizes[b]
            count = rng.binomial(int(pairs), p[a, b])
            if count == 0:
                continue
            u = rng.integers(offsets[a], offsets[a + 1], size=count)
            v = rng.integers(offsets[b], offsets[b + 1], size=count)
            if a == b:
                keep = u != v
                u, v = u[keep], v[keep]
            srcs.append(u)
            dsts.append(v)
    if srcs:
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
    else:
        src = dst = np.empty(0, dtype=np.int64)
    # Parallel samples of the same pair are collapsed by the builder; with
    # sparse p the expected collision count is negligible and the degree
    # distribution is indistinguishable from a true Bernoulli SBM.
    graph = from_edge_array(n, src, dst, 1.0, name=name)
    return graph, blocks


def planted_partition(
    num_blocks: int,
    block_size: int,
    p_in: float,
    p_out: float,
    seed: SeedLike = None,
    name: str | None = None,
) -> tuple[CSRGraph, np.ndarray]:
    """Equal-size planted partition: ``p_in`` within, ``p_out`` across.

    The classic benchmark for community detection: for
    ``p_in >> p_out`` the planted blocks are the modularity optimum.
    """
    if num_blocks < 1 or block_size < 1:
        raise GeneratorParameterError("num_blocks and block_size must be >= 1")
    p = np.full((num_blocks, num_blocks), float(p_out))
    np.fill_diagonal(p, float(p_in))
    return stochastic_block_model(
        [block_size] * num_blocks,
        p,
        seed=seed,
        name=name or f"pp{num_blocks}x{block_size}",
    )
