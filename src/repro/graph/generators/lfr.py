"""LFR benchmark graphs with ground-truth communities (Lancichinetti,
Fortunato & Radicchi 2008), implemented from scratch.

The paper's Table 4 evaluates NMI against LFR ground truth. The generator
follows the original recipe:

1. draw a degree sequence from a truncated power law with exponent ``tau1``;
2. draw community sizes from a truncated power law with exponent ``tau2``
   until they cover all ``n`` vertices;
3. split each vertex's degree into an internal part ``(1 - mu) * d(v)`` and
   an external part ``mu * d(v)`` (``mu`` is the *mixing parameter*);
4. assign vertices to communities subject to the feasibility constraint
   ``internal_degree(v) <= community_size - 1``;
5. wire internal stubs with a per-community configuration model and external
   stubs with a global configuration model, rejecting self-loops, duplicate
   edges, and (for external stubs) intra-community pairs.

The stub-matching stages are fully vectorised (shuffle, pair, filter,
re-shuffle survivors) and run a bounded number of rounds; unmatched leftover
stubs are dropped, which perturbs the target degrees by well under 1% at the
defaults — the standard behaviour of practical LFR implementations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GeneratorParameterError
from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class LFRParams:
    """Parameters of the LFR benchmark.

    ``mu`` close to 0 gives sharply separated communities (high modularity);
    ``mu`` near 0.5+ blurs them (the regime where pruning strategies and
    community-quality metrics are stressed).
    """

    n: int
    tau1: float = 2.5  # degree power-law exponent (> 1)
    tau2: float = 1.5  # community-size power-law exponent (> 1)
    mu: float = 0.3  # mixing parameter in [0, 1)
    min_degree: int = 5
    max_degree: int = 50
    min_community: int = 20
    max_community: int = 200
    seed: int = 0

    def validate(self) -> None:
        if self.n < self.min_community:
            raise GeneratorParameterError("n must be >= min_community")
        if not (0.0 <= self.mu < 1.0):
            raise GeneratorParameterError("mu must be in [0, 1)")
        if self.tau1 <= 1.0 or self.tau2 <= 1.0:
            raise GeneratorParameterError("power-law exponents must be > 1")
        if not (1 <= self.min_degree <= self.max_degree < self.n):
            raise GeneratorParameterError("need 1 <= min_degree <= max_degree < n")
        if not (2 <= self.min_community <= self.max_community <= self.n):
            raise GeneratorParameterError(
                "need 2 <= min_community <= max_community <= n"
            )
        # Feasibility: the largest internal degree must fit in the largest
        # community.
        if (1.0 - self.mu) * self.max_degree > self.max_community - 1:
            raise GeneratorParameterError(
                "infeasible: (1-mu)*max_degree exceeds max_community-1"
            )


def _truncated_powerlaw(
    rng: np.random.Generator, exponent: float, lo: int, hi: int, size: int
) -> np.ndarray:
    """Sample integers in [lo, hi] with P(x) ~ x**(-exponent)."""
    xs = np.arange(lo, hi + 1, dtype=np.float64)
    pdf = xs**(-exponent)
    pdf /= pdf.sum()
    return rng.choice(np.arange(lo, hi + 1), size=size, p=pdf)


def _sample_community_sizes(rng: np.random.Generator, p: LFRParams) -> np.ndarray:
    """Draw community sizes covering exactly ``p.n`` vertices."""
    sizes: list[int] = []
    total = 0
    while total < p.n:
        s = int(
            _truncated_powerlaw(rng, p.tau2, p.min_community, p.max_community, 1)[0]
        )
        sizes.append(s)
        total += s
    overshoot = total - p.n
    # Trim the overshoot from the last community; if that would make it too
    # small, merge the remainder into the previous communities round-robin.
    if overshoot > 0:
        if sizes[-1] - overshoot >= p.min_community:
            sizes[-1] -= overshoot
        else:
            deficit = overshoot - (sizes[-1] - p.min_community)
            sizes[-1] = p.min_community
            i = 0
            while deficit > 0:
                if sizes[i % (len(sizes) - 1)] > p.min_community:
                    sizes[i % (len(sizes) - 1)] -= 1
                    deficit -= 1
                i += 1
                if i > 10 * len(sizes) * p.max_community:
                    raise GeneratorParameterError(
                        "cannot trim community sizes to cover n exactly"
                    )
    return np.array(sizes, dtype=np.int64)


def _assign_communities(
    rng: np.random.Generator,
    internal_deg: np.ndarray,
    sizes: np.ndarray,
) -> np.ndarray:
    """Assign each vertex a community with capacity and room for its
    internal degree (``internal_deg[v] <= size - 1``)."""
    n = len(internal_deg)
    k = len(sizes)
    community = np.full(n, -1, dtype=np.int64)
    remaining = sizes.copy()
    # Hardest-first: vertices with the largest internal degree have the
    # fewest feasible communities.
    order = np.argsort(-internal_deg, kind="stable")
    size_order = np.argsort(sizes, kind="stable")  # communities by size asc
    sorted_sizes = sizes[size_order]
    for v in order:
        need = internal_deg[v] + 1
        first_fit = int(np.searchsorted(sorted_sizes, need, side="left"))
        feasible = size_order[first_fit:]
        open_slots = feasible[remaining[feasible] > 0]
        if len(open_slots) == 0:
            # All big-enough communities are full: place in the community
            # with the most remaining capacity and clamp internal degree.
            c = int(np.argmax(remaining))
            internal_deg[v] = min(internal_deg[v], sizes[c] - 1)
        else:
            c = int(rng.choice(open_slots))
        community[v] = c
        remaining[c] -= 1
    assert remaining.sum() == 0 and np.all(community >= 0)
    return community


def _pack_pairs(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Pack canonicalised vertex pairs into single int64 keys."""
    lo = np.minimum(u, v).astype(np.int64)
    hi = np.maximum(u, v).astype(np.int64)
    return (lo << 32) | hi


def _match_stubs(
    rng: np.random.Generator,
    stubs: np.ndarray,
    forbid_same_group: np.ndarray | None,
    existing_keys: np.ndarray,
    rounds: int = 12,
) -> tuple[np.ndarray, np.ndarray]:
    """Configuration-model matching with rejection.

    Pairs shuffled stubs; rejects self-loops, duplicate edges (within this
    call and against the sorted packed-key array ``existing_keys``), and
    pairs whose endpoints share a group when ``forbid_same_group`` (a label
    per vertex) is given. Rejected stubs are re-shuffled for up to
    ``rounds`` rounds; survivors are dropped.
    """
    src_out: list[np.ndarray] = []
    dst_out: list[np.ndarray] = []
    seen = np.sort(existing_keys)
    for _ in range(rounds):
        if len(stubs) < 2:
            break
        rng.shuffle(stubs)
        half = len(stubs) // 2
        u, v = stubs[:half], stubs[half: 2 * half]
        odd_tail = stubs[2 * half:]
        ok = u != v
        if forbid_same_group is not None:
            ok &= forbid_same_group[u] != forbid_same_group[v]
        keys = _pack_pairs(u, v)
        # First occurrence of each key within this round only.
        _, first_idx = np.unique(keys, return_index=True)
        is_first = np.zeros(len(keys), dtype=bool)
        is_first[first_idx] = True
        ok &= is_first
        if len(seen):
            pos = np.searchsorted(seen, keys)
            dup = (pos < len(seen)) & (seen[np.minimum(pos, len(seen) - 1)] == keys)
            ok &= ~dup
        accepted = np.flatnonzero(ok)
        if len(accepted):
            src_out.append(u[accepted])
            dst_out.append(v[accepted])
            seen = np.sort(np.concatenate([seen, keys[accepted]]))
        rejected = ~ok
        stubs = np.concatenate([u[rejected], v[rejected], odd_tail])
    if src_out:
        return np.concatenate(src_out), np.concatenate(dst_out)
    return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)


def lfr_graph(params: LFRParams) -> tuple[CSRGraph, np.ndarray]:
    """Generate an LFR benchmark graph.

    Returns ``(graph, ground_truth)`` where ``ground_truth[v]`` is the
    planted community of vertex ``v``.
    """
    p = params
    p.validate()
    rng = as_generator(p.seed)

    degrees = _truncated_powerlaw(rng, p.tau1, p.min_degree, p.max_degree, p.n)
    internal = np.rint((1.0 - p.mu) * degrees).astype(np.int64)

    sizes = _sample_community_sizes(rng, p)
    community = _assign_communities(rng, internal, sizes)
    external = degrees - internal

    # --- internal wiring: configuration model inside each community ------
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    no_keys = np.empty(0, dtype=np.int64)
    order = np.argsort(community, kind="stable")
    boundaries = np.flatnonzero(np.diff(community[order])) + 1
    for members in np.split(order, boundaries):
        stubs = np.repeat(members, internal[members])
        if len(stubs) % 2:
            # Drop one stub from the highest-internal-degree member to make
            # the stub count even (standard LFR fix-up).
            victim = members[np.argmax(internal[members])]
            idx = np.flatnonzero(stubs == victim)[0]
            stubs = np.delete(stubs, idx)
        # Communities are disjoint, so duplicate checks never cross them:
        # each community starts from an empty seen-set.
        s, d = _match_stubs(rng, stubs, None, no_keys)
        if len(s):
            src_parts.append(s)
            dst_parts.append(d)

    # --- external wiring: global configuration model, cross-community ----
    # Cross-community pairs can never duplicate the (intra-community)
    # edges above, so only intra-external duplicates need rejecting.
    ext_stubs = np.repeat(np.arange(p.n), external)
    if len(ext_stubs) % 2:
        ext_stubs = ext_stubs[:-1]
    s, d = _match_stubs(rng, ext_stubs, community, no_keys)
    if len(s):
        src_parts.append(s)
        dst_parts.append(d)

    if src_parts:
        src = np.concatenate(src_parts)
        dst = np.concatenate(dst_parts)
    else:  # pragma: no cover - degenerate parameters
        src = dst = np.empty(0, dtype=np.int64)
    graph = from_edge_array(
        p.n, src, dst, 1.0, name=f"lfr(n={p.n},mu={p.mu})"
    )
    return graph, community
