"""Deterministic stand-ins for the paper's seven evaluation graphs.

The paper evaluates on real graphs up to 1.8 B edges (Table 2). Those cannot
be processed — or even stored — in this environment, so each is replaced by
a deterministic synthetic graph whose *community-structure character*
matches the original (documented per entry below). The characters are what
the paper's experiments actually depend on:

* pruning behaviour (Figures 1/7, Table 1) depends on how quickly the
  partition stabilises, i.e. how well-separated the communities are;
* modularity and NMI (Tables 3/4) depend on mixing;
* kernel dispatch (Figure 9) depends on the degree distribution.

The stand-ins keep the paper's *ordering* of these characters: UK has
near-perfect communities (paper Q = 0.9906), LJ/HW strong (0.75), OR/EW
moderate (0.66), FR mixed (0.63), TW weak (0.47, "lacks a well-defined
community structure").

Every entry accepts a ``scale`` multiplier so tests can run tiny instances
of the exact same construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.errors import ExperimentError
from repro.graph.csr import CSRGraph
from repro.graph.generators.lfr import LFRParams, lfr_graph
from repro.graph.generators.rmat import rmat_graph


@dataclass(frozen=True)
class DatasetSpec:
    """One stand-in: its paper identity and its generator."""

    abbr: str
    paper_name: str
    paper_vertices: str
    paper_edges: str
    paper_modularity: float
    character: str
    build: Callable[[float], CSRGraph]


def _lfr_standin(
    abbr: str, n: int, mu: float, max_degree: int, max_community: int,
    min_degree: int = 5, seed: int = 11,
) -> Callable[[float], CSRGraph]:
    def build(scale: float) -> CSRGraph:
        sn = max(int(n * scale), 200)
        params = LFRParams(
            n=sn,
            mu=mu,
            min_degree=min_degree,
            max_degree=min(max_degree, sn // 4),
            min_community=max(10, min(20, sn // 20)),
            max_community=min(max_community, sn // 2),
            seed=seed,
        )
        g, truth = lfr_graph(params)
        g.name = abbr
        # Ground truth is attached for quality experiments; CSRGraph itself
        # stays community-agnostic.
        build.last_ground_truth = truth  # type: ignore[attr-defined]
        return g

    return build


def _rmat_standin(abbr: str, scale_exp: int, edge_factor: float, seed: int):
    def build(scale: float) -> CSRGraph:
        import math

        exp = max(8, scale_exp + int(round(math.log2(max(scale, 1e-3)))))
        g = rmat_graph(exp, edge_factor=edge_factor, seed=seed)
        g.name = abbr
        return g

    return build


DATASETS: dict[str, DatasetSpec] = {
    "FR": DatasetSpec(
        abbr="FR",
        paper_name="com-Friendster",
        paper_vertices="65.6M",
        paper_edges="1.8B",
        paper_modularity=0.63022,
        character="huge social network, mixed community strength",
        build=_lfr_standin("FR", n=24000, mu=0.36, max_degree=120,
                           max_community=600, seed=101),
    ),
    "LJ": DatasetSpec(
        abbr="LJ",
        paper_name="com-LiveJournal",
        paper_vertices="4.0M",
        paper_edges="34.6M",
        paper_modularity=0.75153,
        character="social network with strong community structure",
        build=_lfr_standin("LJ", n=16000, mu=0.25, max_degree=90,
                           max_community=400, seed=102),
    ),
    "OR": DatasetSpec(
        abbr="OR",
        paper_name="com-Orkut",
        paper_vertices="3.1M",
        paper_edges="117.2M",
        paper_modularity=0.66487,
        character="dense social network, moderate communities",
        build=_lfr_standin("OR", n=10000, mu=0.33, max_degree=200,
                           max_community=500, min_degree=12, seed=103),
    ),
    "TW": DatasetSpec(
        abbr="TW",
        paper_name="twitter-2010",
        paper_vertices="41.7M",
        paper_edges="1.2B",
        paper_modularity=0.47257,
        character="follower graph lacking well-defined communities",
        build=_rmat_standin("TW", scale_exp=13, edge_factor=12.0, seed=104),
    ),
    "UK": DatasetSpec(
        abbr="UK",
        paper_name="uk-2002",
        paper_vertices="18.5M",
        paper_edges="298.1M",
        paper_modularity=0.99056,
        character="web graph with near-perfect community separation",
        build=_lfr_standin("UK", n=16000, mu=0.03, max_degree=60,
                           max_community=300, seed=105),
    ),
    "EW": DatasetSpec(
        abbr="EW",
        paper_name="enwiki-2022",
        paper_vertices="6.5M",
        paper_edges="144.6M",
        paper_modularity=0.66297,
        character="hyperlink graph, moderate communities",
        build=_lfr_standin("EW", n=12000, mu=0.34, max_degree=150,
                           max_community=450, min_degree=8, seed=106),
    ),
    "HW": DatasetSpec(
        abbr="HW",
        paper_name="hollywood-2011",
        paper_vertices="2.0M",
        paper_edges="114.5M",
        paper_modularity=0.75323,
        character="dense collaboration graph, strong communities",
        build=_lfr_standin("HW", n=8000, mu=0.24, max_degree=250,
                           max_community=500, min_degree=15, seed=107),
    ),
}


def dataset_names() -> list[str]:
    """Paper-order list of stand-in abbreviations."""
    return list(DATASETS.keys())


@lru_cache(maxsize=32)
def load_dataset(abbr: str, scale: float = 1.0) -> CSRGraph:
    """Build (and memoise) a stand-in graph.

    Parameters
    ----------
    abbr:
        One of ``FR LJ OR TW UK EW HW``.
    scale:
        Size multiplier; ``scale=0.1`` builds a ten-times-smaller instance
        of the same construction (used by the test suite).
    """
    if abbr not in DATASETS:
        raise ExperimentError(
            f"unknown dataset {abbr!r}; available: {sorted(DATASETS)}"
        )
    return DATASETS[abbr].build(scale)
