"""Synthetic graph generators.

* :mod:`classic` — small deterministic structures (cliques, rings of
  cliques, the karate club, a zebra-contact-scale toy).
* :mod:`sbm` — planted-partition / stochastic-block-model graphs.
* :mod:`random_models` — Erdős–Rényi, Barabási–Albert, Watts–Strogatz
  nulls for off-the-happy-path testing.
* :mod:`rmat` — RMAT/Kronecker power-law graphs (social-network-like).
* :mod:`lfr` — the LFR benchmark with ground-truth communities (paper
  Table 4 uses LFR graphs).
* :mod:`datasets` — the registry of deterministic stand-ins for the seven
  real-world graphs in the paper's Table 2.
"""

from repro.graph.generators.classic import (
    clique,
    ring_of_cliques,
    karate_club,
    star,
    path_graph,
    two_triangles,
)
from repro.graph.generators.sbm import planted_partition, stochastic_block_model
from repro.graph.generators.random_models import (
    erdos_renyi,
    barabasi_albert,
    watts_strogatz,
)
from repro.graph.generators.rmat import rmat_graph
from repro.graph.generators.disk import rmat_to_disk, sbm_to_disk
from repro.graph.generators.lfr import lfr_graph, LFRParams
from repro.graph.generators.datasets import (
    DATASETS,
    load_dataset,
    dataset_names,
)

__all__ = [
    "clique",
    "ring_of_cliques",
    "karate_club",
    "star",
    "path_graph",
    "two_triangles",
    "planted_partition",
    "stochastic_block_model",
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "rmat_graph",
    "rmat_to_disk",
    "sbm_to_disk",
    "lfr_graph",
    "LFRParams",
    "DATASETS",
    "load_dataset",
    "dataset_names",
]
