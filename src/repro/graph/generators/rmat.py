"""RMAT / Kronecker power-law graph generator.

Stand-in for the paper's social-network graphs without strong planted
communities (Twitter in particular: the paper notes TW "lacks a well-defined
community structure", Table 3 shows Q ~= 0.47). RMAT with the classic
(a, b, c, d) = (0.57, 0.19, 0.19, 0.05) parameters produces exactly that
character: heavy-tailed degrees, high clustering locality, weak modular
structure.

Edges are sampled fully vectorised: all ``scale`` bits of every edge are
drawn at once as quadrant choices, so generation is O(m * scale) NumPy work
with no Python-level per-edge loop.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeneratorParameterError
from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, as_generator


def rmat_graph(
    scale: int,
    edge_factor: float = 16.0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    noise: float = 0.1,
    seed: SeedLike = None,
    name: str | None = None,
) -> CSRGraph:
    """Generate an RMAT graph with ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        log2 of the vertex count.
    edge_factor:
        Sampled (directed) edges per vertex; the symmetrised, coalesced
        simple graph ends up somewhat sparser.
    a, b, c:
        Quadrant probabilities (``d = 1 - a - b - c``). The Graph500
        defaults give the canonical social-network skew.
    noise:
        Per-level multiplicative jitter on ``a`` (SMOOTH-RMAT style) that
        avoids the artificial staircase degree distribution of pure RMAT.
    """
    if scale < 1 or scale > 30:
        raise GeneratorParameterError("scale must be in [1, 30]")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise GeneratorParameterError("quadrant probabilities must be >= 0")
    rng = as_generator(seed)
    n = 1 << scale
    m = int(edge_factor * n)

    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        if noise > 0.0:
            jitter = 1.0 + noise * (2.0 * rng.random() - 1.0)
            aa, bb, cc = a * jitter, b, c
            dd = 1.0 - aa - bb - cc
            if dd < 0:  # renormalise if jitter pushed us out of the simplex
                s = aa + bb + cc
                aa, bb, cc = aa / s, bb / s, cc / s
                dd = 0.0
        else:
            aa, bb, cc, dd = a, b, c, d
        r = rng.random(m)
        # Quadrants in order a, b, c, d: (0,0), (0,1), (1,0), (1,1).
        right = (r >= aa) & (r < aa + bb) | (r >= aa + bb + cc)
        down = r >= aa + bb
        src = (src << 1) | down.astype(np.int64)
        dst = (dst << 1) | right.astype(np.int64)

    # Random vertex permutation removes the id-locality artifact of RMAT.
    perm = rng.permutation(n)
    src, dst = perm[src], perm[dst]
    keep = src != dst
    graph = from_edge_array(
        n, src[keep], dst[keep], 1.0, name=name or f"rmat{scale}"
    )
    return graph
