"""Classic random-graph models: Erdős–Rényi, Barabási–Albert,
Watts–Strogatz.

These complement the community-structured generators: ER gives the
no-structure null case (modularity of any partition ≈ 0 asymptotically),
BA gives pure preferential-attachment skew, WS gives tunable clustering
without mesoscale communities. All are used by tests probing behaviour
*off* the community-detection happy path, and are exposed for users
benchmarking their own workloads.

All three are vectorised (no per-edge Python loops beyond the inherently
sequential BA attachment rounds, which are batched per new vertex).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeneratorParameterError
from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, as_generator


def erdos_renyi(
    n: int, p: float, seed: SeedLike = None, name: str | None = None
) -> CSRGraph:
    """G(n, p): each of the n-choose-2 pairs is an edge with prob. ``p``.

    Sampled by drawing the binomial edge count and then sampling that many
    distinct pair indices — O(m), no n^2 materialisation.
    """
    if n < 1:
        raise GeneratorParameterError("n must be >= 1")
    if not (0.0 <= p <= 1.0):
        raise GeneratorParameterError("p must be in [0, 1]")
    rng = as_generator(seed)
    total_pairs = n * (n - 1) // 2
    m = rng.binomial(total_pairs, p) if total_pairs else 0
    m = min(m, total_pairs)
    # sample distinct pair ranks, then invert the triangular indexing
    ranks = rng.choice(total_pairs, size=m, replace=False) if m else np.empty(0, np.int64)
    # pair rank r -> (i, j): i = row of the triangle containing r
    # solve i(2n - i - 1)/2 <= r < (i+1)(2n - i - 2)/2 via the quadratic.
    r = ranks.astype(np.float64)
    i = np.floor((2 * n - 1 - np.sqrt((2 * n - 1) ** 2 - 8 * r)) / 2).astype(np.int64)
    offset = i * (2 * n - i - 1) // 2
    j = (ranks - offset + i + 1).astype(np.int64)
    return from_edge_array(n, i, j, 1.0, name=name or f"er(n={n},p={p})")


def barabasi_albert(
    n: int, m_attach: int, seed: SeedLike = None, name: str | None = None
) -> CSRGraph:
    """Barabási–Albert preferential attachment: each new vertex attaches
    to ``m_attach`` existing vertices chosen proportionally to degree.

    Uses the standard repeated-endpoints trick: maintaining a flat list of
    edge endpoints makes uniform sampling from it degree-proportional.
    """
    if m_attach < 1 or n <= m_attach:
        raise GeneratorParameterError("need n > m_attach >= 1")
    rng = as_generator(seed)
    # seed star over the first m_attach + 1 vertices
    src = list(range(m_attach))
    dst = [m_attach] * m_attach
    endpoints = src + dst
    for v in range(m_attach + 1, n):
        targets: set[int] = set()
        while len(targets) < m_attach:
            need = m_attach - len(targets)
            picks = rng.choice(endpoints, size=need)
            targets.update(int(t) for t in picks)
        for t in targets:
            src.append(v)
            dst.append(t)
            endpoints.extend((v, t))
    return from_edge_array(
        n, np.array(src), np.array(dst), 1.0,
        name=name or f"ba(n={n},m={m_attach})",
    )


def watts_strogatz(
    n: int, k: int, beta: float, seed: SeedLike = None, name: str | None = None
) -> CSRGraph:
    """Watts–Strogatz small world: ring lattice of degree ``k`` with each
    edge rewired with probability ``beta``."""
    if k < 2 or k % 2 or k >= n:
        raise GeneratorParameterError("k must be even, >= 2, and < n")
    if not (0.0 <= beta <= 1.0):
        raise GeneratorParameterError("beta must be in [0, 1]")
    rng = as_generator(seed)
    base = np.arange(n)
    srcs, dsts = [], []
    for hop in range(1, k // 2 + 1):
        srcs.append(base)
        dsts.append((base + hop) % n)
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    rewire = rng.random(len(src)) < beta
    # rewire the far endpoint uniformly, rejecting self-loops (parallel
    # edges are coalesced by the builder, matching the usual WS variant)
    new_dst = rng.integers(0, n, size=int(rewire.sum()))
    self_hits = new_dst == src[rewire]
    while np.any(self_hits):
        new_dst[self_hits] = rng.integers(0, n, size=int(self_hits.sum()))
        self_hits = new_dst == src[rewire]
    dst = dst.copy()
    dst[rewire] = new_dst
    return from_edge_array(
        n, src, dst, 1.0, name=name or f"ws(n={n},k={k},b={beta})"
    )
