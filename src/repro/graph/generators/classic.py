"""Small deterministic graphs for tests, examples, and unit experiments.

These mirror the figures in the paper's introduction: Figure 1(a) visualises
communities on the KONECT *zebra* contact network (a ~27-vertex animal
contact graph); :func:`ring_of_cliques` produces the canonical
strong-community structure whose optimal Louvain behaviour is known in
closed form, which makes it ideal for correctness tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeneratorParameterError
from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph


def clique(k: int, weight: float = 1.0, name: str | None = None) -> CSRGraph:
    """Complete graph on ``k`` vertices."""
    if k < 1:
        raise GeneratorParameterError("clique size must be >= 1")
    u, v = np.triu_indices(k, k=1)
    return from_edge_array(k, u, v, weight, name=name or f"K{k}")


def ring_of_cliques(
    num_cliques: int, clique_size: int, name: str | None = None
) -> CSRGraph:
    """``num_cliques`` cliques of ``clique_size``, joined in a cycle.

    Each clique ``i`` is bridged to clique ``(i+1) % num_cliques`` by a single
    unit-weight edge. For ``clique_size >= 3`` the modularity-optimal
    partition puts each clique in its own community, so Louvain must recover
    exactly ``num_cliques`` communities — a sharp correctness check.
    """
    if num_cliques < 3:
        raise GeneratorParameterError("need >= 3 cliques to form a ring")
    if clique_size < 2:
        raise GeneratorParameterError("clique_size must be >= 2")
    n = num_cliques * clique_size
    srcs, dsts = [], []
    iu, iv = np.triu_indices(clique_size, k=1)
    for c in range(num_cliques):
        base = c * clique_size
        srcs.append(iu + base)
        dsts.append(iv + base)
    # Bridge: last vertex of clique c -> first vertex of clique c+1.
    bridges_u = np.arange(num_cliques) * clique_size + (clique_size - 1)
    bridges_v = (np.arange(1, num_cliques + 1) % num_cliques) * clique_size
    srcs.append(bridges_u)
    dsts.append(bridges_v)
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    return from_edge_array(
        n, src, dst, 1.0, name=name or f"ring{num_cliques}x{clique_size}"
    )


# Zachary's karate club: the 78 undirected edges of the canonical dataset.
_KARATE_EDGES = [
    (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8), (0, 10),
    (0, 11), (0, 12), (0, 13), (0, 17), (0, 19), (0, 21), (0, 31), (1, 2),
    (1, 3), (1, 7), (1, 13), (1, 17), (1, 19), (1, 21), (1, 30), (2, 3),
    (2, 7), (2, 8), (2, 9), (2, 13), (2, 27), (2, 28), (2, 32), (3, 7),
    (3, 12), (3, 13), (4, 6), (4, 10), (5, 6), (5, 10), (5, 16), (6, 16),
    (8, 30), (8, 32), (8, 33), (9, 33), (13, 33), (14, 32), (14, 33),
    (15, 32), (15, 33), (18, 32), (18, 33), (19, 33), (20, 32), (20, 33),
    (22, 32), (22, 33), (23, 25), (23, 27), (23, 29), (23, 32), (23, 33),
    (24, 25), (24, 27), (24, 31), (25, 31), (26, 29), (26, 33), (27, 33),
    (28, 31), (28, 33), (29, 32), (29, 33), (30, 32), (30, 33), (31, 32),
    (31, 33), (32, 33),
]


def karate_club() -> CSRGraph:
    """Zachary's karate club (34 vertices, 78 edges), the classic testbed."""
    e = np.array(_KARATE_EDGES, dtype=np.int64)
    return from_edge_array(34, e[:, 0], e[:, 1], 1.0, name="karate")


def star(leaves: int, name: str | None = None) -> CSRGraph:
    """Star graph: one hub connected to ``leaves`` leaves."""
    if leaves < 1:
        raise GeneratorParameterError("star needs >= 1 leaf")
    dst = np.arange(1, leaves + 1)
    src = np.zeros(leaves, dtype=np.int64)
    return from_edge_array(leaves + 1, src, dst, 1.0, name=name or f"star{leaves}")


def path_graph(n: int, name: str | None = None) -> CSRGraph:
    """Path on ``n`` vertices."""
    if n < 1:
        raise GeneratorParameterError("path needs >= 1 vertex")
    src = np.arange(n - 1)
    return from_edge_array(n, src, src + 1, 1.0, name=name or f"path{n}")


def two_triangles(bridge_weight: float = 1.0) -> CSRGraph:
    """Two triangles joined by one bridge edge — the smallest two-community
    graph, used throughout the pruning unit tests (vertices 0-2 and 3-5)."""
    edges = np.array(
        [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5), (2, 3)], dtype=np.int64
    )
    w = np.ones(len(edges))
    w[-1] = bridge_weight
    return from_edge_array(6, edges[:, 0], edges[:, 1], w, name="two_triangles")
