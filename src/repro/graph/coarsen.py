"""Phase-2 graph contraction ("aggregation") of the Louvain algorithm.

Given a community assignment, build the compressed graph in which every
community becomes a super-vertex, inter-community edge weights are summed
into super-edges, and intra-community weight (including original self-loops)
becomes the super-vertex's self-loop — such that modularity of any partition
of the coarse graph equals the modularity of the induced partition of the
fine graph (tested in ``tests/graph/test_coarsen.py``).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.builder import coalesce_edges, build_csr
from repro.utils.arrays import compact_relabel


def coarsen_graph(
    graph: CSRGraph, communities: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """Contract ``graph`` by ``communities``.

    Parameters
    ----------
    graph:
        The fine graph.
    communities:
        ``int[n]`` community id per vertex (ids need not be compact).

    Returns
    -------
    (coarse_graph, mapping):
        ``mapping[v]`` is the compact super-vertex id of fine vertex ``v``.
        Super-vertex ids preserve the order of the original community ids.
    """
    communities = np.asarray(communities)
    if len(communities) != graph.n:
        raise ValueError("communities must assign every vertex")
    mapping, k = compact_relabel(communities)

    # Project every stored (directed) adjacency entry onto super-vertices
    # (row_ids is cached on the graph, so no repeat is materialised here).
    super_src = mapping[graph.row_ids]
    super_dst = mapping[graph.indices]

    intra = super_src == super_dst
    # Intra-community non-loop edges: each undirected edge appears twice in
    # the directed representation, so w.sum() over intra entries equals
    # 2 * (undirected intra weight). A coarse self-loop of weight W
    # contributes 2W to the super-vertex degree, so the loop weight is
    # w_intra_directed_sum / 2, matching D_C(C) = 2 * loop + ... convention.
    # Original fine self-loops then carry over at face value. One sort-free
    # bincount accumulates both contributions; halving each intra weight
    # up front is bit-identical to halving the sum (exact scaling by 2).
    self_weight = np.bincount(
        np.concatenate([super_src[intra], mapping]),
        weights=np.concatenate(
            [graph.weights[intra] * 0.5, graph.self_weight]
        ),
        minlength=k,
    )

    s, d, w = super_src[~intra], super_dst[~intra], graph.weights[~intra]
    # The directed representation already carries both directions, so the
    # coalesced result is symmetric by construction.
    s2, d2, w2, extra_loops = coalesce_edges(k, s, d, w)
    assert not np.any(extra_loops), "loops were filtered above"
    coarse = build_csr(k, s2, d2, w2, self_weight, name=f"{graph.name}/coarse")
    return coarse, mapping


def project_communities(
    mapping: np.ndarray, coarse_communities: np.ndarray
) -> np.ndarray:
    """Pull a coarse-graph community assignment back to the fine graph.

    ``mapping`` is the fine→coarse vertex map returned by
    :func:`coarsen_graph`; the result assigns each fine vertex the community
    of its super-vertex.
    """
    return np.asarray(coarse_communities)[np.asarray(mapping)]
