"""Vertex reordering (the artifact's preprocessing step).

GALA's artifact preprocesses graphs before partitioning — primarily a
degree ordering so that a contiguous vertex split also balances edges and
the shuffle/hash dispatch runs over homogeneous stretches. This module
provides the orderings and the relabelling machinery:

* :func:`degree_order` — vertices by (descending) degree;
* :func:`bfs_order` — breadth-first locality order from a seed vertex;
* :func:`relabel_graph` — apply any permutation, returning the relabelled
  graph plus the mapping needed to translate results back.

Community assignments computed on the relabelled graph translate back with
``communities[perm_inverse]``; modularity is invariant under relabelling
(tested).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.csr import CSRGraph


def degree_order(graph: CSRGraph, descending: bool = True) -> np.ndarray:
    """Permutation ``order`` with ``order[k]`` = old id of new vertex ``k``,
    sorted by adjacency-row length (stable, so equal degrees keep their
    original relative order)."""
    deg = graph.degrees
    key = -deg if descending else deg
    return np.argsort(key, kind="stable")


def bfs_order(graph: CSRGraph, source: int = 0) -> np.ndarray:
    """BFS visitation order, restarted over components in id order.

    Gives the cache-locality ordering commonly applied before GPU graph
    processing (neighbours end up with nearby ids).
    """
    if not (0 <= source < max(graph.n, 1)):
        raise GraphValidationError(f"source {source} out of range")
    n = graph.n
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    # visit source's component first, then remaining components by min id
    seeds = [source] + [v for v in range(n) if v != source]
    for seed in seeds:
        if visited[seed]:
            continue
        queue = deque([seed])
        visited[seed] = True
        while queue:
            v = queue.popleft()
            order[pos] = v
            pos += 1
            for u in graph.neighbors(v):
                if not visited[u]:
                    visited[u] = True
                    queue.append(u)
    assert pos == n
    return order


def relabel_graph(
    graph: CSRGraph, order: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """Relabel so that old vertex ``order[k]`` becomes new vertex ``k``.

    Returns ``(new_graph, inverse)`` where ``inverse[old_id] = new_id``;
    a result array ``res_new`` on the new graph maps back to the original
    ids as ``res_new[inverse]``.
    """
    order = np.asarray(order, dtype=np.int64)
    n = graph.n
    if sorted(order.tolist()) != list(range(n)):
        raise GraphValidationError("order must be a permutation of [0, n)")
    inverse = np.empty(n, dtype=np.int64)
    inverse[order] = np.arange(n)

    row = np.repeat(np.arange(n), np.diff(graph.indptr))
    src = inverse[row]
    dst = inverse[graph.indices]
    new_self = np.zeros(n, dtype=np.float64)
    new_self[inverse] = graph.self_weight
    # the directed representation already carries both directions
    from repro.graph.builder import build_csr, coalesce_edges

    s, d, w, loops = coalesce_edges(n, src, dst, graph.weights)
    assert not loops.any()
    new_graph = build_csr(n, s, d, w, new_self, name=f"{graph.name}/reordered")
    return new_graph, inverse
