"""Graph I/O: edge-list text files and a fast NPZ binary format.

The paper's artifact ships ``prepare_graph.sh`` scripts that download SNAP /
LAW edge lists; our stand-ins are generated, but the loaders are provided so
a user with the real datasets can feed them straight in.
"""

from __future__ import annotations

import io
import os
from typing import Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import from_edge_array, validate_graph
from repro.graph.csr import CSRGraph

PathLike = Union[str, os.PathLike]


def load_edge_list(
    path: PathLike,
    comments: str = "#",
    weighted: bool = False,
    name: str | None = None,
) -> CSRGraph:
    """Load a whitespace-separated edge-list file (SNAP style).

    Lines starting with ``comments`` are skipped. Vertex ids may be sparse;
    they are compacted to ``[0, n)`` preserving numeric order. With
    ``weighted=True`` a third column is read as the edge weight.
    """
    import warnings

    try:
        cols = 3 if weighted else 2
        with warnings.catch_warnings():
            # an all-comments file raises below via the size check; numpy's
            # "no data" warning would just be noise on top of that
            warnings.simplefilter("ignore", UserWarning)
            data = np.loadtxt(path, comments=comments, usecols=range(cols), ndmin=2)
    except (ValueError, OSError) as exc:
        raise GraphFormatError(f"cannot parse edge list {path!r}: {exc}") from exc
    if data.size == 0:
        raise GraphFormatError(f"edge list {path!r} contains no edges")
    src_raw = data[:, 0].astype(np.int64)
    dst_raw = data[:, 1].astype(np.int64)
    w = data[:, 2] if weighted else None
    ids = np.union1d(src_raw, dst_raw)
    src = np.searchsorted(ids, src_raw)
    dst = np.searchsorted(ids, dst_raw)
    gname = name or os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return validate_graph(
        from_edge_array(len(ids), src, dst, w, name=gname),
        source=os.fspath(path),
    )


def save_edge_list(graph: CSRGraph, path: PathLike, header: bool = True) -> None:
    """Write each undirected edge once as ``u v w`` lines."""
    buf = io.StringIO()
    if header:
        buf.write(f"# {graph.name}: n={graph.n} edges={graph.num_edges}\n")
    for u, v, w in graph.iter_edges():
        buf.write(f"{u} {v} {w:.10g}\n")
    with open(path, "w") as fh:
        fh.write(buf.getvalue())


def save_npz(graph: CSRGraph, path: PathLike) -> None:
    """Save in the library's binary format (compressed ``.npz``)."""
    np.savez_compressed(
        path,
        indptr=graph.indptr,
        indices=graph.indices,
        weights=graph.weights,
        self_weight=graph.self_weight,
        name=np.array(graph.name),
    )


def load_npz(path: PathLike) -> CSRGraph:
    """Load a graph saved with :func:`save_npz`."""
    try:
        with np.load(path, allow_pickle=False) as data:
            graph = CSRGraph(
                indptr=data["indptr"],
                indices=data["indices"],
                weights=data["weights"],
                self_weight=data["self_weight"],
                name=str(data["name"]),
            )
    except (KeyError, OSError, ValueError) as exc:
        raise GraphFormatError(f"cannot load npz graph {path!r}: {exc}") from exc
    # NPZ bypasses the edge-list builder entirely, so this is the only
    # gate between an on-disk payload and the kernels — audit everything.
    return validate_graph(graph, source=os.fspath(path))


def load_metis(path: PathLike, name: str | None = None) -> CSRGraph:
    """Load a METIS-format graph file.

    Header line: ``n m [fmt]`` where fmt 1 means edge weights follow each
    neighbour id (fmt 0/absent means unweighted; vertex-weight formats are
    rejected). Vertex ids in the file are 1-based; comment lines start
    with ``%``.
    """
    with open(path) as fh:
        lines = [ln for ln in fh if not ln.startswith("%")]
    if not lines:
        raise GraphFormatError(f"METIS file {path!r} is empty")
    header = lines[0].split()
    if len(header) < 2:
        raise GraphFormatError(f"bad METIS header in {path!r}: {lines[0]!r}")
    n, m = int(header[0]), int(header[1])
    fmt = header[2] if len(header) > 2 else "0"
    if fmt not in ("0", "00", "1", "01"):
        raise GraphFormatError(
            f"unsupported METIS fmt {fmt!r} (vertex weights not supported)"
        )
    weighted = fmt in ("1", "01")
    if len(lines) - 1 != n:
        raise GraphFormatError(
            f"METIS file {path!r} declares {n} vertices but has "
            f"{len(lines) - 1} adjacency lines"
        )
    srcs, dsts, ws = [], [], []
    for v, line in enumerate(lines[1:]):
        tokens = line.split()
        step = 2 if weighted else 1
        if weighted and len(tokens) % 2:
            raise GraphFormatError(
                f"odd token count on weighted METIS line {v + 2}"
            )
        for i in range(0, len(tokens), step):
            u = int(tokens[i]) - 1
            if not (0 <= u < n):
                raise GraphFormatError(
                    f"neighbour id {u + 1} out of range on line {v + 2}"
                )
            srcs.append(v)
            dsts.append(u)
            ws.append(float(tokens[i + 1]) if weighted else 1.0)
    gname = name or os.path.splitext(os.path.basename(os.fspath(path)))[0]
    # METIS lists each undirected edge from both endpoints
    return validate_graph(
        from_edge_array(
            n, np.array(srcs, dtype=np.int64), np.array(dsts, dtype=np.int64),
            np.array(ws) / 1.0, name=gname, already_symmetric=True,
        ),
        source=os.fspath(path),
    )


def save_metis(graph: CSRGraph, path: PathLike, weighted: bool = False) -> None:
    """Write METIS format (loops are dropped: the format has no loops)."""
    with open(path, "w") as fh:
        fh.write(f"% {graph.name}\n")
        fmt = " 1" if weighted else ""
        fh.write(f"{graph.n} {graph.num_directed_edges // 2}{fmt}\n")
        for v in range(graph.n):
            nbrs = graph.neighbors(v)
            ws = graph.neighbor_weights(v)
            if weighted:
                fh.write(
                    " ".join(f"{u + 1} {w:.10g}" for u, w in zip(nbrs, ws))
                    + "\n"
                )
            else:
                fh.write(" ".join(str(u + 1) for u in nbrs) + "\n")
