"""Graph I/O: edge-list text files and a fast NPZ binary format.

The paper's artifact ships ``prepare_graph.sh`` scripts that download SNAP /
LAW edge lists; our stand-ins are generated, but the loaders are provided so
a user with the real datasets can feed them straight in.
"""

from __future__ import annotations

import io
import os
from typing import Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import from_edge_array, validate_graph
from repro.graph.csr import CSRGraph

PathLike = Union[str, os.PathLike]


def load_edge_list(
    path: PathLike,
    comments: str = "#",
    weighted: bool = False,
    name: str | None = None,
    chunk_edges: int | None = None,
) -> CSRGraph:
    """Load a whitespace-separated edge-list file (SNAP style).

    Lines starting with ``comments`` are skipped. Vertex ids may be sparse;
    they are compacted to ``[0, n)`` preserving numeric order. With
    ``weighted=True`` a third column is read as the edge weight.

    The file is parsed in bounded batches and the CSR is assembled through
    the chunked builder (:mod:`repro.graph.external`), so peak memory
    tracks the final graph size plus one chunk — never a whole-file text
    buffer or a symmetrise-time edge-array copy. The output arrays are
    bit-identical to the historical whole-file path.
    """
    from repro.graph.external import build_from_edge_chunks, iter_edge_list_chunks
    from repro.graph.mmap_store import DEFAULT_CHUNK_EDGES

    step = chunk_edges or DEFAULT_CHUNK_EDGES
    spool: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    ids: np.ndarray | None = None
    for src, dst, w in iter_edge_list_chunks(
        path, comments=comments, weighted=weighted, chunk_lines=step
    ):
        spool.append((src, dst, w))
        chunk_ids = np.union1d(src, dst)
        ids = chunk_ids if ids is None else np.union1d(ids, chunk_ids)
    if ids is None:
        raise GraphFormatError(f"edge list {path!r} contains no edges")
    id_map = ids

    def chunks():
        for src, dst, w in spool:
            yield (
                np.searchsorted(id_map, src),
                np.searchsorted(id_map, dst),
                w,
            )

    gname = name or os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return build_from_edge_chunks(
        chunks,
        len(ids),
        name=gname,
        source=os.fspath(path),
        chunk_edges=step,
        on_edges_done=spool.clear,
        validate=True,
    )


def save_edge_list(graph: CSRGraph, path: PathLike, header: bool = True) -> None:
    """Write each undirected edge once as ``u v w`` lines."""
    buf = io.StringIO()
    if header:
        buf.write(f"# {graph.name}: n={graph.n} edges={graph.num_edges}\n")
    for u, v, w in graph.iter_edges():
        buf.write(f"{u} {v} {w:.10g}\n")
    with open(path, "w") as fh:
        fh.write(buf.getvalue())


def save_npz(graph: CSRGraph, path: PathLike) -> None:
    """Save in the library's binary format (compressed ``.npz``)."""
    np.savez_compressed(
        path,
        indptr=graph.indptr,
        indices=graph.indices,
        weights=graph.weights,
        self_weight=graph.self_weight,
        name=np.array(graph.name),
    )


def load_npz(path: PathLike) -> CSRGraph:
    """Load a graph saved with :func:`save_npz`."""
    try:
        with np.load(path, allow_pickle=False) as data:
            graph = CSRGraph(
                indptr=data["indptr"],
                indices=data["indices"],
                weights=data["weights"],
                self_weight=data["self_weight"],
                name=str(data["name"]),
            )
    except (KeyError, OSError, ValueError) as exc:
        raise GraphFormatError(f"cannot load npz graph {path!r}: {exc}") from exc
    # NPZ bypasses the edge-list builder entirely, so this is the only
    # gate between an on-disk payload and the kernels — audit everything.
    return validate_graph(graph, source=os.fspath(path))


def load_metis(path: PathLike, name: str | None = None) -> CSRGraph:
    """Load a METIS-format graph file.

    Header line: ``n m [fmt]`` where fmt 1 means edge weights follow each
    neighbour id (fmt 0/absent means unweighted; vertex-weight formats are
    rejected). Vertex ids in the file are 1-based; comment lines start
    with ``%``.
    """
    with open(path) as fh:
        lines = [ln for ln in fh if not ln.startswith("%")]
    if not lines:
        raise GraphFormatError(f"METIS file {path!r} is empty")
    header = lines[0].split()
    if len(header) < 2:
        raise GraphFormatError(f"bad METIS header in {path!r}: {lines[0]!r}")
    n, m = int(header[0]), int(header[1])
    fmt = header[2] if len(header) > 2 else "0"
    if fmt not in ("0", "00", "1", "01"):
        raise GraphFormatError(
            f"unsupported METIS fmt {fmt!r} (vertex weights not supported)"
        )
    weighted = fmt in ("1", "01")
    if len(lines) - 1 != n:
        raise GraphFormatError(
            f"METIS file {path!r} declares {n} vertices but has "
            f"{len(lines) - 1} adjacency lines"
        )
    srcs, dsts, ws = [], [], []
    for v, line in enumerate(lines[1:]):
        tokens = line.split()
        step = 2 if weighted else 1
        if weighted and len(tokens) % 2:
            raise GraphFormatError(
                f"odd token count on weighted METIS line {v + 2}"
            )
        for i in range(0, len(tokens), step):
            u = int(tokens[i]) - 1
            if not (0 <= u < n):
                raise GraphFormatError(
                    f"neighbour id {u + 1} out of range on line {v + 2}"
                )
            srcs.append(v)
            dsts.append(u)
            ws.append(float(tokens[i + 1]) if weighted else 1.0)
    gname = name or os.path.splitext(os.path.basename(os.fspath(path)))[0]
    # METIS lists each undirected edge from both endpoints
    return validate_graph(
        from_edge_array(
            n, np.array(srcs, dtype=np.int64), np.array(dsts, dtype=np.int64),
            np.array(ws) / 1.0, name=gname, already_symmetric=True,
        ),
        source=os.fspath(path),
    )


def load_graph(
    path: PathLike,
    weighted: bool = False,
    mmap: bool = False,
    name: str | None = None,
) -> CSRGraph:
    """Load a graph from any supported on-disk form (the CLI entry point).

    Dispatch by shape of ``path``:

    * a **graph store directory** (``meta.json`` + ``.bin`` payloads) opens
      as an out-of-core :class:`~repro.graph.mmap_store.MmapCSRGraph` —
      the adjacency stays on disk and is paged in on demand;
    * a ``.npz`` file loads via :func:`load_npz` (zip members cannot be
      memory-mapped, so this is always an in-RAM graph);
    * anything else parses as an edge-list text file. With ``mmap=True``
      the text file is streamed into a sibling ``<path>.store/`` directory
      (cached across runs, rebuilt when the source file changes) and
      opened memmapped instead of built in RAM.
    """
    from repro.graph.mmap_store import is_mmap_store, open_mmap

    fspath = os.fspath(path)
    if is_mmap_store(fspath):
        return open_mmap(fspath, name=name)
    if os.path.isdir(fspath):
        raise GraphFormatError(
            f"{fspath!r} is a directory but not a graph store (no meta.json)"
        )
    if fspath.endswith(".npz"):
        return load_npz(fspath)
    if mmap:
        return _edge_list_store(fspath, weighted=weighted, name=name)
    return load_edge_list(fspath, weighted=weighted, name=name)


def _edge_list_store(path: str, weighted: bool, name: str | None) -> CSRGraph:
    """Open (or build) the cached store for an edge-list text file.

    The store remembers the source file's size and mtime in its
    ``meta.json``; a stale or missing store triggers a streaming rebuild
    via :func:`~repro.graph.external.edge_list_to_mmap`.
    """
    import json
    import shutil

    from repro.graph.external import edge_list_to_mmap
    from repro.graph.mmap_store import META_NAME, is_mmap_store, open_mmap

    store = path + ".store"
    st = os.stat(path)
    stamp = {"size": st.st_size, "mtime_ns": st.st_mtime_ns}
    if is_mmap_store(store):
        try:
            with open(os.path.join(store, META_NAME)) as fh:
                meta = json.load(fh)
        except (OSError, ValueError):
            meta = {}
        if meta.get("source") == stamp:
            # already validated at build time; trust the cached store
            return open_mmap(store, validate=False, name=name)
        shutil.rmtree(store, ignore_errors=True)
    graph = edge_list_to_mmap(path, store, weighted=weighted, name=name)
    graph._update_meta(source=stamp)
    return graph


def save_metis(graph: CSRGraph, path: PathLike, weighted: bool = False) -> None:
    """Write METIS format (loops are dropped: the format has no loops)."""
    with open(path, "w") as fh:
        fh.write(f"% {graph.name}\n")
        fmt = " 1" if weighted else ""
        fh.write(f"{graph.n} {graph.num_directed_edges // 2}{fmt}\n")
        for v in range(graph.n):
            nbrs = graph.neighbors(v)
            ws = graph.neighbor_weights(v)
            if weighted:
                fh.write(
                    " ".join(f"{u + 1} {w:.10g}" for u, w in zip(nbrs, ws))
                    + "\n"
                )
            else:
                fh.write(" ".join(str(u + 1) for u in nbrs) + "\n")
