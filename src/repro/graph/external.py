"""Streaming edge-list → CSR conversion with bounded peak memory.

The in-RAM builder (:mod:`repro.graph.builder`) materialises the whole
edge array several times over (parse buffer, symmetrise concat, global
lexsort); at 10⁷–10⁸ edges that multiple is the difference between
"fits" and "OOM-killed". This module builds the same CSR — bit-identical
arrays, same validation behaviour — from a re-iterable stream of edge
chunks, touching only O(n + chunk) heap:

1. **degree pass** — per-chunk ``bincount`` accumulates the symmetrised
   degree of every vertex and routes self-loops into ``self_weight``
   (``np.add.at`` in file order, the builder's exact summation order);
2. **scatter passes** — non-loop entries land directly at their final
   row offsets in a pre-coalesce scratch adjacency (RAM or an on-disk
   memmap). Two passes, all forward entries then all reverse entries, so
   each row's arrival order equals the order the builder's stable
   ``lexsort((dst, src))`` would produce — the float coalesce sums below
   then add in the identical sequence;
3. **coalesce pass** — per row-block stable sort + ``reduceat`` run
   collapse, streamed into the final CSR (an in-RAM ``CSRGraph`` or a
   :class:`~repro.graph.mmap_store.MmapCSRWriter` store).

``load_edge_list`` reuses the chunked text parser and the in-RAM sink;
``edge_list_to_mmap`` is the fully out-of-core path (text → binary edge
spool → on-disk store) and never holds an O(E) array in memory.
"""

from __future__ import annotations

import io
import itertools
import os
import shutil
from typing import Callable, Iterator, Optional, Union

import numpy as np

from repro.errors import GraphFormatError, GraphValidationError
from repro.graph.builder import validate_graph
from repro.graph.csr import CSRGraph
from repro.graph.mmap_store import (
    DEFAULT_CHUNK_EDGES,
    MmapCSRGraph,
    MmapCSRWriter,
    iter_row_blocks,
)

PathLike = Union[str, os.PathLike]

#: a chunk factory is called once per pass and must yield the same
#: ``(src, dst, w)`` chunks every time (chunk boundaries may differ)
EdgeChunks = Callable[[], Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]]


# --------------------------------------------------------------------- #
# chunked text parsing (shared by load_edge_list and the converter)
# --------------------------------------------------------------------- #
def iter_edge_list_chunks(
    path: PathLike,
    comments: str = "#",
    weighted: bool = False,
    chunk_lines: int = DEFAULT_CHUNK_EDGES,
) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Parse a SNAP-style edge-list file in bounded line batches.

    Yields ``(src, dst, w)`` int64/int64/float64 chunks with the file's
    raw (possibly sparse) vertex ids; comment/blank lines are skipped.
    Parse failures raise the same :class:`GraphFormatError` the whole-file
    loader raised.
    """
    import warnings

    cols = 3 if weighted else 2
    try:
        with open(path) as fh:
            while True:
                lines = list(itertools.islice(fh, max(chunk_lines, 1)))
                if not lines:
                    return
                with warnings.catch_warnings():
                    # an all-comments batch parses to an empty array; the
                    # "no data" warning would just be noise
                    warnings.simplefilter("ignore", UserWarning)
                    data = np.loadtxt(
                        io.StringIO("".join(lines)),
                        comments=comments,
                        usecols=range(cols),
                        ndmin=2,
                    )
                if data.size == 0:
                    continue
                src = data[:, 0].astype(np.int64)
                dst = data[:, 1].astype(np.int64)
                w = (
                    data[:, 2].astype(np.float64)
                    if weighted
                    else np.ones(len(src), dtype=np.float64)
                )
                yield src, dst, w
    except (ValueError, OSError) as exc:
        raise GraphFormatError(f"cannot parse edge list {path!r}: {exc}") from exc


# --------------------------------------------------------------------- #
# the multi-pass builder core
# --------------------------------------------------------------------- #
def build_from_edge_chunks(
    chunks: EdgeChunks,
    n: int,
    name: str = "graph",
    source: str | None = None,
    out_path: PathLike | None = None,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    validate: bool = True,
    on_edges_done: Optional[Callable[[], None]] = None,
) -> CSRGraph:
    """Build a CSR graph from re-iterable edge chunks in O(n + chunk) heap.

    ``chunks`` is consumed three times (degree pass, forward scatter,
    reverse scatter) and must replay identically. Ids must already lie in
    ``[0, n)``. With ``out_path`` the result is an on-disk
    :class:`MmapCSRGraph` store; otherwise an in-RAM :class:`CSRGraph`.
    The output arrays are bit-identical to
    :func:`repro.graph.builder.from_edge_array` on the concatenated
    chunks — same symmetrisation, same coalesce summation order, same
    self-loop routing. ``on_edges_done`` fires after the final pass over
    ``chunks`` (callers use it to free a spool before the coalesce).
    """
    counts = np.zeros(n, dtype=np.int64)
    self_w = np.zeros(n, dtype=np.float64)
    for src, dst, w in chunks():
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        w = np.asarray(w, dtype=np.float64)
        if src.shape != dst.shape:
            raise GraphValidationError("src and dst must have equal shape")
        if w.shape != src.shape:
            raise GraphValidationError("w must match src/dst shape")
        if len(src) == 0:
            continue
        if min(src.min(), dst.min()) < 0 or max(src.max(), dst.max()) >= n:
            raise GraphValidationError(f"edge endpoint out of range [0, {n})")
        if np.any(w < 0):
            raise GraphValidationError("negative edge weight")
        loop = src == dst
        if loop.any():
            np.add.at(self_w, src[loop], w[loop])
            nl = ~loop
            src, dst = src[nl], dst[nl]
        counts += np.bincount(src, minlength=n)
        counts += np.bincount(dst, minlength=n)
    nnz_pre = int(counts.sum())

    # pre-coalesce scratch adjacency, row-bucketed by final offset
    scratch_dir = None
    if out_path is not None and nnz_pre > 0:
        scratch_dir = os.path.join(os.fspath(out_path), ".scratch")
        os.makedirs(scratch_dir, exist_ok=True)
        idx_s = np.memmap(
            os.path.join(scratch_dir, "idx.bin"), dtype="<i8", mode="w+",
            shape=(nnz_pre,),
        )
        w_s = np.memmap(
            os.path.join(scratch_dir, "w.bin"), dtype="<f8", mode="w+",
            shape=(nnz_pre,),
        )
    else:
        idx_s = np.empty(nnz_pre, dtype=np.int64)
        w_s = np.empty(nnz_pre, dtype=np.float64)
    base = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=base[1:])
    cur = base[:-1].copy()

    # two scatter passes — all forward entries, then all reverse entries —
    # so each row fills in exactly the order the builder's stable global
    # lexsort over [forward..., reverse...] visits it
    for forward in (True, False):
        for src, dst, w in chunks():
            src = np.asarray(src, dtype=np.int64)
            dst = np.asarray(dst, dtype=np.int64)
            w = np.asarray(w, dtype=np.float64)
            nl = src != dst
            u = (src if forward else dst)[nl]
            v = (dst if forward else src)[nl]
            ww = w[nl]
            if len(u) == 0:
                continue
            order = np.argsort(u, kind="stable")
            u, v, ww = u[order], v[order], ww[order]
            uniq, run_start, run_cnt = np.unique(
                u, return_index=True, return_counts=True
            )
            offs = np.arange(len(u), dtype=np.int64) - np.repeat(run_start, run_cnt)
            pos = cur[u] + offs
            # a generator that yields *more* per row than the degree pass
            # counted would scatter past its row bucket — catch it here
            # rather than corrupt a neighbour row (the post-pass cursor
            # check below only sees totals)
            if np.any(cur[uniq] + run_cnt > base[uniq + 1]):
                raise GraphValidationError(
                    "edge chunks did not replay identically across passes"
                )
            idx_s[pos] = v
            w_s[pos] = ww
            cur[uniq] += run_cnt
    if not np.array_equal(cur, base[1:]):
        raise GraphValidationError(
            "edge chunks did not replay identically across passes"
        )
    if on_edges_done is not None:
        on_edges_done()

    # per-row-block coalesce into the final CSR
    if out_path is not None:
        writer: MmapCSRWriter | _RamWriter = MmapCSRWriter(out_path, n, name=name)
    else:
        writer = _RamWriter(n, name=name)
    try:
        for v0, v1 in iter_row_blocks(base, max(chunk_edges, 1)):
            p0, p1 = int(base[v0]), int(base[v1])
            ids = np.asarray(idx_s[p0:p1], dtype=np.int64)
            ws = np.asarray(w_s[p0:p1], dtype=np.float64)
            nrows = v1 - v0
            if len(ids) == 0:
                writer.append_rows(
                    np.zeros(nrows, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.float64),
                )
                continue
            rows = np.repeat(np.arange(nrows, dtype=np.int64), counts[v0:v1])
            order = np.lexsort((ids, rows))
            rows_s, ids_s, ws_s = rows[order], ids[order], ws[order]
            new_run = np.empty(len(ids_s), dtype=bool)
            new_run[0] = True
            new_run[1:] = (rows_s[1:] != rows_s[:-1]) | (ids_s[1:] != ids_s[:-1])
            starts = np.flatnonzero(new_run)
            writer.append_rows(
                np.bincount(rows_s[starts], minlength=nrows),
                ids_s[starts],
                np.add.reduceat(ws_s, starts),
            )
        nz = np.flatnonzero(self_w)
        if len(nz):
            writer.add_self_weight(nz, self_w[nz])
        graph = writer.finalize(validate=validate, chunk_edges=chunk_edges)
    except BaseException:
        writer.abort()
        raise
    finally:
        del idx_s, w_s
        if scratch_dir is not None:
            shutil.rmtree(scratch_dir, ignore_errors=True)
    if out_path is None and validate:
        validate_graph(graph, source=source or name)
    return graph


class _RamWriter:
    """In-RAM sink with the :class:`MmapCSRWriter` append interface."""

    def __init__(self, n: int, name: str = "graph"):
        self.n = n
        self.name = name
        self._counts: list[np.ndarray] = []
        self._ids: list[np.ndarray] = []
        self._ws: list[np.ndarray] = []
        self._self_weight = np.zeros(n, dtype=np.float64)

    def append_rows(
        self, counts: np.ndarray, indices: np.ndarray, weights: np.ndarray
    ) -> None:
        self._counts.append(np.asarray(counts, dtype=np.int64))
        self._ids.append(np.asarray(indices, dtype=np.int64))
        self._ws.append(np.asarray(weights, dtype=np.float64))

    def add_self_weight(self, vertices: np.ndarray, weights: np.ndarray) -> None:
        np.add.at(self._self_weight, vertices, weights)

    def finalize(self, validate: bool = True, chunk_edges: int = 0) -> CSRGraph:
        counts = (
            np.concatenate(self._counts)
            if self._counts
            else np.zeros(self.n, dtype=np.int64)
        )
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = (
            np.concatenate(self._ids) if self._ids else np.empty(0, dtype=np.int64)
        )
        weights = (
            np.concatenate(self._ws) if self._ws else np.empty(0, dtype=np.float64)
        )
        return CSRGraph(
            indptr=indptr,
            indices=indices,
            weights=weights,
            self_weight=self._self_weight,
            name=self.name,
        )

    def abort(self) -> None:
        pass


# --------------------------------------------------------------------- #
# binary edge spool (parse text once, replay cheaply)
# --------------------------------------------------------------------- #
class EdgeSpool:
    """Append-once, replay-many binary spool of ``(src, dst, w)`` edges.

    The out-of-core converter parses the text file exactly once, spools
    the raw edges here, and replays the spool for the builder's three
    passes — binary replay is pure ``memmap`` reads, ~100x cheaper than
    re-parsing text.
    """

    def __init__(self, path: PathLike):
        self.path = os.fspath(path)
        os.makedirs(self.path, exist_ok=True)
        self._fhs = {
            key: open(os.path.join(self.path, f"{key}.bin"), "wb")
            for key in ("src", "dst", "w")
        }
        self.num_edges = 0

    def append(self, src: np.ndarray, dst: np.ndarray, w: np.ndarray) -> None:
        self._fhs["src"].write(np.ascontiguousarray(src, dtype="<i8").tobytes())
        self._fhs["dst"].write(np.ascontiguousarray(dst, dtype="<i8").tobytes())
        self._fhs["w"].write(np.ascontiguousarray(w, dtype="<f8").tobytes())
        self.num_edges += len(src)

    def close_write(self) -> None:
        for fh in self._fhs.values():
            fh.close()
        self._fhs = {}

    def chunks(
        self, chunk_edges: int
    ) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        if self.num_edges == 0:
            return
        src = np.memmap(
            os.path.join(self.path, "src.bin"), dtype="<i8", mode="r",
            shape=(self.num_edges,),
        )
        dst = np.memmap(
            os.path.join(self.path, "dst.bin"), dtype="<i8", mode="r",
            shape=(self.num_edges,),
        )
        w = np.memmap(
            os.path.join(self.path, "w.bin"), dtype="<f8", mode="r",
            shape=(self.num_edges,),
        )
        step = max(chunk_edges, 1)
        for lo in range(0, self.num_edges, step):
            hi = min(lo + step, self.num_edges)
            yield src[lo:hi], dst[lo:hi], w[lo:hi]

    def cleanup(self) -> None:
        shutil.rmtree(self.path, ignore_errors=True)


# --------------------------------------------------------------------- #
# the fully out-of-core converter
# --------------------------------------------------------------------- #
def edge_list_to_mmap(
    path: PathLike,
    out_path: PathLike,
    comments: str = "#",
    weighted: bool = False,
    name: str | None = None,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    validate: bool = True,
) -> MmapCSRGraph:
    """Convert an edge-list text file into an on-disk graph store.

    External-sort pipeline: text is parsed once in bounded batches into a
    binary spool inside ``out_path``, sparse vertex ids are compacted
    exactly as :func:`~repro.graph.io.load_edge_list` compacts them
    (numeric order), and the spool is replayed through
    :func:`build_from_edge_chunks` into an ``np.memmap``-backed store.
    Peak heap is O(n + chunk_edges) — the edge array never exists in RAM.
    """
    out_path = os.fspath(out_path)
    gname = name or os.path.splitext(os.path.basename(os.fspath(path)))[0]
    os.makedirs(out_path, exist_ok=True)
    spool = EdgeSpool(os.path.join(out_path, ".spool"))
    try:
        ids: np.ndarray | None = None
        for src, dst, w in iter_edge_list_chunks(
            path, comments=comments, weighted=weighted, chunk_lines=chunk_edges
        ):
            spool.append(src, dst, w)
            chunk_ids = np.union1d(src, dst)
            ids = chunk_ids if ids is None else np.union1d(ids, chunk_ids)
        spool.close_write()
        if ids is None:
            raise GraphFormatError(f"edge list {path!r} contains no edges")
        n = len(ids)
        compact = ids[0] == 0 and ids[-1] == n - 1
        mapping = None if compact else ids

        def chunks() -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
            for src, dst, w in spool.chunks(chunk_edges):
                if mapping is not None:
                    yield (
                        np.searchsorted(mapping, src),
                        np.searchsorted(mapping, dst),
                        np.asarray(w),
                    )
                else:
                    yield src, dst, w

        graph = build_from_edge_chunks(
            chunks,
            n,
            name=gname,
            source=os.fspath(path),
            out_path=out_path,
            chunk_edges=chunk_edges,
            validate=validate,
        )
    finally:
        spool.cleanup()
    return graph
