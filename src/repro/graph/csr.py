"""Weighted undirected CSR graph.

Weight conventions (paper Section 2.1, Newman's modularity convention):

* The adjacency (``indptr``/``indices``/``weights``) stores only **non-loop**
  edges; every undirected edge ``{u, v}`` appears twice, once in each
  endpoint's row, with the same weight.
* Self-loops live in the dense ``self_weight`` array. A loop of weight ``w``
  contributes ``2 w`` to its vertex's weighted degree (``strength``), exactly
  as the contracted intra-community weight must after a phase-2 coarsening
  step (the paper: "edge weights within a community are grouped into a
  self-loop edge" and "each edge in the community is considered twice when
  D_C(C) is calculated").
* ``|E|`` (written ``total_weight`` here) is the weighted cardinality of the
  undirected edge set: each non-loop edge once, each loop once. Therefore
  ``2|E| == strength.sum()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.errors import GraphValidationError


@dataclass
class CSRGraph:
    """Immutable weighted undirected graph in CSR form.

    Attributes
    ----------
    indptr:
        ``int64[n + 1]`` row offsets into ``indices``/``weights``.
    indices:
        ``int64[2 * m_nonloop]`` neighbour ids; each undirected non-loop edge
        is stored in both endpoint rows. Rows are sorted by neighbour id.
    weights:
        ``float64`` edge weights aligned with ``indices``.
    self_weight:
        ``float64[n]`` self-loop weight per vertex (0 when absent).
    name:
        Optional human-readable label used by the benchmark reporting.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray
    self_weight: np.ndarray
    name: str = "graph"
    _strength: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    _degrees: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    _row_ids: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    _total_weight: Optional[float] = field(default=None, repr=False, compare=False)
    _fingerprint: Optional[str] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self.indptr) - 1

    @property
    def num_directed_edges(self) -> int:
        """Number of stored adjacency entries (2x each non-loop edge)."""
        return len(self.indices)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges, self-loops included once each."""
        return self.num_directed_edges // 2 + int(np.count_nonzero(self.self_weight))

    @property
    def total_weight(self) -> float:
        """``|E|``: weighted cardinality of the undirected edge set.

        Computed lazily once and cached; the graph is treated as immutable.
        The phase-1 gain arithmetic reads this (via ``two_m``) many times
        per iteration — recomputing the O(E) sum per access was measurable.
        """
        if self._total_weight is None:
            object.__setattr__(
                self,
                "_total_weight",
                float(self.weights.sum()) / 2.0 + float(self.self_weight.sum()),
            )
        return self._total_weight

    @property
    def two_m(self) -> float:
        """``2|E|`` — equals the sum of all weighted degrees."""
        return 2.0 * self.total_weight

    @property
    def strength(self) -> np.ndarray:
        """Weighted degree ``d(v)`` per vertex (self-loops counted twice).

        Computed lazily once and cached; the graph is treated as immutable.
        """
        if self._strength is None:
            row_sums = np.zeros(self.n, dtype=np.float64)
            if len(self.weights):
                # reduceat misbehaves on empty rows (it returns
                # values[start], or rejects an out-of-range trailing
                # start), so reduce only the non-empty rows: their starts
                # are strictly increasing and in range, making consecutive
                # starts valid segment boundaries.
                nonempty = self.indptr[1:] > self.indptr[:-1]
                starts = self.indptr[:-1][nonempty]
                row_sums[nonempty] = np.add.reduceat(
                    self.weights, starts, dtype=np.float64
                )
            object.__setattr__(self, "_strength", row_sums + 2.0 * self.self_weight)
        return self._strength

    @property
    def degrees(self) -> np.ndarray:
        """Unweighted adjacency-row lengths (self-loops not counted).

        Computed lazily once and cached; the graph is treated as immutable.
        The phase-1 engine indexes this every iteration — recomputing
        ``np.diff(indptr)`` per call was measurable overhead.
        """
        if self._degrees is None:
            object.__setattr__(self, "_degrees", np.diff(self.indptr))
        return self._degrees

    @property
    def fingerprint(self) -> str:
        """Full sha256 hex digest of the CSR payload arrays.

        Computed lazily once and cached; the graph is treated as
        immutable, so no invalidation is ever needed. Run manifests, the
        serving layer's graph registry, and the result cache all key on
        this digest — before the cache, every manifest build re-hashed
        the same arrays (O(E) per run on a graph that never changes).
        """
        if self._fingerprint is None:
            from repro.graph.fingerprint import compute_csr_sha256

            object.__setattr__(self, "_fingerprint", compute_csr_sha256(self))
        return self._fingerprint

    @property
    def row_ids(self) -> np.ndarray:
        """Row (source-vertex) id of every stored adjacency entry.

        The expansion ``np.repeat(np.arange(n), degrees)`` that every
        whole-graph edge scan needs; cached because it is O(E) to build and
        several hot paths (full-set DecideAndMove, d_comm recomputation,
        movement-frontier derivation) want it each iteration.
        """
        if self._row_ids is None:
            object.__setattr__(
                self,
                "_row_ids",
                np.repeat(np.arange(self.n, dtype=np.int64), self.degrees),
            )
        return self._row_ids

    # ------------------------------------------------------------------ #
    # Row access
    # ------------------------------------------------------------------ #
    def neighbors(self, v: int) -> np.ndarray:
        """View of vertex ``v``'s neighbour ids (no copy)."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """View of vertex ``v``'s incident edge weights (no copy)."""
        return self.weights[self.indptr[v]:self.indptr[v + 1]]

    def iter_edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield each undirected edge once as ``(u, v, w)`` with ``u <= v``.

        Self-loops are yielded as ``(v, v, self_weight[v])``. Intended for
        tests and I/O, not hot paths.
        """
        for v in range(self.n):
            lo, hi = self.indptr[v], self.indptr[v + 1]
            for j in range(lo, hi):
                u = int(self.indices[j])
                if v <= u:
                    yield v, u, float(self.weights[j])
            if self.self_weight[v] != 0.0:
                yield v, v, float(self.self_weight[v])

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check all structural invariants; raise GraphValidationError."""
        if self.indptr.ndim != 1 or len(self.indptr) < 1:
            raise GraphValidationError("indptr must be 1-D with >= 1 entries")
        if self.indptr[0] != 0:
            raise GraphValidationError("indptr[0] must be 0")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphValidationError("indptr must be non-decreasing")
        if self.indptr[-1] != len(self.indices):
            raise GraphValidationError("indptr[-1] must equal len(indices)")
        if len(self.indices) != len(self.weights):
            raise GraphValidationError("indices and weights must align")
        if len(self.self_weight) != self.n:
            raise GraphValidationError("self_weight must have one entry per vertex")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= self.n
        ):
            raise GraphValidationError("neighbour id out of range")
        if np.any(self.weights < 0) or np.any(self.self_weight < 0):
            raise GraphValidationError("negative edge weight")
        row_ids = np.repeat(np.arange(self.n), np.diff(self.indptr))
        if np.any(self.indices == row_ids):
            raise GraphValidationError(
                "self-loop found in adjacency; loops belong in self_weight"
            )
        # Symmetry: the multiset of (u, v, w) must equal that of (v, u, w).
        order_fwd = np.lexsort((self.indices, row_ids))
        order_rev = np.lexsort((row_ids, self.indices))
        if not (
            np.array_equal(row_ids[order_fwd], self.indices[order_rev])
            and np.array_equal(self.indices[order_fwd], row_ids[order_rev])
            and np.allclose(self.weights[order_fwd], self.weights[order_rev])
        ):
            raise GraphValidationError("adjacency is not symmetric")
        # Rows sorted by neighbour id (builder guarantees this; generators
        # constructing CSR manually must too — binary search relies on it).
        for v in range(self.n):
            row = self.neighbors(v)
            if len(row) > 1 and np.any(np.diff(row) < 0):
                raise GraphValidationError(f"row {v} not sorted")
            if len(row) > 1 and np.any(np.diff(row) == 0):
                raise GraphValidationError(f"row {v} has duplicate neighbours")

    # ------------------------------------------------------------------ #
    # Conversion helpers (tests / examples)
    # ------------------------------------------------------------------ #
    def to_networkx(self):
        """Convert to a ``networkx.Graph`` (weights on the ``weight`` key)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        for u, v, w in self.iter_edges():
            g.add_edge(u, v, weight=w)
        return g

    @classmethod
    def from_networkx(cls, g, name: str = "graph") -> "CSRGraph":
        """Build from a ``networkx.Graph`` with integer nodes ``0..n-1``."""
        from repro.graph.builder import from_edge_array

        n = g.number_of_nodes()
        edges = np.array(
            [(u, v, d.get("weight", 1.0)) for u, v, d in g.edges(data=True)],
            dtype=np.float64,
        ).reshape(-1, 3)
        src = edges[:, 0].astype(np.int64)
        dst = edges[:, 1].astype(np.int64)
        w = edges[:, 2]
        return from_edge_array(n, src, dst, w, name=name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, n={self.n}, "
            f"edges={self.num_edges}, |E|={self.total_weight:.1f})"
        )
