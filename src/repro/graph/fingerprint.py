"""Structural identity of a CSR graph: the sha256 content fingerprint.

The digest covers the full CSR payload (offsets, neighbours, weights,
self-loops), so two graphs fingerprint equal iff they are the same
weighted graph with the same vertex numbering. This is the key the
serving layer's graph registry and result cache are built on: runs are
deterministic per (fingerprint, config, seed), so the fingerprint *is*
the graph as far as a detection result is concerned.

Historically this lived in :mod:`repro.obs.manifest` (manifests need it
for run-to-run diffing); it moved here so :class:`~repro.graph.csr.CSRGraph`
can compute and cache the digest once — hashing hundreds of megabytes of
arrays on every manifest build or registry lookup was pure waste. The
manifest module re-exports :func:`graph_fingerprint` for its callers.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict

import numpy as np

#: manifests carry a short prefix of the digest — enough to tell runs
#: apart by eye while keeping report tables narrow
SHORT_DIGEST_LEN = 16


def csr_sha256(graph) -> str:
    """Full sha256 hex digest of a CSR graph's payload arrays.

    Prefers the graph's own lazily-cached digest
    (:attr:`~repro.graph.csr.CSRGraph.fingerprint`) and only hashes the
    arrays directly for duck-typed graph stand-ins that lack the cache.
    """
    cached = getattr(graph, "_fingerprint", None)
    if cached is not None:
        return cached
    if hasattr(graph, "fingerprint"):
        return graph.fingerprint
    return compute_csr_sha256(graph)


def compute_csr_sha256(graph) -> str:
    """Hash the CSR payload unconditionally (no cache involved)."""
    h = hashlib.sha256()
    for arr in (graph.indptr, graph.indices, graph.weights, graph.self_weight):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def graph_fingerprint(graph) -> Dict[str, Any]:
    """Identity record of a :class:`CSRGraph` for manifests and reports.

    The ``sha256`` field is the first :data:`SHORT_DIGEST_LEN` hex chars
    of :func:`csr_sha256`; two graphs share it iff they are the same
    weighted graph with the same vertex numbering — the precondition for
    a meaningful run-to-run diff.
    """
    return {
        "name": graph.name,
        "n": int(graph.n),
        "num_edges": int(graph.num_edges),
        "total_weight": float(graph.total_weight),
        "sha256": csr_sha256(graph)[:SHORT_DIGEST_LEN],
    }
