"""Algorithm-level invariant auditors.

Three audits, all producing :class:`~repro.analysis.findings.Finding`
records:

* :func:`validate_csr` — fully vectorised CSR well-formedness check
  (monotone aligned ``indptr``, in-range sorted duplicate-free rows,
  finite non-negative weights, multiset symmetry, weighted-degree parity
  with ``2m``). Unlike :meth:`CSRGraph.validate` it reports *all*
  violations as structured findings instead of raising on the first, and
  replaces the per-vertex Python loop with row-boundary masking so
  loaders can afford it on big graphs.
* :func:`audit_weight_update` — bit-compares the incrementally maintained
  community-weight arrays (``d_comm`` / ``comm_strength`` / ``comm_size``)
  against a from-scratch recomputation. This is the tripwire for the
  stale-community-weight class of parallel-Louvain bugs.
* :func:`audit_lemma5` — checks the MG pruning bound's zero
  false-negative guarantee (paper Lemma 5 / Eq. 6): no vertex the
  strategy pruned may have a positive-gain move according to the engine's
  full-set oracle decide.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional

import numpy as np

from .findings import Finding

if TYPE_CHECKING:  # annotation-only; keeps the import graph acyclic
    from repro.core.state import CommunityState
    from repro.graph.csr import CSRGraph

_MAX_DETAIL = 8


def _f(kind: str, message: str, **kw: Any) -> Finding:
    return Finding(checker="invariant", kind=kind, message=message, **kw)


# ---------------------------------------------------------------------- #
# CSR well-formedness
# ---------------------------------------------------------------------- #

def validate_csr(graph: "CSRGraph", source: Optional[str] = None) -> List[Finding]:
    """Vectorised structural audit of a :class:`CSRGraph`.

    Returns a list of findings (empty when the graph is well-formed).
    ``source`` labels where the graph came from (a file path, a generator
    name) and lands in ``Finding.kernel``.
    """
    findings: List[Finding] = []
    indptr = np.asarray(graph.indptr)
    indices = np.asarray(graph.indices)
    weights = np.asarray(graph.weights)
    self_weight = np.asarray(graph.self_weight)

    def add(kind: str, message: str, **details: Any) -> None:
        findings.append(
            _f(kind, message, kernel=source, details=details or {})
        )

    # --- indptr shape / monotonicity / alignment --------------------- #
    if indptr.ndim != 1 or indptr.shape[0] < 1:
        add("csr-malformed", "indptr must be 1-D with >= 1 entries")
        return findings  # nothing else is decidable
    if indptr[0] != 0:
        add("csr-malformed", f"indptr[0] is {int(indptr[0])}, expected 0")
        return findings  # row boundaries are shifted; nothing else aligns
    diffs = np.diff(indptr)
    if diffs.size and bool((diffs < 0).any()):
        first = int(np.flatnonzero(diffs < 0)[0])
        add(
            "csr-malformed",
            f"indptr decreases at row {first}",
            row=first,
        )
        return findings  # row boundaries unusable beyond this point
    if indptr[-1] != indices.shape[0]:
        add(
            "csr-malformed",
            f"indptr[-1]={int(indptr[-1])} does not match "
            f"len(indices)={indices.shape[0]}",
        )
        return findings
    if indices.shape[0] != weights.shape[0]:
        add(
            "csr-malformed",
            f"indices ({indices.shape[0]}) and weights "
            f"({weights.shape[0]}) must align",
        )
        return findings
    n = indptr.shape[0] - 1
    if self_weight.shape[0] != n:
        add(
            "csr-malformed",
            f"self_weight has {self_weight.shape[0]} entries for {n} vertices",
        )
        return findings

    row_ids = np.repeat(np.arange(n, dtype=np.int64), diffs)

    # --- neighbour ids ------------------------------------------------ #
    oob = (indices < 0) | (indices >= n)
    if bool(oob.any()):
        where = np.flatnonzero(oob)
        add(
            "csr-index-range",
            f"{where.shape[0]} neighbour id(s) outside [0, {n})",
            rows=row_ids[where[:_MAX_DETAIL]].tolist(),
            values=indices[where[:_MAX_DETAIL]].tolist(),
        )
        return findings  # range errors poison the remaining vector checks
    loops = indices == row_ids
    if bool(loops.any()):
        add(
            "csr-adjacency-loop",
            f"{int(loops.sum())} self-loop(s) stored in the adjacency; "
            "loops belong in self_weight",
            rows=row_ids[loops][:_MAX_DETAIL].tolist(),
        )

    # --- weights ------------------------------------------------------ #
    bad_w = ~np.isfinite(weights) | (weights < 0)
    if bool(bad_w.any()):
        where = np.flatnonzero(bad_w)
        add(
            "csr-bad-weight",
            f"{where.shape[0]} adjacency weight(s) negative or non-finite",
            rows=row_ids[where[:_MAX_DETAIL]].tolist(),
        )
    bad_sw = ~np.isfinite(self_weight) | (self_weight < 0)
    if bool(bad_sw.any()):
        add(
            "csr-bad-weight",
            f"{int(bad_sw.sum())} self-loop weight(s) negative or non-finite",
            rows=np.flatnonzero(bad_sw)[:_MAX_DETAIL].tolist(),
        )

    # --- rows sorted, duplicate-free (vectorised) --------------------- #
    if indices.shape[0] > 1:
        # adjacent pairs within the same row: mask out pairs that
        # straddle a row boundary
        same_row = row_ids[1:] == row_ids[:-1]
        step = indices[1:] - indices[:-1]
        unsorted = same_row & (step < 0)
        if bool(unsorted.any()):
            add(
                "csr-unsorted-row",
                f"{int(unsorted.sum())} adjacency pair(s) out of order",
                rows=row_ids[1:][unsorted][:_MAX_DETAIL].tolist(),
            )
        dupes = same_row & (step == 0)
        if bool(dupes.any()):
            add(
                "csr-duplicate-neighbour",
                f"{int(dupes.sum())} duplicate neighbour entr(ies)",
                rows=row_ids[1:][dupes][:_MAX_DETAIL].tolist(),
            )

    # --- symmetry (multiset of (u,v,w) == multiset of (v,u,w)) -------- #
    order_fwd = np.lexsort((indices, row_ids))
    order_rev = np.lexsort((row_ids, indices))
    symmetric = (
        np.array_equal(row_ids[order_fwd], indices[order_rev])
        and np.array_equal(indices[order_fwd], row_ids[order_rev])
    )
    if symmetric and weights.shape[0]:
        with np.errstate(invalid="ignore"):
            symmetric = bool(
                np.allclose(
                    weights[order_fwd], weights[order_rev], equal_nan=True
                )
            )
    if not symmetric:
        add(
            "csr-asymmetric",
            "adjacency is not symmetric: some (u, v, w) lacks its (v, u, w)",
        )

    # --- weighted-degree parity with 2m ------------------------------- #
    # strength.sum() must equal 2|E| (each non-loop edge contributes its
    # weight to both endpoint rows; each loop contributes 2w once). Only
    # meaningful when the weights themselves are finite.
    if not bool(bad_w.any()) and not bool(bad_sw.any()):
        deg_sum = float(weights.sum()) + 2.0 * float(self_weight.sum())
        two_m = float(graph.two_m)
        if not np.isclose(deg_sum, two_m, rtol=1e-9, atol=1e-9):
            add(
                "csr-weight-parity",
                f"sum of weighted degrees {deg_sum!r} != 2m {two_m!r}",
                degree_sum=deg_sum,
                two_m=two_m,
            )

    return findings


# ---------------------------------------------------------------------- #
# community-weight conservation
# ---------------------------------------------------------------------- #

def audit_weight_update(
    state: "CommunityState",
    iteration: Optional[int] = None,
    kernel: str = "weight-update",
) -> List[Finding]:
    """Bit-compare maintained community-weight arrays against recompute.

    Recomputes ``d_comm`` / ``comm_strength`` / ``comm_size`` from scratch
    on a copy of ``state`` and demands bitwise equality
    (``np.array_equal``) with the incrementally maintained arrays — the
    delta updater is expected to be exact, not merely close, because the
    kernels' gain comparisons are bit-sensitive.
    """
    findings: List[Finding] = []
    fresh = state.copy()
    fresh.recompute_d_comm()
    fresh.refresh_community_aggregates()
    for field_name in ("d_comm", "comm_strength", "comm_size"):
        maintained = getattr(state, field_name)
        expected = getattr(fresh, field_name)
        if np.array_equal(maintained, expected):
            continue
        diff = np.flatnonzero(maintained != expected)
        findings.append(
            _f(
                "weight-conservation",
                f"{field_name} diverged from recompute at "
                f"{diff.shape[0]} position(s)",
                kernel=kernel,
                launch=iteration,
                details={
                    "field": field_name,
                    "positions": diff[:_MAX_DETAIL].tolist(),
                    "maintained": np.asarray(maintained)[
                        diff[:_MAX_DETAIL]
                    ].tolist(),
                    "expected": np.asarray(expected)[
                        diff[:_MAX_DETAIL]
                    ].tolist(),
                },
            )
        )
    return findings


# ---------------------------------------------------------------------- #
# MG pruning Lemma 5
# ---------------------------------------------------------------------- #

def audit_lemma5(
    active: np.ndarray,
    oracle_moved: np.ndarray,
    iteration: Optional[int] = None,
    strategy: str = "mg",
) -> List[Finding]:
    """Audit the pruning bound's zero-false-negative guarantee.

    ``active`` is the strategy's boolean active mask for the iteration;
    ``oracle_moved`` the boolean would-move mask from a full-set oracle
    decide over *all* vertices. Lemma 5 promises every vertex with a
    positive-gain move stays active — so any pruned (inactive) vertex the
    oracle moves is a false negative and a bound violation.
    """
    active = np.asarray(active, dtype=bool)
    oracle_moved = np.asarray(oracle_moved, dtype=bool)
    false_neg = oracle_moved & ~active
    if not bool(false_neg.any()):
        return []
    vertices = np.flatnonzero(false_neg)
    return [
        _f(
            "lemma5-false-negative",
            f"{vertices.shape[0]} pruned vertex(es) had a positive-gain "
            f"move the {strategy} bound should have kept active",
            kernel=f"pruning:{strategy}",
            launch=iteration,
            details={
                "false_negatives": int(vertices.shape[0]),
                "vertices": vertices[:_MAX_DETAIL].tolist(),
            },
        )
    ]
