"""Module-graph substrate for the static checker.

A :class:`Project` is the parsed view of one source tree: every
``repro.*`` module loaded from ``src/``, parsed with :mod:`ast`, plus
access to the repo's documentation files. Rules operate on a whole
project (several contracts span modules — a config field declared in
``core/gala.py`` must agree with ``serve/server.py``), so the engine
parses once and every rule walks the same trees.

The helpers at the bottom are the small AST vocabulary the rules share:
dotted-name resolution, string-literal extraction from container
displays, f-string collapsing (format holes become ``*``, with function
parameter defaults substituted), and parent maps for context checks
("is this call a ``with`` item?").
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple


@dataclass
class ModuleInfo:
    """One parsed source module."""

    #: dotted module name, e.g. ``repro.core.gala``
    name: str
    #: absolute path on disk
    path: Path
    #: repo-root-relative posix path, e.g. ``src/repro/core/gala.py``
    rel_path: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    _parents: Optional[Dict[ast.AST, ast.AST]] = field(
        default=None, repr=False, compare=False
    )

    def line(self, lineno: int) -> str:
        """1-indexed source line (empty string when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child → parent map over this module's AST (built lazily)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """The nearest enclosing (async) function def, or None."""
        parents = self.parents()
        cur = parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
            cur = parents.get(cur)
        return None


class Project:
    """Every parsed module of one package tree plus the repo's docs."""

    def __init__(
        self,
        package_dir: Path,
        repo_root: Optional[Path] = None,
        package: Optional[str] = None,
    ) -> None:
        self.package_dir = Path(package_dir).resolve()
        self.package = package or self.package_dir.name
        if repo_root is None:
            # conventional layout: <repo>/src/<package>
            repo_root = self.package_dir.parent.parent
        self.repo_root = Path(repo_root).resolve()
        self.modules: Dict[str, ModuleInfo] = {}
        #: files that failed to parse: (rel_path, error message)
        self.parse_errors: List[Tuple[str, str]] = []
        self._load()

    @classmethod
    def from_repo(cls, repo_root: Path) -> "Project":
        """Load the conventional ``<repo>/src/repro`` tree."""
        root = Path(repo_root).resolve()
        return cls(root / "src" / "repro", repo_root=root)

    # ------------------------------------------------------------------ #
    def _load(self) -> None:
        for path in sorted(self.package_dir.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel_to_pkg = path.relative_to(self.package_dir)
            parts = [self.package, *rel_to_pkg.parts]
            if parts[-1] == "__init__.py":
                parts = parts[:-1]
            else:
                parts[-1] = parts[-1][: -len(".py")]
            name = ".".join(parts)
            try:
                rel_path = path.relative_to(self.repo_root).as_posix()
            except ValueError:
                rel_path = path.as_posix()
            source = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                self.parse_errors.append((rel_path, str(exc)))
                continue
            self.modules[name] = ModuleInfo(
                name=name,
                path=path,
                rel_path=rel_path,
                source=source,
                tree=tree,
                lines=source.splitlines(),
            )

    # ------------------------------------------------------------------ #
    def get(self, name: str) -> Optional[ModuleInfo]:
        return self.modules.get(name)

    def __iter__(self) -> Iterator[ModuleInfo]:
        return iter(self.modules.values())

    def __len__(self) -> int:
        return len(self.modules)

    def read_doc(self, rel_path: str) -> Optional[str]:
        """A repo-root-relative text file's content, or None if absent."""
        path = self.repo_root / rel_path
        try:
            return path.read_text(encoding="utf-8")
        except OSError:
            return None


# --------------------------------------------------------------------- #
# shared AST vocabulary
# --------------------------------------------------------------------- #
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def call_func_name(call: ast.Call) -> Optional[str]:
    """The called function's dotted name (``np.sum``, ``sorted`` ...)."""
    return dotted_name(call.func)


def literal_strs(node: ast.AST) -> Optional[Set[str]]:
    """String elements of a Set/Tuple/List display (possibly wrapped in a
    ``set(...)``/``frozenset(...)``/``tuple(...)`` call); None when the
    node is not such a literal or holds non-strings."""
    if isinstance(node, ast.Call):
        fn = call_func_name(node)
        if fn in ("set", "frozenset", "tuple", "list") and len(node.args) == 1:
            return literal_strs(node.args[0])
        return None
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        out: Set[str] = set()
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.add(elt.value)
            else:
                return None
        return out
    return None


def module_constant_strs(module: ModuleInfo, name: str) -> Optional[Set[str]]:
    """Strings of a module-level ``NAME = {...}`` / tuple assignment."""
    for node in module.tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                return literal_strs(value)
    return None


def class_constant_strs(cls: ast.ClassDef, name: str) -> Optional[Set[str]]:
    """Strings of a class-level ``NAME = {...}`` assignment."""
    for node in cls.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return literal_strs(node.value)
    return None


def find_class(module: ModuleInfo, name: str) -> Optional[ast.ClassDef]:
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def dataclass_fields(cls: ast.ClassDef) -> Dict[str, int]:
    """Annotated instance fields of a dataclass body → their line numbers.

    Class-level constants (ALL_CAPS ``Assign`` statements, e.g.
    ``EXECUTION_FIELDS``) and ``ClassVar`` annotations are not fields.
    """
    fields: Dict[str, int] = {}
    for node in cls.body:
        if not isinstance(node, ast.AnnAssign):
            continue
        if not isinstance(node.target, ast.Name):
            continue
        annotation = ast.unparse(node.annotation) if node.annotation else ""
        if "ClassVar" in annotation:
            continue
        fields[node.target.id] = node.lineno
    return fields


def param_string_defaults(func: ast.AST) -> Dict[str, str]:
    """Function parameters with string defaults, e.g. ``prefix="gpusim"``."""
    out: Dict[str, str] = {}
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return out
    args = func.args
    positional = args.posonlyargs + args.args
    defaults = args.defaults
    for arg, default in zip(positional[len(positional) - len(defaults):], defaults):
        if isinstance(default, ast.Constant) and isinstance(default.value, str):
            out[arg.arg] = default.value
    for arg_kw, default_kw in zip(args.kwonlyargs, args.kw_defaults):
        if (
            default_kw is not None
            and isinstance(default_kw, ast.Constant)
            and isinstance(default_kw.value, str)
        ):
            out[arg_kw.arg] = default_kw.value
    return out


def param_names(func: ast.AST) -> Set[str]:
    """All parameter names of a function def."""
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return set()
    args = func.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def collapse_fstring(
    node: ast.JoinedStr, substitutions: Optional[Dict[str, str]] = None
) -> str:
    """An f-string as a metric-name pattern: holes become ``*``.

    A hole that is a bare name found in ``substitutions`` (function
    parameters with string defaults — the bridge-method ``prefix``
    idiom) is replaced by its default instead, so
    ``f"{prefix}/cycles/{bucket}"`` inside
    ``def bridge(..., prefix="gpusim")`` collapses to
    ``gpusim/cycles/*``. Consecutive holes merge into one ``*``.
    """
    substitutions = substitutions or {}
    parts: List[str] = []
    for value in node.values:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            parts.append(value.value)
        elif isinstance(value, ast.FormattedValue):
            inner = value.value
            if (
                isinstance(inner, ast.Name)
                and inner.id in substitutions
            ):
                parts.append(substitutions[inner.id])
            else:
                if not parts or parts[-1] != "*":
                    parts.append("*")
        else:  # pragma: no cover - no other JoinedStr pieces exist
            if not parts or parts[-1] != "*":
                parts.append("*")
    return "".join(parts)


def string_arg(
    call: ast.Call, substitutions: Optional[Dict[str, str]] = None
) -> Optional[str]:
    """First positional argument as a (possibly collapsed) string."""
    if not call.args:
        return None
    arg = call.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.JoinedStr):
        return collapse_fstring(arg, substitutions)
    return None
