"""repro-lint: AST-based invariant checking for repo-level contracts.

The runtime sanitizers in :mod:`repro.analysis` catch contract
violations while code executes; this package catches a complementary
class *before* anything runs, by parsing ``src/`` and checking
invariants that live across files:

* ``config-classification`` — every ``GalaConfig`` field is declared
  semantic (in the cache key) or execution-only, and the serve layer
  agrees with the classification;
* ``determinism`` — no unseeded/time-seeded RNGs and no unordered-
  container iteration feeding data in the hot-path packages;
* ``metric-names`` — every emitted metric name comes from the
  :mod:`repro.obs.names` registry, every registry entry is live, and
  the docs mention all of them;
* ``protocol-coverage`` — every JSONL op has a server handler, a
  client method, and documentation (and nothing undeclared);
* ``float-accumulation`` — modules declaring ``__bitexact__ = True``
  only reduce floats through sanctioned fixed-order helpers;
* ``span-pairing`` — tracer spans are context-managed, never manually
  ``__enter__``-ed.

Findings are the same :class:`~repro.analysis.findings.Finding` records
the runtime sanitizers emit (``checker="staticcheck"``), so they flow
into :class:`~repro.analysis.findings.FindingLog`, obs metrics, run
manifests, and ``repro report`` unchanged. The ``repro lint`` CLI (and
the CI ``lint-invariants`` job) exits 3 when unwaived findings remain;
see docs/static_analysis.md.
"""

from __future__ import annotations

from repro.analysis.staticcheck.engine import (
    DEFAULT_WAIVER_FILE,
    LintReport,
    describe_rules,
    run_staticcheck,
)
from repro.analysis.staticcheck.project import ModuleInfo, Project
from repro.analysis.staticcheck.rules import all_rules, get_rule, lint_finding
from repro.analysis.staticcheck.waivers import (
    WAIVER_SCHEMA_VERSION,
    Waiver,
    WaiverFile,
    WaiverFormatError,
    inline_waiver,
)

__all__ = [
    "DEFAULT_WAIVER_FILE",
    "WAIVER_SCHEMA_VERSION",
    "LintReport",
    "ModuleInfo",
    "Project",
    "Waiver",
    "WaiverFile",
    "WaiverFormatError",
    "all_rules",
    "describe_rules",
    "get_rule",
    "inline_waiver",
    "lint_finding",
    "run_staticcheck",
]
