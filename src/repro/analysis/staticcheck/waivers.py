"""Waivers: the audited escape hatch for static-check findings.

Two mechanisms, both deliberate and reviewable:

* **Inline waivers** — a ``# lint: allow[<rule>]`` comment on (or
  immediately above) the offending line. Good for single-site
  exceptions where the justification fits in the surrounding code.
* **A waiver file** — JSON (default ``lint-waivers.json`` at the repo
  root) carrying structured waivers with a mandatory reason and an
  optional expiry date. Good for batch or cross-file exceptions that
  need an owner and a deadline.

Waivers never delete findings: a waived finding is still reported (and
counted in the manifest payload), it just does not fail ``repro lint``.
Expired waivers and waivers that no longer match anything become
findings themselves (``expired-waiver`` / ``stale-waiver``), so the
escape hatch cannot silently rot.
"""

from __future__ import annotations

import datetime as _dt
import fnmatch
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.findings import Finding

#: waiver-file schema version (bump on incompatible changes)
WAIVER_SCHEMA_VERSION = 1

#: inline waiver marker: ``# lint: allow[rule-name]``
_INLINE_RE = re.compile(r"#\s*lint:\s*allow\[([a-z0-9_*-]+)\]")


class WaiverFormatError(ValueError):
    """Raised when a waiver file cannot be parsed or fails validation."""


@dataclass
class Waiver:
    """One structured waiver from the waiver file."""

    #: rule name the waiver applies to (``*`` waives any rule)
    rule: str
    #: glob matched against the finding's repo-relative path
    path: str
    #: mandatory human justification
    reason: str
    #: substring that must occur in the finding message ("" matches all)
    contains: str = ""
    #: optional ISO date (``YYYY-MM-DD``); the waiver stops applying
    #: after this date and is reported as ``expired-waiver``
    expires: Optional[str] = None
    #: bookkeeping: how many findings this waiver matched in one run
    hits: int = field(default=0, compare=False)

    def expired(self, today: Optional[_dt.date] = None) -> bool:
        if self.expires is None:
            return False
        today = today or _dt.date.today()
        return today > _dt.date.fromisoformat(self.expires)

    def matches(self, finding: Finding) -> bool:
        if self.rule != "*" and finding.details.get("rule") != self.rule:
            return False
        path = str(finding.details.get("path") or finding.kernel or "")
        if not fnmatch.fnmatch(path, self.path):
            return False
        if self.contains and self.contains not in finding.message:
            return False
        return True

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "rule": self.rule,
            "path": self.path,
            "reason": self.reason,
        }
        if self.contains:
            out["contains"] = self.contains
        if self.expires is not None:
            out["expires"] = self.expires
        return out


@dataclass
class WaiverFile:
    """The parsed waiver file."""

    waivers: List[Waiver] = field(default_factory=list)
    version: int = WAIVER_SCHEMA_VERSION
    source: Optional[str] = None

    @classmethod
    def load(cls, path: Path) -> "WaiverFile":
        try:
            raw = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise WaiverFormatError(f"{path}: invalid JSON: {exc}") from exc
        return cls.from_dict(raw, source=str(path))

    @classmethod
    def from_dict(
        cls, raw: Dict[str, Any], source: Optional[str] = None
    ) -> "WaiverFile":
        if not isinstance(raw, dict):
            raise WaiverFormatError("waiver file must be a JSON object")
        version = raw.get("version")
        if version != WAIVER_SCHEMA_VERSION:
            raise WaiverFormatError(
                f"unsupported waiver schema version {version!r} "
                f"(expected {WAIVER_SCHEMA_VERSION})"
            )
        entries = raw.get("waivers", [])
        if not isinstance(entries, list):
            raise WaiverFormatError("'waivers' must be a list")
        waivers: List[Waiver] = []
        for i, entry in enumerate(entries):
            if not isinstance(entry, dict):
                raise WaiverFormatError(f"waiver #{i} is not an object")
            missing = {"rule", "path", "reason"} - set(entry)
            if missing:
                raise WaiverFormatError(
                    f"waiver #{i} missing field(s): {sorted(missing)}"
                )
            if not str(entry["reason"]).strip():
                raise WaiverFormatError(f"waiver #{i} has an empty reason")
            expires = entry.get("expires")
            if expires is not None:
                try:
                    _dt.date.fromisoformat(str(expires))
                except ValueError as exc:
                    raise WaiverFormatError(
                        f"waiver #{i} has a bad expires date {expires!r}"
                    ) from exc
            waivers.append(
                Waiver(
                    rule=str(entry["rule"]),
                    path=str(entry["path"]),
                    reason=str(entry["reason"]),
                    contains=str(entry.get("contains", "")),
                    expires=None if expires is None else str(expires),
                )
            )
        return cls(waivers=waivers, version=int(version), source=source)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "waivers": [w.as_dict() for w in self.waivers],
        }

    def save(self, path: Path) -> None:
        Path(path).write_text(
            json.dumps(self.as_dict(), indent=2) + "\n", encoding="utf-8"
        )

    # ------------------------------------------------------------------ #
    def apply(
        self,
        findings: List[Finding],
        today: Optional[_dt.date] = None,
    ) -> Tuple[List[Finding], List[Tuple[Finding, str]], List[Finding]]:
        """Partition findings into (unwaived, waived, waiver_findings).

        ``waived`` pairs each suppressed finding with the waiver reason.
        ``waiver_findings`` are problems with the waiver file itself:
        expired waivers that still match something, and stale waivers
        that match nothing at all.
        """
        unwaived: List[Finding] = []
        waived: List[Tuple[Finding, str]] = []
        for w in self.waivers:
            w.hits = 0
        expired_hit: Dict[int, int] = {}
        for finding in findings:
            suppressed = False
            for idx, waiver in enumerate(self.waivers):
                if not waiver.matches(finding):
                    continue
                if waiver.expired(today):
                    expired_hit[idx] = expired_hit.get(idx, 0) + 1
                    continue
                waiver.hits += 1
                waived.append((finding, waiver.reason))
                suppressed = True
                break
            if not suppressed:
                unwaived.append(finding)

        waiver_findings: List[Finding] = []
        for idx, waiver in enumerate(self.waivers):
            where = self.source or "<waivers>"
            if idx in expired_hit:
                waiver_findings.append(
                    Finding(
                        checker="staticcheck",
                        kind="expired-waiver",
                        message=(
                            f"waiver #{idx} (rule={waiver.rule}, "
                            f"path={waiver.path}) expired {waiver.expires} "
                            f"but still matches {expired_hit[idx]} finding(s)"
                        ),
                        kernel=where,
                        details={"rule": "waivers", "path": where},
                    )
                )
            elif waiver.hits == 0:
                waiver_findings.append(
                    Finding(
                        checker="staticcheck",
                        kind="stale-waiver",
                        message=(
                            f"waiver #{idx} (rule={waiver.rule}, "
                            f"path={waiver.path}) matches no finding — "
                            "delete it or fix its pattern"
                        ),
                        kernel=where,
                        details={"rule": "waivers", "path": where},
                    )
                )
        return unwaived, waived, waiver_findings


def inline_waiver(line: str, prev_line: str, rule: str) -> bool:
    """True when the line (or the one above) carries a matching
    ``# lint: allow[<rule>]`` marker."""
    for text in (line, prev_line):
        for match in _INLINE_RE.finditer(text):
            if match.group(1) in (rule, "*"):
                return True
    return False
