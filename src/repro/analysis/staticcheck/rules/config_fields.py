"""Rule ``config-classification``: every config field is deliberately
semantic or execution-only, and the serve layer agrees.

The cache-correctness contract (docs/serving.md): ``GalaConfig`` fields
either change *what* a run computes (``SEMANTIC_FIELDS`` — serialized by
``cache_key()``), select *how* it executes (``EXECUTION_FIELDS`` — every
choice bit-identical, excluded from the key), or are ``seed`` (keyed
separately by the result cache). A new field outside the classification
would silently join the cache key, forking caches for configs that
compute the same answer — or worse, a field wrongly marked execution
would alias different answers under one key.

Checks, all static:

* ``GalaConfig`` declares both ``SEMANTIC_FIELDS`` and
  ``EXECUTION_FIELDS`` as literal sets;
* the two sets are disjoint, cover every dataclass field (modulo
  ``seed``), and contain no stale names;
* every ``Phase1Config`` field maps to a ``GalaConfig`` field (modulo
  the declared measurement-only extras);
* ``serve/server.py`` only injects *execution* defaults into detect
  configs (``self._config_defaults[...]`` keys ⊆ ``EXECUTION_FIELDS``);
* ``serve/cache.py`` builds keys via ``.cache_key()`` (no ad-hoc
  serialization);
* ``serve/protocol.py`` keeps the unknown-config-field guard, so a
  client cannot smuggle an unclassified field past the classification.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.findings import Finding
from repro.analysis.staticcheck.project import (
    Project,
    class_constant_strs,
    dataclass_fields,
    dotted_name,
    find_class,
)
from repro.analysis.staticcheck.rules import lint_finding, rule

RULE = "config-classification"

GALA_MODULE = "repro.core.gala"
PHASE1_MODULE = "repro.core.phase1"
SERVER_MODULE = "repro.serve.server"
CACHE_MODULE = "repro.serve.cache"
PROTOCOL_MODULE = "repro.serve.protocol"

#: Phase1Config fields with no GalaConfig counterpart, by design:
#: ``oracle`` is a measurement-only instrument (exhaustive pruning
#: oracle for Lemma-5 audits), never part of the public config surface.
PHASE1_EXTRA_FIELDS: Set[str] = {"oracle"}


@rule(
    RULE,
    "GalaConfig fields classified semantic/execution; serve layer agrees",
)
def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    gala = project.get(GALA_MODULE)
    if gala is None:
        return findings  # nothing to check against in a partial tree

    cls = find_class(gala, "GalaConfig")
    if cls is None:
        findings.append(
            lint_finding(
                RULE,
                "missing-classification",
                "repro.core.gala defines no GalaConfig class",
                gala,
                1,
            )
        )
        return findings

    fields = dataclass_fields(cls)
    semantic = class_constant_strs(cls, "SEMANTIC_FIELDS")
    execution = class_constant_strs(cls, "EXECUTION_FIELDS")
    for const_name, value in (
        ("SEMANTIC_FIELDS", semantic),
        ("EXECUTION_FIELDS", execution),
    ):
        if value is None:
            findings.append(
                lint_finding(
                    RULE,
                    "missing-classification",
                    f"GalaConfig must declare {const_name} as a literal "
                    "set of field names",
                    gala,
                    cls.lineno,
                )
            )
    if semantic is None or execution is None:
        return findings

    overlap = semantic & execution
    for name in sorted(overlap):
        findings.append(
            lint_finding(
                RULE,
                "ambiguous-config-field",
                f"GalaConfig.{name} is listed in both SEMANTIC_FIELDS and "
                "EXECUTION_FIELDS — a field is one or the other",
                gala,
                fields.get(name, cls.lineno),
                field=name,
            )
        )
    for name, lineno in sorted(fields.items()):
        if name == "seed" or name in semantic or name in execution:
            continue
        findings.append(
            lint_finding(
                RULE,
                "unclassified-config-field",
                f"GalaConfig.{name} is neither in SEMANTIC_FIELDS nor "
                "EXECUTION_FIELDS — decide whether it changes the answer "
                "(cache key) or only the execution",
                gala,
                lineno,
                field=name,
            )
        )
    for name in sorted((semantic | execution) - set(fields)):
        findings.append(
            lint_finding(
                RULE,
                "stale-config-classification",
                f"{name!r} is classified but is not a GalaConfig field — "
                "remove it from the classification sets",
                gala,
                cls.lineno,
                field=name,
            )
        )

    findings.extend(_check_phase1(project, set(fields)))
    findings.extend(_check_server_defaults(project, execution))
    findings.extend(_check_cache_key_usage(project))
    findings.extend(_check_protocol_guard(project))
    return findings


def _check_phase1(project: Project, gala_fields: Set[str]) -> List[Finding]:
    findings: List[Finding] = []
    phase1 = project.get(PHASE1_MODULE)
    if phase1 is None:
        return findings
    cls = find_class(phase1, "Phase1Config")
    if cls is None:
        return findings
    for name, lineno in sorted(dataclass_fields(cls).items()):
        if name in gala_fields or name in PHASE1_EXTRA_FIELDS:
            continue
        findings.append(
            lint_finding(
                RULE,
                "unmapped-phase1-field",
                f"Phase1Config.{name} has no GalaConfig counterpart and is "
                "not a declared measurement-only extra — it would be "
                "unreachable from the public config (and invisible to "
                "cache keys)",
                phase1,
                lineno,
                field=name,
            )
        )
    return findings


def _check_server_defaults(
    project: Project, execution: Set[str]
) -> List[Finding]:
    """``self._config_defaults["x"] = ...`` keys must be execution-only."""
    findings: List[Finding] = []
    server = project.get(SERVER_MODULE)
    if server is None:
        return findings
    for node in ast.walk(server.tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            key = _config_defaults_key(target)
            if key is None or key in execution:
                continue
            findings.append(
                lint_finding(
                    RULE,
                    "semantic-server-default",
                    f"server injects default for {key!r}, which is not in "
                    "EXECUTION_FIELDS — a server-side semantic default "
                    "would fork results from what clients asked for",
                    server,
                    node.lineno,
                    field=key,
                )
            )
    return findings


def _config_defaults_key(target: ast.expr) -> Optional[str]:
    if not isinstance(target, ast.Subscript):
        return None
    base = dotted_name(target.value)
    if base is None or not base.endswith("_config_defaults"):
        return None
    sl = target.slice
    if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
        return sl.value
    return "<dynamic>"


def _check_cache_key_usage(project: Project) -> List[Finding]:
    """ResultCache.key must route through ``config.cache_key()``."""
    findings: List[Finding] = []
    cache = project.get(CACHE_MODULE)
    if cache is None:
        return findings
    cls = find_class(cache, "ResultCache")
    if cls is None:
        return findings
    key_fn = next(
        (
            n
            for n in cls.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            and n.name == "key"
        ),
        None,
    )
    if key_fn is None:
        return findings
    calls_cache_key = any(
        isinstance(n, ast.Call)
        and isinstance(n.func, ast.Attribute)
        and n.func.attr == "cache_key"
        for n in ast.walk(key_fn)
    )
    if not calls_cache_key:
        findings.append(
            lint_finding(
                RULE,
                "cache-key-bypass",
                "ResultCache.key does not call config.cache_key() — ad-hoc "
                "key construction bypasses the semantic/execution "
                "classification",
                cache,
                key_fn.lineno,
            )
        )
    return findings


def _check_protocol_guard(project: Project) -> List[Finding]:
    """parse_detect_config must reject unknown config fields."""
    findings: List[Finding] = []
    protocol = project.get(PROTOCOL_MODULE)
    if protocol is None:
        return findings
    parse_fn = next(
        (
            n
            for n in protocol.tree.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            and n.name == "parse_detect_config"
        ),
        None,
    )
    if parse_fn is None:
        findings.append(
            lint_finding(
                RULE,
                "missing-unknown-field-guard",
                "repro.serve.protocol defines no parse_detect_config — the "
                "wire boundary must validate config fields",
                protocol,
                1,
            )
        )
        return findings
    guarded = False
    for node in ast.walk(parse_fn):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        for const in ast.walk(node.exc):
            if (
                isinstance(const, ast.Constant)
                and isinstance(const.value, str)
                and "unknown config field" in const.value
            ):
                guarded = True
    if not guarded:
        findings.append(
            lint_finding(
                RULE,
                "missing-unknown-field-guard",
                "parse_detect_config does not raise on unknown config "
                "fields — clients could smuggle unclassified fields past "
                "the cache-key classification",
                protocol,
                parse_fn.lineno,
            )
        )
    return findings
