"""Rule ``float-accumulation``: bit-exact modules don't free-hand sums.

Modules that opt in with a module-level ``__bitexact__ = True`` declare
that their floating-point results must be bit-identical across kernels,
backends, and rank counts. Summation order is the classic way to break
that promise — ``np.sum`` may pairwise-split differently across dtypes
and builds, and a loop-carried ``+=`` encodes whatever order the loop
happens to visit.

Inside opted-in modules the rule flags:

* ``<anything>.sum(...)`` / ``np.sum`` / ``np.nansum`` / builtin
  ``sum`` calls;
* ``+=`` / ``-=`` on subscripted targets inside ``for``/``while``
  loops (loop-carried accumulation).

Sanctioned escape hatches: route the reduction through
``repro.utils.arrays.ordered_sum`` (the documented fixed-order helper),
or annotate the site with ``# lint: allow[float-accumulation]`` and a
justification — e.g. ``np.add.at`` scatter-adds whose order is pinned
by a sorted index array.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.findings import Finding
from repro.analysis.staticcheck.project import (
    ModuleInfo,
    Project,
    call_func_name,
)
from repro.analysis.staticcheck.rules import lint_finding, rule

RULE = "float-accumulation"

#: dotted callables that perform an order-unspecified reduction
_BARE_REDUCERS = {"np.sum", "numpy.sum", "np.nansum", "numpy.nansum", "sum"}

#: the sanctioned fixed-order reduction helper
SANCTIONED = ("ordered_sum", "arrays.ordered_sum")


def declares_bitexact(module: ModuleInfo) -> bool:
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "__bitexact__"
                    and isinstance(node.value, ast.Constant)
                    and node.value.value is True
                ):
                    return True
    return False


@rule(RULE, "no order-unspecified float reductions in bit-exact modules")
def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for module in project:
        if not declares_bitexact(module):
            continue
        loop_linenos = _loop_body_lines(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                findings.extend(_check_call(module, node))
            elif isinstance(node, ast.AugAssign):
                findings.extend(_check_augassign(module, node, loop_linenos))
    return findings


def _check_call(module: ModuleInfo, call: ast.Call) -> List[Finding]:
    name = call_func_name(call)
    is_method_sum = (
        isinstance(call.func, ast.Attribute) and call.func.attr == "sum"
    )
    if name in _BARE_REDUCERS or (is_method_sum and name not in SANCTIONED):
        what = name or ".sum()"
        return [
            lint_finding(
                RULE,
                "bare-float-accumulation",
                f"{what} in a __bitexact__ module — reduction order is "
                "unspecified; use repro.utils.arrays.ordered_sum or waive "
                "with a justification",
                module,
                call.lineno,
            )
        ]
    return []


def _loop_body_lines(module: ModuleInfo) -> "set[int]":
    lines: "set[int]" = set()
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.For, ast.While)):
            end = getattr(node, "end_lineno", node.lineno) or node.lineno
            lines.update(range(node.lineno, end + 1))
    return lines


def _check_augassign(
    module: ModuleInfo, node: ast.AugAssign, loop_linenos: "set[int]"
) -> List[Finding]:
    if not isinstance(node.op, (ast.Add, ast.Sub)):
        return []
    if node.lineno not in loop_linenos:
        return []
    if not isinstance(node.target, ast.Subscript):
        # scalar += inside a loop is sequential and deterministic;
        # the hazard is element-wise accumulation into arrays whose
        # visit order the loop controls
        return []
    return [
        lint_finding(
            RULE,
            "loop-carried-accumulation",
            "loop-carried '+='/'-=' into a subscripted target in a "
            "__bitexact__ module — the loop's visit order becomes part of "
            "the result; accumulate via a fixed-order helper or waive",
            module,
            node.lineno,
        )
    ]
