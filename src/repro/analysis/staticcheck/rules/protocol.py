"""Rule ``protocol-coverage``: every JSONL op is fully wired.

``repro.serve.protocol.KNOWN_OPS`` is the wire contract. For each op the
serving stack must provide all four legs, and nothing beyond them:

* a **server handler** — an ``op == "<name>"`` dispatch arm in
  ``repro.serve.server``;
* a **client method** — some ``repro.serve.client`` call site building a
  ``{"op": "<name>", ...}`` request dict;
* a **docs/api.md mention** — the op name in backticks;
* a **docs/serving.md mention** — same, the protocol reference table.

The reverse holds too: a dispatch arm or client request for an op that
is *not* in ``KNOWN_OPS`` is an undeclared extension of the wire
protocol (``undeclared-op``). Together the checks make "add an op"
atomic — declare it, handle it, expose it, document it — and make
"remove an op" leave no dead arms behind (``unknown-op-handler``).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List

from repro.analysis.findings import Finding
from repro.analysis.staticcheck.project import (
    ModuleInfo,
    Project,
    module_constant_strs,
)
from repro.analysis.staticcheck.rules import lint_finding, rule

RULE = "protocol-coverage"

PROTOCOL_MODULE = "repro.serve.protocol"
SERVER_MODULE = "repro.serve.server"
CLIENT_MODULE = "repro.serve.client"
DOC_FILES = ("docs/api.md", "docs/serving.md")


@rule(RULE, "every JSONL op has a handler, a client method, and docs")
def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    protocol = project.get(PROTOCOL_MODULE)
    if protocol is None:
        return findings
    known = module_constant_strs(protocol, "KNOWN_OPS")
    if known is None:
        findings.append(
            lint_finding(
                RULE,
                "missing-op-registry",
                f"{PROTOCOL_MODULE} must declare KNOWN_OPS as a literal "
                "tuple of op names",
                protocol,
                1,
            )
        )
        return findings

    server = project.get(SERVER_MODULE)
    client = project.get(CLIENT_MODULE)
    handled = _handler_ops(server) if server is not None else {}
    requested = _client_ops(client) if client is not None else {}

    for op in sorted(known):
        if server is not None and op not in handled:
            findings.append(
                lint_finding(
                    RULE,
                    "unhandled-op",
                    f"op {op!r} is in KNOWN_OPS but {SERVER_MODULE} has no "
                    'dispatch arm (`op == "' + op + '"`) for it',
                    server,
                    1,
                    op=op,
                )
            )
        if client is not None and op not in requested:
            findings.append(
                lint_finding(
                    RULE,
                    "missing-client-method",
                    f"op {op!r} is in KNOWN_OPS but {CLIENT_MODULE} never "
                    "builds a request for it — the op is unreachable from "
                    "the public client",
                    client,
                    1,
                    op=op,
                )
            )
    for op, lineno in sorted(handled.items()):
        if op not in known:
            findings.append(
                lint_finding(
                    RULE,
                    "unknown-op-handler",
                    f"server dispatches op {op!r} which is not declared in "
                    "KNOWN_OPS — dead arm or undeclared protocol extension",
                    server,  # type: ignore[arg-type]
                    lineno,
                    op=op,
                )
            )
    for op, lineno in sorted(requested.items()):
        if op not in known:
            findings.append(
                lint_finding(
                    RULE,
                    "undeclared-op",
                    f"client sends op {op!r} which is not declared in "
                    "KNOWN_OPS — the server will reject it",
                    client,  # type: ignore[arg-type]
                    lineno,
                    op=op,
                )
            )

    for doc in DOC_FILES:
        text = project.read_doc(doc)
        if text is None:
            findings.append(
                lint_finding(
                    RULE,
                    "missing-doc-file",
                    f"protocol doc file {doc!r} does not exist",
                    protocol,
                    1,
                )
            )
            continue
        for op in sorted(known):
            if not re.search(rf"`{re.escape(op)}`", text):
                findings.append(
                    lint_finding(
                        RULE,
                        "undocumented-op",
                        f"op {op!r} is in KNOWN_OPS but {doc} never "
                        f"mentions `{op}` — document the op where clients "
                        "will look for it",
                        protocol,
                        1,
                        op=op,
                        doc=doc,
                    )
                )
    return findings


# --------------------------------------------------------------------- #
def _handler_ops(module: ModuleInfo) -> Dict[str, int]:
    """ops compared against a name ending in ``op`` → first lineno."""
    out: Dict[str, int] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not (
            isinstance(node.left, ast.Name)
            and node.left.id == "op"
            and len(node.ops) == 1
            and isinstance(node.ops[0], ast.Eq)
        ):
            continue
        comparator = node.comparators[0]
        if isinstance(comparator, ast.Constant) and isinstance(
            comparator.value, str
        ):
            out.setdefault(comparator.value, node.lineno)
    return out


def _client_ops(module: ModuleInfo) -> Dict[str, int]:
    """ops appearing as ``{"op": "<name>", ...}`` dict literals."""
    out: Dict[str, int] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Dict):
            continue
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "op"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                out.setdefault(value.value, node.lineno)
    return out
