"""Rule ``determinism``: no nondeterminism sources in hot-path modules.

The repo's reproducibility contract: every detection path is bit-exact
given ``(graph, config, seed)`` — across kernels, backends, runtimes,
and rank counts. That only holds if the hot-path packages never consult
an unseeded RNG, never seed from wall-clock time, and never let the
iteration order of an unordered container (``set``, ``dict.keys()``)
leak into array contents.

Flagged inside :data:`SCOPES` (``core``/``gpusim``/``multiprocess``/
``distributed``):

* ``np.random.default_rng()`` / ``random.Random()`` with no arguments,
  calls on the *global* RNGs (``np.random.shuffle``,
  ``random.random``, ...), and ``np.random.seed`` (global-state
  seeding orders runs, not calls);
* seeding from time (``default_rng(time.time_ns())`` and friends);
* iterating a ``set`` display / ``set(...)``-``frozenset(...)`` call in
  a ``for`` statement or comprehension;
* feeding a set or ``.keys()``/``.values()`` view directly to an array
  constructor (``np.array``, ``np.asarray``, ``np.fromiter``,
  ``list``, ``tuple``).

The fix is always the same: thread a seeded ``Generator`` through, or
wrap the unordered source in ``sorted(...)`` before it touches data.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.findings import Finding
from repro.analysis.staticcheck.project import (
    ModuleInfo,
    Project,
    call_func_name,
    dotted_name,
)
from repro.analysis.staticcheck.rules import lint_finding, rule

RULE = "determinism"

#: module-name prefixes under the reproducibility contract
SCOPES = (
    "repro.core",
    "repro.gpusim",
    "repro.multiprocess",
    "repro.distributed",
)

#: methods of the *global* numpy RNG — calling them at all is a
#: violation (module-level state is seeded by run order, not by config)
_NP_GLOBAL_SAMPLERS = {
    "rand",
    "randn",
    "random",
    "randint",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "standard_normal",
    "binomial",
    "poisson",
    "seed",
}

#: module-level functions of stdlib :mod:`random` (the hidden global
#: ``Random`` instance)
_STDLIB_SAMPLERS = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "seed",
    "betavariate",
    "expovariate",
}

_TIME_SOURCES = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.now",
    "datetime.datetime.now",
    "datetime.utcnow",
}

_ARRAY_CONSTRUCTORS = {
    "np.array",
    "np.asarray",
    "np.fromiter",
    "numpy.array",
    "numpy.asarray",
    "numpy.fromiter",
    "list",
    "tuple",
}


def in_scope(module: ModuleInfo) -> bool:
    return any(
        module.name == scope or module.name.startswith(scope + ".")
        for scope in SCOPES
    )


@rule(RULE, "no unseeded/time-seeded RNGs or unordered-container data flow")
def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for module in project:
        if not in_scope(module):
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                findings.extend(_check_rng_call(module, node))
                findings.extend(_check_array_call(module, node))
            elif isinstance(node, ast.For):
                findings.extend(
                    _check_unordered_iter(module, node.iter, node.lineno)
                )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    findings.extend(
                        _check_unordered_iter(module, gen.iter, node.lineno)
                    )
    return findings


# --------------------------------------------------------------------- #
def _check_rng_call(module: ModuleInfo, call: ast.Call) -> List[Finding]:
    name = call_func_name(call)
    if name is None:
        return []
    out: List[Finding] = []

    def flag(message: str) -> None:
        out.append(
            lint_finding(RULE, "unseeded-rng", message, module, call.lineno)
        )

    if name in ("np.random.default_rng", "numpy.random.default_rng"):
        if not call.args and not call.keywords:
            flag(
                "np.random.default_rng() without a seed draws OS entropy — "
                "thread the config seed through instead"
            )
        else:
            out.extend(_check_time_seed(module, call))
    elif name in ("random.Random", "np.random.RandomState",
                  "numpy.random.RandomState"):
        if not call.args and not call.keywords:
            flag(f"{name}() without a seed is nondeterministic")
        else:
            out.extend(_check_time_seed(module, call))
    elif name.startswith(("np.random.", "numpy.random.")):
        attr = name.rsplit(".", 1)[1]
        if attr in _NP_GLOBAL_SAMPLERS:
            flag(
                f"{name}() uses numpy's module-global RNG — results depend "
                "on call order across the whole process; use a seeded "
                "Generator"
            )
    elif name.startswith("random.") and name.count(".") == 1:
        attr = name.split(".", 1)[1]
        if attr in _STDLIB_SAMPLERS and _imports_stdlib_random(module):
            flag(
                f"{name}() uses the stdlib module-global RNG — use a "
                "seeded random.Random or numpy Generator"
            )
    return out


def _check_time_seed(module: ModuleInfo, call: ast.Call) -> List[Finding]:
    """``default_rng(time.time_ns())``-style seeding is still nondeterministic."""
    out: List[Finding] = []
    args: List[ast.expr] = list(call.args)
    args.extend(kw.value for kw in call.keywords)
    for arg in args:
        for sub in ast.walk(arg):
            if not isinstance(sub, ast.Call):
                continue
            sub_name = call_func_name(sub)
            if sub_name in _TIME_SOURCES:
                out.append(
                    lint_finding(
                        RULE,
                        "time-seeded-rng",
                        f"RNG seeded from {sub_name}() — wall-clock seeding "
                        "is unreproducible; derive the seed from config",
                        module,
                        call.lineno,
                    )
                )
    return out


def _imports_stdlib_random(module: ModuleInfo) -> bool:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" and alias.asname is None:
                    return True
    return False


# --------------------------------------------------------------------- #
def _unordered_source(node: ast.expr) -> Optional[str]:
    """A description of why ``node`` iterates in unordered fashion."""
    if isinstance(node, ast.Set):
        return "a set display"
    if isinstance(node, ast.Call):
        fn = call_func_name(node)
        if fn in ("set", "frozenset"):
            return f"{fn}(...)"
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "keys",
            "values",
        ):
            base = dotted_name(node.func.value) or "<expr>"
            return f"{base}.{node.func.attr}()"
    return None


def _check_unordered_iter(
    module: ModuleInfo, iter_node: ast.expr, lineno: int
) -> List[Finding]:
    source = _unordered_source(iter_node)
    # .keys()/.values() views iterate in insertion order (dicts are
    # ordered); only set iteration is hash-order here.
    if source is None or ".keys()" in source or ".values()" in source:
        return []
    return [
        lint_finding(
            RULE,
            "unordered-iteration",
            f"iterating {source} — set iteration order is hash-seeded; "
            "wrap in sorted(...) before the order can reach data",
            module,
            lineno,
        )
    ]


def _check_array_call(module: ModuleInfo, call: ast.Call) -> List[Finding]:
    fn = call_func_name(call)
    if fn not in _ARRAY_CONSTRUCTORS or not call.args:
        return []
    source = _unordered_source(call.args[0])
    if source is None:
        return []
    # dict views feeding array constructors ARE flagged: even though
    # dict order is deterministic per-process, it encodes insertion
    # history, which differs across runtimes/rank counts — hot-path
    # arrays must come from explicitly ordered sources.
    return [
        lint_finding(
            RULE,
            "unordered-to-array",
            f"{fn}({source}) builds an array from an unordered/"
            "insertion-ordered view — sort first so array contents are "
            "a pure function of the inputs",
            module,
            call.lineno,
        )
    ]
