"""Rule ``span-pairing``: trace spans are context-managed.

A span opened with ``span.__enter__()`` and closed by hand is exactly
the bug class the tracer's nesting model cannot survive: any exception
(or early ``return``/``break``) between enter and exit leaves the span
open, corrupting the parent stack for every span that follows and
under-reporting the phase time the docs promise.

The rule finds every ``<receiver>.span(...)`` call and accepts it only
when:

* it is the context expression of a ``with`` item (directly, or via
  ``contextlib`` wrappers like ``ExitStack.enter_context(...)``), or
* it is assigned to a name that appears as a ``with`` context in the
  same function (the ``s = tr.span(...); with s: ...`` idiom), or
* it is returned/yielded from a function itself named ``span`` (the
  ``repro.obs.span`` facade forwarding to the session tracer).

Explicit ``.__enter__()`` / ``.__exit__()`` attribute access on any
name bound from a ``.span(...)`` call is flagged directly.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.findings import Finding
from repro.analysis.staticcheck.project import ModuleInfo, Project
from repro.analysis.staticcheck.rules import lint_finding, rule

RULE = "span-pairing"


@rule(RULE, "tracer spans only used via with-blocks (no manual __enter__)")
def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for module in project:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
            ):
                if not _acceptable(module, node):
                    findings.append(
                        lint_finding(
                            RULE,
                            "unmanaged-span",
                            "span opened outside a with-block — an "
                            "exception between enter and exit corrupts "
                            "the tracer's nesting; use `with ....span(...)` "
                            "(or bind it and `with` it in the same "
                            "function)",
                            module,
                            node.lineno,
                        )
                    )
    return findings


def _acceptable(module: ModuleInfo, call: ast.Call) -> bool:
    parents = module.parents()
    parent = parents.get(call)

    # with tr.span(...):  — directly a with item
    if isinstance(parent, ast.withitem):
        return True
    # stack.enter_context(tr.span(...)) — contextlib management
    if (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Attribute)
        and parent.func.attr == "enter_context"
    ):
        return True

    func = module.enclosing_function(call)

    # return tr.span(...) inside the obs facade `def span(...)`
    if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
        if (
            isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
            and func.name == "span"
        ):
            return True
        return False

    # name = tr.span(...); ... with name: — bound then context-managed
    if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
        target = parent.targets[0]
        if isinstance(target, ast.Name) and func is not None:
            return target.id in _with_context_names(func)
    return False


def _with_context_names(func: ast.AST) -> Set[str]:
    """Names used as ``with <name>:`` context expressions in ``func``."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Name):
                    names.add(item.context_expr.id)
    return names
