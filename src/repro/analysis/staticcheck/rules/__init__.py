"""Rule registry for the static checker.

A rule is a function ``(Project) -> List[Finding]`` registered under a
stable kebab-case name with the :func:`rule` decorator. The engine runs
every registered rule (or a requested subset) over one parsed
:class:`~repro.analysis.staticcheck.project.Project`.

Rule modules self-register on import; the imports at the bottom of this
file are what populate the registry.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.analysis.findings import Finding
from repro.analysis.staticcheck.project import ModuleInfo, Project

RuleFunc = Callable[[Project], List[Finding]]

#: name → (function, one-line description)
_REGISTRY: Dict[str, Tuple[RuleFunc, str]] = {}


def rule(name: str, doc: str) -> Callable[[RuleFunc], RuleFunc]:
    """Register a rule function under ``name``."""

    def decorator(func: RuleFunc) -> RuleFunc:
        if name in _REGISTRY:
            raise ValueError(f"duplicate rule name: {name}")
        _REGISTRY[name] = (func, doc)
        return func

    return decorator


def all_rules() -> Tuple[str, ...]:
    """Registered rule names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_rule(name: str) -> RuleFunc:
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown rule {name!r}; known rules: {', '.join(all_rules())}"
        )
    return _REGISTRY[name][0]


def rule_doc(name: str) -> str:
    return _REGISTRY[name][1]


def lint_finding(
    rule_name: str,
    kind: str,
    message: str,
    module: ModuleInfo,
    lineno: int,
    **details: object,
) -> Finding:
    """A ``staticcheck`` finding anchored at ``<rel_path>#L<lineno>``."""
    payload: Dict[str, object] = {
        "rule": rule_name,
        "path": module.rel_path,
        "line": lineno,
    }
    payload.update(details)
    return Finding(
        checker="staticcheck",
        kind=kind,
        message=message,
        kernel=module.rel_path,
        launch=lineno,
        details=payload,
    )


# import rule modules for their registration side effect (keep last)
from repro.analysis.staticcheck.rules import (  # noqa: E402,F401
    config_fields,
    determinism,
    float_accum,
    metric_names,
    protocol,
    spans,
)
