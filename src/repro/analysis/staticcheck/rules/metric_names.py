"""Rule ``metric-names``: every emitted metric name comes from the
registry, every registry entry is live, and the docs mention all of it.

The registry is :mod:`repro.obs.names` (``METRIC_NAMES`` exact names,
``METRIC_FAMILIES`` patterns with ``*`` holes, ``DOC_FILES`` the docs
that must mention each entry). Emission sites are calls whose callee
attribute is ``counter``/``gauge``/``histogram``/``inc`` with a string
(or f-string) first argument, plus the metric-name dictionary literals
handed to ``render_prometheus`` / merged via ``<dict>.update({...})``.

F-strings collapse each hole to ``*`` — except a hole referencing an
enclosing-function parameter with a string default (the bridge-method
``prefix="gpusim"`` idiom), which substitutes the default. A collapsed
pattern must equal a declared family *exactly*; an emission whose name
cannot be resolved at all (a computed variable) is its own finding
unless the parameter is a pure pass-through (checked at its callers).

Three failure directions:

* ``undeclared-metric-name`` — emitted but not in the registry;
* ``stale-metric-name`` — declared but never emitted (a rename in code
  without a registry update produces both findings, pinning the drift);
* ``undocumented-metric`` — declared but absent from the DOC_FILES.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.staticcheck.project import (
    ModuleInfo,
    Project,
    collapse_fstring,
    module_constant_strs,
    param_names,
    param_string_defaults,
)
from repro.analysis.staticcheck.rules import lint_finding, rule

RULE = "metric-names"

REGISTRY_MODULE = "repro.obs.names"

#: callee attribute names that take a metric name as first argument
_EMIT_ATTRS = {"counter", "gauge", "histogram", "inc"}

#: keyword arguments of render_prometheus whose dict keys are metric names
_RENDER_KWARGS = {
    "counters",
    "gauges",
    "histograms",
    "labeled_gauges",
    "help_text",
}


@rule(RULE, "metric names declared in repro.obs.names, live, and documented")
def check(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    registry = project.get(REGISTRY_MODULE)
    if registry is None:
        anchor = next(iter(project), None)
        if anchor is not None:
            findings.append(
                lint_finding(
                    RULE,
                    "missing-registry",
                    f"metric-name registry module {REGISTRY_MODULE} not "
                    "found — declare METRIC_NAMES/METRIC_FAMILIES there",
                    anchor,
                    1,
                )
            )
        return findings

    names = module_constant_strs(registry, "METRIC_NAMES")
    families = module_constant_strs(registry, "METRIC_FAMILIES")
    doc_files = module_constant_strs(registry, "DOC_FILES")
    for const, value in (
        ("METRIC_NAMES", names),
        ("METRIC_FAMILIES", families),
        ("DOC_FILES", doc_files),
    ):
        if value is None:
            findings.append(
                lint_finding(
                    RULE,
                    "missing-registry",
                    f"{REGISTRY_MODULE}.{const} must be a literal "
                    "set/tuple of strings",
                    registry,
                    1,
                )
            )
    if names is None or families is None or doc_files is None:
        return findings

    family_regexes = [
        (pat, _family_regex(pat)) for pat in sorted(families)
    ]

    emitted_exact: Set[str] = set()
    emitted_patterns: Set[str] = set()
    for module in project:
        if module.name == REGISTRY_MODULE:
            continue
        for used, lineno, unresolved in _emission_sites(module):
            if unresolved:
                findings.append(
                    lint_finding(
                        RULE,
                        "unresolvable-metric-name",
                        "metric emitted with a computed name that cannot "
                        "be checked statically — use a literal, an "
                        "f-string, or a parameter with a string default",
                        module,
                        lineno,
                    )
                )
                continue
            assert used is not None
            if "*" in used:
                emitted_patterns.add(used)
                if used not in families:
                    findings.append(
                        _undeclared(module, lineno, used, family=True)
                    )
            else:
                emitted_exact.add(used)
                if used not in names and not any(
                    rx.match(used) for _, rx in family_regexes
                ):
                    findings.append(_undeclared(module, lineno, used))

    # reverse direction: any string constant in the tree counts as a
    # use (dict keys in snapshots/tests, stats mirrors, subscripts)
    all_strings = _all_string_constants(project, exclude=REGISTRY_MODULE)
    for name in sorted(names):
        if name in emitted_exact or name in all_strings:
            continue
        findings.append(
            lint_finding(
                RULE,
                "stale-metric-name",
                f"registry declares {name!r} but nothing in src/ emits or "
                "references it — remove it or restore the emission",
                registry,
                1,
                metric=name,
            )
        )
    for pattern, regex in family_regexes:
        live = pattern in emitted_patterns or any(
            regex.match(n) for n in emitted_exact | all_strings
        )
        if not live:
            findings.append(
                lint_finding(
                    RULE,
                    "stale-metric-name",
                    f"registry declares family {pattern!r} but no emission "
                    "site collapses to it",
                    registry,
                    1,
                    metric=pattern,
                )
            )

    # documentation direction
    doc_texts: List[str] = []
    for doc in sorted(doc_files):
        text = project.read_doc(doc)
        if text is None:
            findings.append(
                lint_finding(
                    RULE,
                    "missing-doc-file",
                    f"registry lists doc file {doc!r} but it does not exist",
                    registry,
                    1,
                )
            )
        else:
            doc_texts.append(text)
    corpus = "\n".join(doc_texts)
    if doc_texts:
        for entry in sorted(names | set(families)):
            needle = entry.split("*", 1)[0] if "*" in entry else entry
            if needle and needle not in corpus:
                findings.append(
                    lint_finding(
                        RULE,
                        "undocumented-metric",
                        f"registry entry {entry!r} is not mentioned in any "
                        f"of {', '.join(sorted(doc_files))}",
                        registry,
                        1,
                        metric=entry,
                    )
                )
    return findings


# --------------------------------------------------------------------- #
def _family_regex(pattern: str) -> "re.Pattern[str]":
    parts = [re.escape(p) for p in pattern.split("*")]
    return re.compile("^" + "[^/]+".join(parts) + "$")


def _undeclared(
    module: ModuleInfo, lineno: int, used: str, family: bool = False
) -> Finding:
    what = "family pattern" if family else "metric name"
    return lint_finding(
        RULE,
        "undeclared-metric-name",
        f"emits {what} {used!r} not declared in {REGISTRY_MODULE} — "
        "add it to the registry (and the docs) or fix the name",
        module,
        lineno,
        metric=used,
    )


def _emission_sites(
    module: ModuleInfo,
) -> List[Tuple[Optional[str], int, bool]]:
    """(resolved name-or-pattern, lineno, unresolvable?) per emission."""
    sites: List[Tuple[Optional[str], int, bool]] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        sites.extend(_from_emit_call(module, node))
        sites.extend(_from_render_call(node))
        sites.extend(_from_dict_update(node))
    return sites


def _from_emit_call(
    module: ModuleInfo, call: ast.Call
) -> List[Tuple[Optional[str], int, bool]]:
    if not (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in _EMIT_ATTRS
        and call.args
    ):
        return []
    # np.histogram(data, ...) is a numpy reduction, not an emission
    receiver = call.func.value
    if isinstance(receiver, ast.Name) and receiver.id in ("np", "numpy"):
        return []
    arg = call.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return [(arg.value, call.lineno, False)]
    func = module.enclosing_function(call)
    defaults = param_string_defaults(func) if func is not None else {}
    if isinstance(arg, ast.JoinedStr):
        return [(collapse_fstring(arg, defaults), call.lineno, False)]
    if isinstance(arg, ast.Name):
        if arg.id in defaults:
            return [(defaults[arg.id], call.lineno, False)]
        if func is not None and arg.id in param_names(func):
            # pure pass-through plumbing (MetricsRegistry.inc calling
            # self.counter(name)): the callers' literals are checked
            return []
        return [(None, call.lineno, True)]
    return [(None, call.lineno, True)]


def _from_render_call(
    call: ast.Call,
) -> List[Tuple[Optional[str], int, bool]]:
    name = call.func.attr if isinstance(call.func, ast.Attribute) else (
        call.func.id if isinstance(call.func, ast.Name) else None
    )
    if name != "render_prometheus":
        return []
    sites: List[Tuple[Optional[str], int, bool]] = []
    for kw in call.keywords:
        if kw.arg in _RENDER_KWARGS and isinstance(kw.value, ast.Dict):
            sites.extend(_dict_keys(kw.value))
    return sites


def _from_dict_update(
    call: ast.Call,
) -> List[Tuple[Optional[str], int, bool]]:
    """``somedict.update({"a/b": ...})`` — metric-shaped keys only."""
    if not (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == "update"
        and len(call.args) == 1
        and isinstance(call.args[0], ast.Dict)
    ):
        return []
    return [
        site
        for site in _dict_keys(call.args[0])
        if site[0] is not None and "/" in site[0]
    ]


def _dict_keys(node: ast.Dict) -> List[Tuple[Optional[str], int, bool]]:
    sites: List[Tuple[Optional[str], int, bool]] = []
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            sites.append((key.value, key.lineno, False))
    return sites


def _all_string_constants(
    project: Project, exclude: Optional[str] = None
) -> Set[str]:
    out: Set[str] = set()
    for module in project:
        if module.name == exclude:
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                out.add(node.value)
    return out
