"""The static-check engine: parse once, run rules, apply waivers, report.

:func:`run_staticcheck` is the single entry point behind the ``repro
lint`` CLI, the CI gate, and the meta-test that keeps the shipped tree
clean. It loads the source tree into a
:class:`~repro.analysis.staticcheck.project.Project`, runs the
registered rules (or a subset), strips findings carrying an inline
``# lint: allow[rule]`` marker, applies the structured waiver file, and
folds everything into a :class:`LintReport`.

Findings are ordinary :class:`~repro.analysis.findings.Finding` records
with ``checker="staticcheck"`` — they ride the same
:class:`~repro.analysis.findings.FindingLog`, obs metric bridge
(``sanitizer/findings/staticcheck``), and manifest plumbing as the
runtime sanitizers, so ``repro report`` and the metrics exposition see
static findings with zero extra wiring.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.findings import Finding, FindingLog
from repro.analysis.staticcheck.project import Project
from repro.analysis.staticcheck.rules import all_rules, get_rule, rule_doc
from repro.analysis.staticcheck.waivers import WaiverFile, inline_waiver

#: default waiver file, repo-root relative
DEFAULT_WAIVER_FILE = "lint-waivers.json"


@dataclass
class LintReport:
    """Outcome of one static-check run."""

    #: findings that fail the run (not waived anywhere)
    findings: List[Finding] = field(default_factory=list)
    #: (finding, reason) pairs suppressed by the waiver file
    waived: List[Tuple[Finding, str]] = field(default_factory=list)
    #: count of findings suppressed by inline ``# lint: allow[...]``
    inline_waived: int = 0
    rules_run: Tuple[str, ...] = ()
    checked_modules: int = 0
    waiver_file: Optional[str] = None

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def total(self) -> int:
        return len(self.findings)

    def to_log(self) -> FindingLog:
        """The unwaived findings as a standard :class:`FindingLog`."""
        log = FindingLog()
        log.extend(self.findings)
        return log

    def by_rule(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for f in self.findings:
            name = str(f.details.get("rule", "?"))
            out[name] = out.get(name, 0) + 1
        return out

    def summary(self) -> Dict[str, Any]:
        """Compact payload for manifests (``RunManifest.staticcheck``)."""
        kinds: Dict[str, int] = {}
        for f in self.findings:
            kinds[f.kind] = kinds.get(f.kind, 0) + 1
        return {
            "total": self.total,
            "waived": len(self.waived) + self.inline_waived,
            "rules": list(self.rules_run),
            "modules": self.checked_modules,
            "by_rule": self.by_rule(),
            "by_kind": kinds,
        }

    def as_json(self) -> Dict[str, Any]:
        """Full machine-readable report (the ``--format json`` payload)."""
        return {
            "clean": self.clean,
            "summary": self.summary(),
            "findings": [f.as_dict() for f in self.findings],
            "waived": [
                {"finding": f.as_dict(), "reason": reason}
                for f, reason in self.waived
            ],
            "waiver_file": self.waiver_file,
        }

    def render_text(self, limit: int = 50) -> str:
        """Terminal/CI report (the ``--format text`` output)."""
        lines: List[str] = []
        n_waived = len(self.waived) + self.inline_waived
        if self.clean:
            lines.append(
                f"repro lint: clean — {self.checked_modules} modules, "
                f"{len(self.rules_run)} rules"
                + (f", {n_waived} waived finding(s)" if n_waived else "")
            )
        else:
            lines.append(
                f"repro lint: {self.total} unwaived finding(s) "
                f"({self.checked_modules} modules, "
                f"{len(self.rules_run)} rules"
                + (f", {n_waived} waived" if n_waived else "")
                + ")"
            )
            for name, count in sorted(self.by_rule().items()):
                lines.append(f"  {name:24s} {count}")
            for f in self.findings[:limit]:
                lines.append(f"  - {f}")
            if self.total > limit:
                lines.append(f"  ... and {self.total - limit} more")
        if self.waived:
            lines.append("waived:")
            for f, reason in self.waived[:limit]:
                lines.append(f"  ~ {f}")
                lines.append(f"    reason: {reason}")
        return "\n".join(lines)


def run_staticcheck(
    repo_root: Optional[Union[str, Path]] = None,
    rules: Optional[Sequence[str]] = None,
    waiver_file: Optional[Union[str, Path]] = None,
    today: Optional[_dt.date] = None,
    project: Optional[Project] = None,
) -> LintReport:
    """Run the AST invariant checker over the repo's source tree.

    Parameters
    ----------
    repo_root:
        Repository root (containing ``src/repro``). Defaults to the
        root this installed package was loaded from.
    rules:
        Subset of rule names to run (default: all registered rules).
    waiver_file:
        Structured waiver file. Defaults to ``lint-waivers.json`` at
        the repo root when that file exists; pass a path explicitly to
        require it.
    today:
        Reference date for waiver expiry (tests pin this).
    project:
        Pre-built :class:`Project` (tests build synthetic trees).
    """
    if project is None:
        if repo_root is None:
            # src/repro/analysis/staticcheck/engine.py → repo root
            repo_root = Path(__file__).resolve().parents[4]
        project = Project.from_repo(Path(repo_root))

    selected = tuple(rules) if rules else all_rules()
    findings: List[Finding] = []
    for rel_path, error in project.parse_errors:
        findings.append(
            Finding(
                checker="staticcheck",
                kind="syntax-error",
                message=f"cannot parse: {error}",
                kernel=rel_path,
                details={"rule": "parse", "path": rel_path},
            )
        )
    for name in selected:
        findings.extend(get_rule(name)(project))

    kept, inline_count = _strip_inline_waivers(project, findings)

    waivers: Optional[WaiverFile] = None
    waiver_path: Optional[Path] = None
    if waiver_file is not None:
        waiver_path = Path(waiver_file)
        waivers = WaiverFile.load(waiver_path)
    else:
        candidate = project.repo_root / DEFAULT_WAIVER_FILE
        if candidate.exists():
            waiver_path = candidate
            waivers = WaiverFile.load(candidate)

    if waivers is not None:
        unwaived, waived, waiver_findings = waivers.apply(kept, today=today)
        unwaived.extend(waiver_findings)
    else:
        unwaived, waived = kept, []

    return LintReport(
        findings=unwaived,
        waived=waived,
        inline_waived=inline_count,
        rules_run=selected,
        checked_modules=len(project),
        waiver_file=None if waiver_path is None else str(waiver_path),
    )


def _strip_inline_waivers(
    project: Project, findings: List[Finding]
) -> Tuple[List[Finding], int]:
    by_rel = {m.rel_path: m for m in project}
    kept: List[Finding] = []
    stripped = 0
    for f in findings:
        module = by_rel.get(str(f.details.get("path", "")))
        lineno = f.details.get("line")
        rule_name = str(f.details.get("rule", ""))
        if module is not None and isinstance(lineno, int) and lineno > 0:
            line = module.line(lineno)
            prev = module.line(lineno - 1)
            if inline_waiver(line, prev, rule_name):
                stripped += 1
                continue
        kept.append(f)
    return kept, stripped


def describe_rules() -> List[Tuple[str, str]]:
    """(name, description) for every registered rule, sorted."""
    return [(name, rule_doc(name)) for name in all_rules()]
