"""Structured sanitizer findings and the bounded log that collects them.

Every checker reports problems as :class:`Finding` records — the sanitizer
analog of a cuda-memcheck report line: which checker fired, what kind of
hazard, in which kernel/launch, at which address, touched by which lanes.
Findings are plain data (JSON-serialisable via :meth:`Finding.as_dict`) so
they can ride inside a :class:`~repro.obs.manifest.RunManifest`, be written
as a report artifact from the CLI, and be asserted on in mutation tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import (
    InvariantViolationError,
    MemcheckError,
    RaceHazardError,
    SanitizerError,
    StaticCheckError,
    SynccheckError,
)

#: checker names, in report order (``staticcheck`` findings come from
#: the AST-based ``repro lint`` rules, not a runtime sanitizer pass)
CHECKERS = ("racecheck", "memcheck", "synccheck", "invariant", "staticcheck")

_ERROR_TYPES = {
    "racecheck": RaceHazardError,
    "memcheck": MemcheckError,
    "synccheck": SynccheckError,
    "invariant": InvariantViolationError,
    "staticcheck": StaticCheckError,
}


@dataclass(frozen=True)
class Finding:
    """One sanitizer finding.

    Attributes
    ----------
    checker:
        Which checker fired (one of :data:`CHECKERS`).
    kind:
        The specific defect, e.g. ``write-write-hazard``, ``oob-access``,
        ``uninitialised-read``, ``barrier-divergence``, ``mask-mismatch``,
        ``weight-conservation``, ``lemma5-false-negative``.
    message:
        Human-readable one-liner.
    kernel:
        Simulated kernel (or subsystem) the event came from, when known.
    launch:
        Launch ordinal within the sanitized scope, when known.
    space:
        Memory space of the offending access (``shared``/``global``), when
        the finding is about a memory address.
    address:
        Offending address/slot within its space, when applicable.
    lanes:
        The lane (thread) ids involved, when applicable.
    details:
        Free-form extra payload (vertex ids, expected/actual values, ...).
    """

    checker: str
    kind: str
    message: str
    kernel: Optional[str] = None
    launch: Optional[int] = None
    space: Optional[str] = None
    address: Optional[int] = None
    lanes: Optional[Tuple[int, ...]] = None
    details: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form (tuples become lists)."""
        return {
            "checker": self.checker,
            "kind": self.kind,
            "message": self.message,
            "kernel": self.kernel,
            "launch": self.launch,
            "space": self.space,
            "address": self.address,
            "lanes": None if self.lanes is None else list(self.lanes),
            "details": dict(self.details),
        }

    def to_error(self) -> SanitizerError:
        """The matching :class:`SanitizerError` subclass for this finding."""
        err = _ERROR_TYPES.get(self.checker, SanitizerError)
        return err(self.message, findings=[self])

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = self.kernel or "?"
        if self.launch is not None:
            where += f"#L{self.launch}"
        addr = ""
        if self.address is not None:
            addr = f" {self.space or 'mem'}[{self.address}]"
        return f"[{self.checker}:{self.kind}] {where}{addr}: {self.message}"


class FindingLog:
    """Bounded, counted collection of findings.

    Counting is exact even past the storage bound: ``total`` and the
    per-checker / per-kind counters keep incrementing after ``max_stored``
    findings have been retained, so a pathological run cannot exhaust
    memory while still reporting the true finding volume.
    """

    def __init__(
        self,
        max_stored: int = 1000,
        on_add: Optional[Callable[[Finding], None]] = None,
    ) -> None:
        self.max_stored = max_stored
        self.findings: List[Finding] = []
        self.total = 0
        self.by_checker: Dict[str, int] = {}
        self.by_kind: Dict[str, int] = {}
        #: optional callback invoked with each recorded finding — the
        #: sanitizer session uses it to bridge findings into repro.obs
        #: metrics and to implement ``on_finding="raise"``
        self.on_add = on_add

    def add(self, finding: Finding) -> None:
        self.total += 1
        self.by_checker[finding.checker] = (
            self.by_checker.get(finding.checker, 0) + 1
        )
        self.by_kind[finding.kind] = self.by_kind.get(finding.kind, 0) + 1
        if len(self.findings) < self.max_stored:
            self.findings.append(finding)
        if self.on_add is not None:
            self.on_add(finding)

    def extend(self, findings: Sequence[Finding]) -> None:
        for f in findings:
            self.add(f)

    def __len__(self) -> int:
        return self.total

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    @property
    def clean(self) -> bool:
        return self.total == 0

    def count(self, checker: str) -> int:
        return self.by_checker.get(checker, 0)

    def summary(self) -> Dict[str, Any]:
        """Totals by checker/kind — the manifest/metrics payload."""
        return {
            "total": self.total,
            "stored": len(self.findings),
            "by_checker": dict(self.by_checker),
            "by_kind": dict(self.by_kind),
        }

    def as_report(self) -> Dict[str, Any]:
        """Full JSON report: summary + the stored finding records."""
        report = self.summary()
        report["findings"] = [f.as_dict() for f in self.findings]
        return report

    def render(self, limit: int = 20) -> str:
        """Plain-text report for terminals/CI logs."""
        if self.clean:
            return "sanitizer: 0 findings"
        lines = [f"sanitizer: {self.total} finding(s)"]
        for checker in CHECKERS:
            n = self.by_checker.get(checker, 0)
            if n:
                lines.append(f"  {checker:10s} {n}")
        for f in self.findings[:limit]:
            lines.append(f"  - {f}")
        if self.total > limit:
            lines.append(f"  ... and {self.total - limit} more")
        return "\n".join(lines)
