"""Synccheck: barrier-divergence and warp-primitive mask checks.

Two defect classes, analogs of ``cuda-synccheck``:

* **barrier-divergence** — a block barrier reached while some threads of
  the block are inactive (diverged). On hardware that deadlocks or is
  undefined behaviour depending on the architecture; the simulator treats
  partial participation as a finding.
* **mask-mismatch** — a warp primitive (``__reduce_add_sync`` et al.)
  invoked with an empty active mask, or with per-lane ``mask`` words
  naming lanes that are not active in the warp. Real ``*_sync``
  primitives require every named lane to participate; naming an inactive
  lane hangs the warp.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
from numpy.typing import ArrayLike

from .findings import Finding, FindingLog

_MAX_LANES = 8


class SyncChecker:
    """Barrier and warp-primitive participation checks."""

    def __init__(self, log: FindingLog) -> None:
        self._log = log

    def barrier(
        self,
        active: "ArrayLike",
        block_size: Optional[int] = None,
        kernel: Optional[str] = None,
        launch: Optional[int] = None,
    ) -> None:
        """Check a block barrier.

        ``active`` is a boolean participation mask over the block's
        threads (or over the lanes known to the caller). ``block_size``
        overrides the expected participant count when the mask covers only
        a subset of the block.
        """
        mask = np.atleast_1d(np.asarray(active, dtype=bool))
        expected = int(block_size) if block_size is not None else mask.shape[0]
        present = int(mask.sum())
        if present == expected:
            return
        missing = np.flatnonzero(~mask)
        self._log.add(
            Finding(
                checker="synccheck",
                kind="barrier-divergence",
                message=(
                    f"barrier reached by {present}/{expected} threads; "
                    f"{expected - present} diverged"
                ),
                kernel=kernel,
                launch=launch,
                lanes=tuple(int(i) for i in missing[:_MAX_LANES]),
                details={"present": present, "expected": expected},
            )
        )

    def warp_primitive(
        self,
        primitive: str,
        active: "ArrayLike",
        masks: Optional["ArrayLike"] = None,
        kernel: Optional[str] = None,
        launch: Optional[int] = None,
    ) -> None:
        """Check a warp-synchronous primitive call.

        ``active`` is the warp's boolean active-lane mask (``(32,)`` for
        the scalar engine, ``(n_warps, 32)`` for the batched engine).
        ``masks``, when given, holds per-lane 32-bit participation words
        (same leading shape as ``active``); any mask bit naming an
        inactive lane is a mismatch.
        """
        act = np.asarray(active, dtype=bool)
        flat = act.reshape(-1, act.shape[-1]) if act.ndim > 1 else act[None, :]
        empty = ~flat.any(axis=1)
        if bool(empty.any()):
            for w in np.flatnonzero(empty)[:_MAX_LANES].tolist():
                self._log.add(
                    Finding(
                        checker="synccheck",
                        kind="mask-mismatch",
                        message=(
                            f"{primitive} invoked with an empty active mask"
                            + (f" (warp {w})" if flat.shape[0] > 1 else "")
                        ),
                        kernel=kernel,
                        launch=launch,
                        details={"primitive": primitive},
                    )
                )
        if masks is None:
            return
        lane_bits = np.uint32(1) << np.arange(act.shape[-1], dtype=np.uint32)
        warp_word = (
            (act.astype(np.uint32) * lane_bits).sum(axis=-1).astype(np.uint32)
        )
        m = np.asarray(masks, dtype=np.uint32)
        mflat = m.reshape(-1, m.shape[-1]) if m.ndim > 1 else m[None, :]
        wflat = np.atleast_1d(warp_word).reshape(-1)
        # only masks supplied by *active* lanes matter; inactive lanes'
        # mask words are dead values
        stray = (mflat & ~wflat[:, None]) != 0
        stray &= flat
        if bool(stray.any()):
            warps, lanes = np.nonzero(stray)
            reported: List[int] = []
            for w, lane in zip(warps.tolist(), lanes.tolist()):
                if len(reported) >= _MAX_LANES:
                    break
                reported.append(lane)
                extra = int(mflat[w, lane] & ~wflat[w])
                self._log.add(
                    Finding(
                        checker="synccheck",
                        kind="mask-mismatch",
                        message=(
                            f"{primitive} mask from lane {lane} names "
                            f"inactive lanes (bits 0x{extra:08x})"
                            + (f" (warp {w})" if mflat.shape[0] > 1 else "")
                        ),
                        kernel=kernel,
                        launch=launch,
                        lanes=(int(lane),),
                        details={"primitive": primitive, "stray_bits": extra},
                    )
                )
