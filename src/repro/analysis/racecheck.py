"""Epoch-based happens-before racecheck for the simulated GPU stack.

The model mirrors ``cuda-racecheck``: within one *epoch* (the span between
two block barriers, or between kernel launch and the first barrier) every
memory access by every lane is recorded as an event ``(region, address,
lane, mode)`` where ``mode`` is ``read``, ``write`` (a plain, non-atomic
store) or ``atomic``. When a barrier closes the epoch the recorded events
are analysed per ``(region, address)``:

* lanes that performed a plain write or an atomic form the *writer* set W;
* lanes that performed a plain (non-atomic) read or write form the
  *plain* set P;
* a hazard exists iff W and P are both non-empty and the union W ∪ P spans
  at least two distinct lanes.

That predicate makes ``atomic``+``atomic`` safe (the hardware serialises
them), ``read``+``read`` safe, and everything mixing a plain access with a
concurrent access by another lane hazardous. Accesses by the *same* lane
are program-ordered and never race with themselves. Hazards are classified
``write-write`` (two lanes wrote, at least one plainly) or ``read-write``
(a plain read overlapped a write).

Regions keep separate address spaces apart: the hashtable instrumentation
uses ``(tag, space)`` tuples such as ``("table", "shared")`` so a shared
slot 3 never aliases a global slot 3.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np
from numpy.typing import ArrayLike

from .findings import Finding, FindingLog

#: max distinct lanes listed per finding (keeps records small)
_MAX_LANES = 8

_READ = 1
_WRITE = 2
_ATOMIC = 4

_MODE_BITS = {"read": _READ, "write": _WRITE, "atomic": _ATOMIC}


class RaceChecker:
    """Collects per-epoch access events and reports hazards at barriers."""

    def __init__(self, log: FindingLog) -> None:
        self._log = log
        # (region, address) -> {lane: mode_bits}
        self._epoch: Dict[Tuple[Hashable, int], Dict[int, int]] = {}
        self.events = 0
        self._kernel: Optional[str] = None
        self._launch: Optional[int] = None

    # ------------------------------------------------------------------ #
    # event recording
    # ------------------------------------------------------------------ #

    def access(
        self,
        region: Hashable,
        addresses: "ArrayLike",
        lanes: "ArrayLike",
        mode: str,
        kernel: Optional[str] = None,
        launch: Optional[int] = None,
    ) -> None:
        """Record one or more accesses in the current epoch.

        ``addresses`` and ``lanes`` may be scalars or equal-length
        sequences (numpy arrays welcome). ``mode`` is ``read`` / ``write``
        / ``atomic``. ``kernel``/``launch`` tag any finding produced when
        the epoch closes.
        """
        bit = _MODE_BITS[mode]
        addrs = np.atleast_1d(np.asarray(addresses))
        lns = np.atleast_1d(np.asarray(lanes))
        if lns.shape[0] == 1 and addrs.shape[0] > 1:
            lns = np.broadcast_to(lns, addrs.shape)
        epoch = self._epoch
        self.events += int(addrs.shape[0])
        # remember the most recent tags so findings at the closing barrier
        # stay attributed even when later accesses omit them
        if kernel is not None:
            self._kernel = kernel
        if launch is not None:
            self._launch = launch
        for addr, lane in zip(addrs.tolist(), lns.tolist()):
            key = (region, addr)
            lanes_map = epoch.get(key)
            if lanes_map is None:
                epoch[key] = {lane: bit}
            else:
                lanes_map[lane] = lanes_map.get(lane, 0) | bit

    # ------------------------------------------------------------------ #
    # epoch boundaries
    # ------------------------------------------------------------------ #

    def barrier(
        self, kernel: Optional[str] = None, launch: Optional[int] = None
    ) -> List[Finding]:
        """Close the current epoch: analyse all events, then reset."""
        findings: List[Finding] = []
        for (region, addr), lanes_map in self._epoch.items():
            if len(lanes_map) < 2:
                continue  # single lane: program-ordered
            writers = [ln for ln, bits in lanes_map.items() if bits & (_WRITE | _ATOMIC)]
            plains = [ln for ln, bits in lanes_map.items() if bits & (_WRITE | _READ)]
            if not writers or not plains:
                continue
            involved = sorted(set(writers) | set(plains))
            if len(involved) < 2:
                continue
            plain_writers = [
                ln for ln, bits in lanes_map.items() if bits & _WRITE
            ]
            if plain_writers and len(set(writers)) >= 2:
                kind = "write-write-hazard"
                msg = "two lanes wrote one address without atomics in one epoch"
            else:
                kind = "read-write-hazard"
                msg = "a plain read overlapped a write by another lane in one epoch"
            space = None
            tag = region
            if isinstance(region, tuple) and len(region) == 2:
                tag, space = region
            findings.append(
                Finding(
                    checker="racecheck",
                    kind=kind,
                    message=f"{msg} (region={tag!r})",
                    kernel=kernel if kernel is not None else getattr(self, "_kernel", None),
                    launch=launch if launch is not None else getattr(self, "_launch", None),
                    space=space,
                    address=int(addr),
                    lanes=tuple(involved[:_MAX_LANES]),
                    details={"n_lanes": len(involved)},
                )
            )
        self._epoch = {}
        self._kernel = None
        self._launch = None
        if findings:
            self._log.extend(findings)
        return findings

    def end_launch(
        self, kernel: Optional[str] = None, launch: Optional[int] = None
    ) -> List[Finding]:
        """Kernel exit is an implicit barrier: flush the open epoch."""
        return self.barrier(kernel=kernel, launch=launch)
