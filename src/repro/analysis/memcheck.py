"""Memcheck: bounds, initialisation, and capacity checks for simulated memory.

Three defects, all analogs of what ``cuda-memcheck`` reports on real
kernels:

* **oob-access** — a bucket/slot index outside its array. The check both
  records a finding and tells the caller (returns a mask of valid
  addresses) so instrumented code can skip the faulting access and keep
  running, the way ``cuda-memcheck`` keeps a kernel alive to collect more
  errors.
* **uninitialised-read** — a read of a slot no lane has written since the
  table was last reset. Tracked by shadow bitmaps per region.
* **capacity-overflow** — the shared level of a hierarchical table filled
  completely before the global spill engaged (the paper's Section 4.2
  layout expects shared occupancy to stay below capacity so `hash0`
  probing terminates).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

import numpy as np
from numpy.typing import ArrayLike

from .findings import Finding, FindingLog

#: cap on per-call findings so a wild address vector cannot flood the log
_MAX_PER_CALL = 16


class MemChecker:
    """Bounds / shadow-init / capacity checks, vectorised over lanes."""

    def __init__(self, log: FindingLog) -> None:
        self._log = log
        # region -> shadow "has been written" bitmap
        self._shadow: Dict[Hashable, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # bounds
    # ------------------------------------------------------------------ #

    def check_bounds(
        self,
        region: Hashable,
        addresses: "ArrayLike",
        size: int,
        kernel: Optional[str] = None,
        launch: Optional[int] = None,
        lanes: Optional["ArrayLike"] = None,
    ) -> np.ndarray:
        """Validate ``0 <= addresses < size``; report violations.

        Returns a boolean mask (same shape as ``addresses``) that is True
        for in-bounds addresses, so callers can mask out the faulting
        accesses and continue.
        """
        addrs = np.atleast_1d(np.asarray(addresses))
        ok = (addrs >= 0) & (addrs < size)
        if not bool(ok.all()):
            bad = np.flatnonzero(~ok)
            lane_arr = None
            if lanes is not None:
                lane_arr = np.atleast_1d(np.asarray(lanes))
                if lane_arr.shape[0] == 1 and addrs.shape[0] > 1:
                    lane_arr = np.broadcast_to(lane_arr, addrs.shape)
            space = None
            tag = region
            if isinstance(region, tuple) and len(region) == 2:
                tag, space = region
            for i in bad[:_MAX_PER_CALL].tolist():
                lane = None if lane_arr is None else (int(lane_arr[i]),)
                self._log.add(
                    Finding(
                        checker="memcheck",
                        kind="oob-access",
                        message=(
                            f"address {int(addrs[i])} outside "
                            f"[0, {size}) (region={tag!r})"
                        ),
                        kernel=kernel,
                        launch=launch,
                        space=space,
                        address=int(addrs[i]),
                        lanes=lane,
                        details={"size": int(size)},
                    )
                )
            if bad.shape[0] > _MAX_PER_CALL:
                self._log.add(
                    Finding(
                        checker="memcheck",
                        kind="oob-access",
                        message=(
                            f"{int(bad.shape[0] - _MAX_PER_CALL)} further "
                            f"out-of-bounds addresses suppressed "
                            f"(region={tag!r})"
                        ),
                        kernel=kernel,
                        launch=launch,
                        space=space,
                    )
                )
        return ok if np.ndim(addresses) else ok.reshape(())

    # ------------------------------------------------------------------ #
    # shadow initialisation state
    # ------------------------------------------------------------------ #

    def reset_shadow(self, region: Hashable, size: int) -> None:
        """(Re)declare a region as fully uninitialised, e.g. on table reset."""
        self._shadow[region] = np.zeros(int(size), dtype=bool)

    def mark_init(self, region: Hashable, addresses: ArrayLike) -> None:
        """Record that ``addresses`` in ``region`` now hold defined data."""
        shadow = self._shadow.get(region)
        if shadow is None:
            return
        addrs = np.atleast_1d(np.asarray(addresses))
        valid = (addrs >= 0) & (addrs < shadow.shape[0])
        shadow[addrs[valid]] = True

    def check_init(
        self,
        region: Hashable,
        addresses: ArrayLike,
        kernel: Optional[str] = None,
        launch: Optional[int] = None,
        lanes: Optional[ArrayLike] = None,
    ) -> None:
        """Report reads of slots never written since the last reset."""
        shadow = self._shadow.get(region)
        if shadow is None:
            return
        addrs = np.atleast_1d(np.asarray(addresses))
        valid = (addrs >= 0) & (addrs < shadow.shape[0])
        uninit = np.zeros(addrs.shape, dtype=bool)
        uninit[valid] = ~shadow[addrs[valid]]
        if not bool(uninit.any()):
            return
        space = None
        tag = region
        if isinstance(region, tuple) and len(region) == 2:
            tag, space = region
        lane_arr = None
        if lanes is not None:
            lane_arr = np.atleast_1d(np.asarray(lanes))
            if lane_arr.shape[0] == 1 and addrs.shape[0] > 1:
                lane_arr = np.broadcast_to(lane_arr, addrs.shape)
        for i in np.flatnonzero(uninit)[:_MAX_PER_CALL].tolist():
            lane = None if lane_arr is None else (int(lane_arr[i]),)
            self._log.add(
                Finding(
                    checker="memcheck",
                    kind="uninitialised-read",
                    message=(
                        f"read of never-initialised slot {int(addrs[i])} "
                        f"(region={tag!r})"
                    ),
                    kernel=kernel,
                    launch=launch,
                    space=space,
                    address=int(addrs[i]),
                    lanes=lane,
                )
            )

    # ------------------------------------------------------------------ #
    # capacity
    # ------------------------------------------------------------------ #

    def check_capacity(
        self,
        region: Hashable,
        occupied: int,
        capacity: int,
        kernel: Optional[str] = None,
        launch: Optional[int] = None,
    ) -> None:
        """Report a shared level that filled completely before spilling."""
        if capacity > 0 and occupied >= capacity:
            space = None
            tag = region
            if isinstance(region, tuple) and len(region) == 2:
                tag, space = region
            self._log.add(
                Finding(
                    checker="memcheck",
                    kind="capacity-overflow",
                    message=(
                        f"shared level full ({occupied}/{capacity} buckets) "
                        f"before hierarchical spill (region={tag!r})"
                    ),
                    kernel=kernel,
                    launch=launch,
                    space=space,
                    details={"occupied": int(occupied), "capacity": int(capacity)},
                )
            )
