"""GALA-San: opt-in sanitizers for the simulated GPU stack.

``repro.analysis`` is the simulator's cuda-memcheck analog — four checkers
behind one session:

* **racecheck** — epoch-based happens-before hazard detection over the
  hashtable / atomics / warp layers (:mod:`.racecheck`);
* **memcheck** — out-of-bounds bucket indices, uninitialised-slot reads,
  shared-capacity overflow (:mod:`.memcheck`);
* **synccheck** — barrier divergence and warp-primitive mask mismatches
  (:mod:`.synccheck`);
* **invariant** — CSR well-formedness, community-weight conservation, and
  the MG-pruning Lemma-5 audit (:mod:`.invariants`).

The activation pattern mirrors :mod:`repro.obs`: instrumented code never
holds a sanitizer — it calls the module-level :func:`current` accessor,
which returns ``None`` when sanitizing is off (one global read + branch),
so the hot paths stay untouched by default. Activation is a context
manager::

    from repro import analysis

    with analysis.sanitized("strict") as san:
        result = gala(graph, GalaConfig(backend="gpusim"))
    print(san.log.render())

or driven by config/env/CLI: ``GalaConfig(sanitize="strict")``,
``REPRO_SANITIZE=strict``, or ``repro detect --sanitize=strict``.

Two modes: ``fast`` runs the kernel-level checkers plus the CSR audit;
``strict`` additionally bit-compares the community-weight arrays against a
from-scratch recompute after every weight update and audits Lemma 5 with
the engine oracle. Neither mode perturbs results — a sanitized run is
bit-identical to an unsanitized one.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterator, Optional, Union

if TYPE_CHECKING:  # only for annotations; keep the import graph light
    import numpy as np

    from repro.core.state import CommunityState
    from repro.graph.csr import CSRGraph

from repro.errors import SanitizerError

from .findings import CHECKERS, Finding, FindingLog
from .invariants import audit_lemma5, audit_weight_update, validate_csr
from .memcheck import MemChecker
from .racecheck import RaceChecker
from .synccheck import SyncChecker

__all__ = [
    "CHECKERS",
    "Finding",
    "FindingLog",
    "MemChecker",
    "RaceChecker",
    "SanitizerConfig",
    "Sanitizer",
    "SyncChecker",
    "active",
    "audit_lemma5",
    "audit_weight_update",
    "current",
    "resolve_sanitize",
    "sanitized",
    "validate_csr",
]

#: environment variable consulted when no explicit sanitize spec is given
ENV_VAR = "REPRO_SANITIZE"

MODES = ("fast", "strict")


@dataclass(frozen=True)
class SanitizerConfig:
    """Which checkers run and how findings are handled.

    ``mode`` selects the depth: ``fast`` = racecheck + memcheck +
    synccheck + CSR audit; ``strict`` adds the per-iteration
    community-weight bit-compare and the Lemma-5 oracle audit. Individual
    checkers can be switched off for bisection. ``on_finding`` is
    ``record`` (default: collect and report) or ``raise`` (abort on the
    first finding with the matching :class:`SanitizerError` subclass).
    """

    mode: str = "fast"
    racecheck: bool = True
    memcheck: bool = True
    synccheck: bool = True
    invariants: bool = True
    max_findings: int = 1000
    on_finding: str = "record"

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"sanitize mode must be one of {MODES}, got {self.mode!r}")
        if self.on_finding not in ("record", "raise"):
            raise ValueError(
                f"on_finding must be 'record' or 'raise', got {self.on_finding!r}"
            )

    @property
    def strict(self) -> bool:
        return self.mode == "strict"


def resolve_sanitize(
    spec: Union[None, bool, str, SanitizerConfig] = None,
) -> Optional[SanitizerConfig]:
    """Normalise a sanitize spec to a config (or None = off).

    Accepts ``None`` (consult :data:`ENV_VAR`, off when unset), ``False``
    / ``"off"`` / ``""`` (off), ``True`` / ``"fast"`` / ``"strict"``, or
    an explicit :class:`SanitizerConfig`.
    """
    if spec is None:
        spec = os.environ.get(ENV_VAR) or None
        if spec is None:
            return None
    if isinstance(spec, SanitizerConfig):
        return spec
    if spec is False:
        return None
    if spec is True:
        return SanitizerConfig(mode="fast")
    text = str(spec).strip().lower()
    if text in ("", "off", "none", "0", "false"):
        return None
    if text in ("1", "true", "on"):
        return SanitizerConfig(mode="fast")
    return SanitizerConfig(mode=text)  # validates the mode name


class Sanitizer:
    """One sanitizing scope: the four checkers sharing one finding log."""

    def __init__(self, config: Optional[SanitizerConfig] = None) -> None:
        self.config = config or SanitizerConfig()
        self.log = FindingLog(
            max_stored=self.config.max_findings, on_add=self._on_finding
        )
        self.race = RaceChecker(self.log)
        self.mem = MemChecker(self.log)
        self.sync = SyncChecker(self.log)
        self._launches = 0
        self._launch_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def _on_finding(self, finding: Finding) -> None:
        # bridge into the observability metrics when a session is live
        from repro import obs

        obs.inc(f"sanitizer/findings/{finding.checker}")
        obs.inc(f"sanitizer/kind/{finding.kind}")
        if self.config.on_finding == "raise":
            raise finding.to_error()

    # ------------------------------------------------------------------ #
    # launch bookkeeping
    # ------------------------------------------------------------------ #
    def next_launch(self) -> int:
        """A fresh launch ordinal for tagging findings."""
        with self._launch_lock:
            self._launches += 1
            return self._launches

    # ------------------------------------------------------------------ #
    # invariant-audit entry points (thin wrappers adding log + gating)
    # ------------------------------------------------------------------ #
    def audit_graph(self, graph: "CSRGraph", source: Optional[str] = None) -> int:
        """Run the CSR audit; record findings; return how many."""
        if not self.config.invariants:
            return 0
        found = validate_csr(graph, source=source)
        self.log.extend(found)
        return len(found)

    def audit_weights(self, state: "CommunityState", iteration: Optional[int] = None) -> int:
        """Strict-mode community-weight conservation audit."""
        if not (self.config.invariants and self.config.strict):
            return 0
        found = audit_weight_update(state, iteration=iteration)
        self.log.extend(found)
        return len(found)

    def audit_pruning(
        self,
        active: "np.ndarray",
        oracle_moved: "np.ndarray",
        iteration: Optional[int] = None,
        strategy: str = "mg",
    ) -> int:
        """Strict-mode Lemma-5 false-negative audit."""
        if not (self.config.invariants and self.config.strict):
            return 0
        found = audit_lemma5(
            active, oracle_moved, iteration=iteration, strategy=strategy
        )
        self.log.extend(found)
        return len(found)

    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, Any]:
        """Manifest-ready summary: mode + finding totals."""
        out = {"mode": self.config.mode}
        out.update(self.log.summary())
        return out

    def report(self) -> Dict[str, Any]:
        """Full JSON report (summary + stored finding records)."""
        out = {"mode": self.config.mode}
        out.update(self.log.as_report())
        return out

    def raise_if_findings(self) -> None:
        """Raise a :class:`SanitizerError` when the log is non-empty."""
        if self.log.clean:
            return
        first = self.log.findings[0] if self.log.findings else None
        err_cls = type(first.to_error()) if first is not None else SanitizerError
        raise err_cls(
            f"sanitizer recorded {self.log.total} finding(s); "
            f"first: {first}",
            findings=list(self.log.findings),
        )


# --------------------------------------------------------------------- #
# the active-sanitizer stack (mirrors repro.obs._session)
# --------------------------------------------------------------------- #
_lock = threading.Lock()
_stack: list = []
_current: Optional[Sanitizer] = None  # cached top-of-stack for fast reads


def current() -> Optional[Sanitizer]:
    """The innermost active sanitizer, or None when sanitizing is off.

    This is the only call instrumented hot paths make when the sanitizer
    is inactive — one module-global read.
    """
    return _current


def active() -> bool:
    return _current is not None


def push(san: Sanitizer) -> Sanitizer:
    """Activate ``san`` (innermost-wins). Prefer :func:`sanitized`."""
    global _current
    with _lock:
        _stack.append(san)
        _current = san
    return san


def pop(san: Sanitizer) -> None:
    """Deactivate ``san``; it must be the innermost active sanitizer."""
    global _current
    with _lock:
        if not _stack or _stack[-1] is not san:
            raise ValueError("sanitizer stack mismatch (pop out of order)")
        _stack.pop()
        _current = _stack[-1] if _stack else None


@contextmanager
def sanitized(
    spec: Union[None, bool, str, SanitizerConfig] = "fast",
) -> Iterator[Sanitizer]:
    """Activate the sanitizers for the enclosed code.

    Usage::

        from repro import analysis

        with analysis.sanitized("strict") as san:
            result = gala(graph, cfg)
        assert san.log.clean, san.log.render()

    ``spec`` accepts everything :func:`resolve_sanitize` does; a spec that
    resolves to *off* still yields a (never-activated) sanitizer so
    callers need no branching — its log just stays empty.
    """
    config = resolve_sanitize(spec)
    san = Sanitizer(config or SanitizerConfig())
    if config is None:
        yield san
        return
    push(san)
    try:
        yield san
    finally:
        pop(san)
