"""GALA: GPU-Accelerated Louvain Algorithm — full Python reproduction.

Reproduction of *Swift Unfolding of Communities: GPU-Accelerated Louvain
Algorithm* (PPoPP 2025). See DESIGN.md for the system inventory and
EXPERIMENTS.md for the paper-vs-measured record.

Quick start::

    from repro import gala
    from repro.graph.generators import load_dataset

    result = gala(load_dataset("LJ", scale=0.1))
    print(result.modularity, result.num_communities)
"""

from repro.core.gala import gala, GalaConfig
from repro.core.leiden import leiden, LeidenResult
from repro.core.louvain import louvain, LouvainResult
from repro.core.phase1 import run_phase1, Phase1Config, Phase1Result
from repro.core.modularity import modularity
from repro.graph.csr import CSRGraph
from repro import obs

__version__ = "1.0.0"

__all__ = [
    "obs",
    "gala",
    "GalaConfig",
    "louvain",
    "LouvainResult",
    "run_phase1",
    "Phase1Config",
    "Phase1Result",
    "leiden",
    "LeidenResult",
    "modularity",
    "CSRGraph",
    "__version__",
]
