"""Serialization for the observability artifacts.

Three formats, all plain-text and tool-friendly:

* **trace** — one Chrome trace-event JSON object (load in Perfetto);
* **metrics** — JSON Lines, one record per engine iteration plus one
  ``{"kind": "summary"}`` record with the final registry snapshot;
* **manifest** — one pretty-printed JSON object per run
  (:class:`~repro.obs.manifest.RunManifest`).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, TextIO, Union

import numpy as np

from repro.obs.manifest import RunManifest


def _json_default(obj: Any) -> Any:
    """Make NumPy scalars/arrays and odd objects JSON-safe."""
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return repr(obj)


def dump_json(obj: Any, path: str, indent: Optional[int] = 2) -> None:
    with open(path, "w") as fh:
        json.dump(obj, fh, indent=indent, default=_json_default)
        fh.write("\n")


def save_manifest(manifest: RunManifest, path: str) -> None:
    dump_json(manifest.to_dict(), path)


def load_manifest(path: str) -> RunManifest:
    with open(path) as fh:
        return RunManifest.from_dict(json.load(fh))


class MetricsWriter:
    """Buffered JSON-Lines writer for the per-iteration metrics stream."""

    def __init__(self, path: str):
        self.path = path
        self._fh: Optional[TextIO] = open(path, "w")

    def write(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            raise ValueError(f"metrics writer for {self.path} already closed")
        json.dump(record, self._fh, default=_json_default)
        self._fh.write("\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_metrics_jsonl(path: str) -> List[Dict[str, Any]]:
    """All records of a metrics JSONL file."""
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


def iter_metrics_jsonl(path: str) -> Iterator[Dict[str, Any]]:
    with open(path) as fh:
        for line in fh:
            if line.strip():
                yield json.loads(line)


# --------------------------------------------------------------------- #
# trace validation (used by the schema tests and `repro report --check`)
# --------------------------------------------------------------------- #
_VALID_PHASES = {"X", "B", "E", "i", "I", "C", "M", "s", "t", "f"}


def validate_chrome_trace(trace: Union[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Validate a Chrome trace-event object (or file path).

    Checks the containment contract Perfetto relies on: a ``traceEvents``
    list where every event has a name, a known phase, integer-like
    non-negative timestamps, and — for complete events — a non-negative
    duration. Returns the parsed object; raises ``ValueError`` on the
    first violation.
    """
    if isinstance(trace, str):
        with open(trace) as fh:
            trace = json.load(fh)
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be an object with a 'traceEvents' list")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for i, ev in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                raise ValueError(f"event {i} missing required key {key!r}")
        if ev["ph"] not in _VALID_PHASES:
            raise ValueError(f"event {i} has unknown phase {ev['ph']!r}")
        if ev["ph"] == "M":
            continue
        if not isinstance(ev.get("ts"), (int, float)) or ev["ts"] < 0:
            raise ValueError(f"event {i} has invalid ts {ev.get('ts')!r}")
        if ev["ph"] == "X":
            if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
                raise ValueError(f"event {i} has invalid dur {ev.get('dur')!r}")
    return trace
