"""Hierarchical span tracer emitting Chrome trace-event JSON.

The tracer records *complete* events (``"ph": "X"``) with microsecond
timestamps, the format Perfetto and ``chrome://tracing`` load natively:
nesting is inferred from timestamp containment on the same track, so a
``span()`` opened inside another span renders as its child without any
explicit parent bookkeeping. Spans carry free-form ``args`` tags (bytes
moved, kernel chosen, iteration number ...) that show up in the trace
viewer's detail pane.

Two cost regimes:

* **enabled** — each span is one ``perf_counter`` pair and one tuple
  appended to a shared list (``list.append`` is atomic under the GIL, so
  the tracer tolerates threaded use without a hot-path lock);
* **disabled** — the module-level :data:`NULL_TRACER` returns one shared
  no-op context manager from every call, so an instrumented hot path
  allocates nothing and branches once per span when tracing is off.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional


class _NullSpan:
    """Shared no-op context manager handed out when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def tag(self, **args: Any) -> None:
        """No-op counterpart of :meth:`_Span.tag`."""


#: the singleton no-op span (identity-tested: disabled tracing must hand
#: back the same object every call — zero allocations on the hot path)
NULL_SPAN = _NullSpan()


class _Span:
    """One live span; records a complete event when the context exits."""

    __slots__ = ("_tracer", "name", "args", "_start")

    def __init__(self, tracer: "Tracer", name: str, args: Optional[dict]):
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start = 0.0

    def tag(self, **args: Any) -> None:
        """Attach tags decided mid-span (e.g. the branch that was taken)."""
        if self.args is None:
            self.args = args
        else:
            self.args.update(args)

    def __enter__(self) -> "_Span":
        self._start = self._tracer._clock()
        return self

    def __exit__(self, *exc: object) -> None:
        self._tracer._record(self.name, self._start, self._tracer._clock(), self.args)


class Tracer:
    """Thread-safe span recorder; serializes to Chrome trace-event JSON."""

    def __init__(self, process_name: str = "repro"):
        self.process_name = process_name
        self._clock = time.perf_counter
        self._t0 = self._clock()
        #: raw records ``(ph, name, start, end, os_thread_ident, args)`` —
        #: kept as tuples on the hot path and appended without a lock
        #: (``list.append`` is atomic under the GIL); the Chrome event
        #: dicts and the small per-thread track ids are built lazily in
        #: :meth:`events`, so a span costs one tuple append
        self._raw: List[tuple] = []
        #: spans adopted from other processes (:meth:`ingest`) — wire
        #: dicts whose times are already in *this* tracer's clock domain
        self._foreign: List[Dict[str, Any]] = []
        #: process labels for foreign pids, rendered as ``process_name``
        #: metadata so Perfetto names the extra tracks
        self._labels: Dict[int, str] = {}

    @property
    def enabled(self) -> bool:
        return True

    # ------------------------------------------------------------------ #
    def _record(self, name: str, start: float, end: float, args: Optional[dict]) -> None:
        self._raw.append(("X", name, start, end, threading.get_ident(), args))

    # ------------------------------------------------------------------ #
    def span(self, name: str, **args: Any) -> _Span:
        """Context manager timing one named span.

        ``name`` uses ``category/detail`` form (``engine/decide``,
        ``nccl/allreduce``); the prefix becomes the Chrome ``cat`` field.
        """
        return _Span(self, name, args or None)

    def instant(self, name: str, **args: Any) -> None:
        """Record a zero-duration marker event."""
        now = self._clock()
        self._raw.append(("i", name, now, now, threading.get_ident(), args or None))

    def counter(self, name: str, **values: float) -> None:
        """Record a counter sample (renders as a stacked area track)."""
        now = self._clock()
        self._raw.append(("C", name, now, now, threading.get_ident(), values))

    # ------------------------------------------------------------------ #
    # cross-process span transport
    # ------------------------------------------------------------------ #
    def ingest(
        self,
        spans: Iterable[Dict[str, Any]],
        labels: Optional[Dict[int, str]] = None,
    ) -> None:
        """Adopt spans recorded in another process.

        ``spans`` are wire dicts (``name``/``ph``/``start``/``end``/
        ``pid``/``tid``, optional ``args``) whose ``start``/``end`` are
        absolute seconds **already mapped into this tracer's clock
        domain** — the caller applies the clock-sync offset before
        ingesting. ``labels`` names the foreign pids for the trace
        viewer (``{pid: "rank[0]"}``).
        """
        if labels:
            self._labels.update({int(k): str(v) for k, v in labels.items()})
        for span in spans:
            self._foreign.append(span)

    def export_spans(self, limit: int = 4096) -> Dict[str, Any]:
        """This tracer's spans as a portable payload.

        Wire times are absolute ``perf_counter`` seconds in *this*
        process's clock domain; the receiver shifts them by its clock
        offset and hands them to :meth:`ingest` on its own tracer.
        Already-ingested foreign spans are passed through unchanged (a
        worker relays its ranks' spans to the server this way), so the
        payload may span several pids. At most ``limit`` spans ship;
        the rest are counted in ``dropped``.
        """
        own_pid = os.getpid()
        spans: List[Dict[str, Any]] = []
        tids: Dict[int, int] = {}
        for ph, name, start, end, ident, args in list(self._raw):
            tid = tids.get(ident)
            if tid is None:
                tid = tids[ident] = len(tids)
            span: Dict[str, Any] = {
                "name": name,
                "ph": ph,
                "start": start,
                "end": end,
                "pid": own_pid,
                "tid": tid,
            }
            if args is not None:
                span["args"] = args
            spans.append(span)
        spans.extend(self._foreign)
        dropped = max(0, len(spans) - limit)
        if dropped:
            spans = spans[:limit]
        labels = dict(self._labels)
        labels.setdefault(own_pid, self.process_name)
        return {"spans": spans, "labels": labels, "dropped": dropped}

    # ------------------------------------------------------------------ #
    def events(self) -> List[Dict[str, Any]]:
        """Recorded events as Chrome dicts (chronological append order).

        OS thread identifiers compress to stable small track ids here
        (track 0 = first thread to record an event).
        """
        raw = list(self._raw)
        t0 = self._t0
        tids: Dict[int, int] = {}
        events: List[Dict[str, Any]] = []
        for ph, name, start, end, ident, args in raw:
            tid = tids.get(ident)
            if tid is None:
                tid = tids[ident] = len(tids)
            event: Dict[str, Any] = {
                "name": name,
                "ph": ph,
                "ts": (start - t0) * 1e6,
                "pid": 0,
                "tid": tid,
                "cat": name.split("/", 1)[0],
            }
            if ph == "X":
                event["dur"] = (end - start) * 1e6
            elif ph == "i":
                event["s"] = "t"
            if args is not None:
                event["args"] = (
                    {k: float(v) for k, v in args.items()} if ph == "C" else args
                )
            events.append(event)
        for span in list(self._foreign):
            event = {
                "name": span["name"],
                "ph": span.get("ph", "X"),
                "ts": (span["start"] - t0) * 1e6,
                "pid": span.get("pid", 0),
                "tid": span.get("tid", 0),
                "cat": span.get("cat", span["name"].split("/", 1)[0]),
            }
            if event["ph"] == "X":
                event["dur"] = (span["end"] - span["start"]) * 1e6
            elif event["ph"] == "i":
                event["s"] = "t"
            if span.get("args") is not None:
                event["args"] = span["args"]
            events.append(event)
        return events

    def to_chrome(self) -> Dict[str, Any]:
        """The full Chrome trace-event JSON object."""
        events = self.events()
        meta = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": self.process_name},
            }
        ]
        for pid in sorted(self._labels):
            meta.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": self._labels[pid]},
                }
            )
        return {
            "traceEvents": meta + events,
            "displayTimeUnit": "ms",
        }

    def write(self, path: str) -> None:
        """Write the trace to ``path`` (open in Perfetto / chrome://tracing)."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh)

    def __len__(self) -> int:
        return len(self._raw)


class NullTracer:
    """Disabled tracer: every call is a no-op returning shared singletons."""

    process_name = "null"

    @property
    def enabled(self) -> bool:
        return False

    def span(self, name: str, **args: Any) -> _NullSpan:
        return NULL_SPAN

    def instant(self, name: str, **args: Any) -> None:
        return None

    def counter(self, name: str, **values: float) -> None:
        return None

    def ingest(
        self,
        spans: Iterable[Dict[str, Any]],
        labels: Optional[Dict[int, str]] = None,
    ) -> None:
        return None

    def export_spans(self, limit: int = 4096) -> Dict[str, Any]:
        return {"spans": [], "labels": {}, "dropped": 0}

    def events(self) -> List[Dict[str, Any]]:
        return []

    def __len__(self) -> int:
        return 0


#: module-level disabled tracer; ``repro.obs.tracer()`` returns this when
#: no session is active so call sites never need a None check
NULL_TRACER = NullTracer()
