"""Live telemetry primitives: mergeable histograms, windows, SLOs.

The PR-4 observability layer materializes *after* a run: traces and
manifests are written when the engine finishes. A serving process never
finishes, so its telemetry has to be readable while the process runs —
and aggregable across processes, because the serve stack spans three
tiers (server, subprocess workers, rank processes).

Two properties drive the design here:

* **exact cross-process merging** — :class:`BucketHistogram` uses one
  fixed, log-spaced bucket ladder shared by every process. Merging two
  histograms is element-wise addition of bucket counts, so a quantile
  computed from a merged histogram equals the quantile of the merged
  stream: p50/p95/p99 reported by the server are exactly what a single
  observer of all workers would have measured (to bucket resolution).
  The PR-4 reservoir histograms cannot do this — two reservoirs do not
  merge into the reservoir of the union.
* **"right now", not "since boot"** — :class:`SlidingWindowHistogram`
  keeps the ladder per time slot and expires whole slots, so the p99 the
  SLO monitor evaluates covers the last window, not the whole uptime.
  The cumulative ladder is kept too: Prometheus histogram samples must
  be monotone counters (scrapers apply ``rate()`` themselves).

:class:`SloMonitor` evaluates a parsed ``p99_ms=...,error_rate=...``
policy (:func:`parse_slo_spec`) against the windows and reports status
transitions — the thing ``/healthz`` flips on and the structured
``slo_violation`` event fires from.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = [
    "BUCKET_BOUNDS_MS",
    "BucketHistogram",
    "SlidingWindowHistogram",
    "WindowedCounter",
    "SloPolicy",
    "SloMonitor",
    "parse_slo_spec",
]


def _log_bounds(lo: float, hi: float, per_decade: int) -> List[float]:
    """Upper bucket bounds ``lo * 10^(i/per_decade)`` up through ``hi``."""
    bounds = []
    i = 0
    while True:
        b = lo * 10.0 ** (i / per_decade)
        bounds.append(b)
        if b >= hi:
            return bounds
        i += 1


#: the shared bucket ladder for latency-in-milliseconds histograms:
#: 1 µs .. 10 min in 8 log-spaced buckets per decade (ratio ~1.33x —
#: a quantile read off the ladder is within one bucket, <= 33%, of the
#: exact stream quantile). Every process uses this exact ladder, which
#: is what makes cross-process percentile merging exact.
BUCKET_BOUNDS_MS: tuple = tuple(_log_bounds(1e-3, 6e5, 8))


class BucketHistogram:
    """Fixed-bound bucket histogram; merges exactly across processes.

    ``bounds[i]`` is the *upper* bound of bucket ``i`` (Prometheus
    ``le`` semantics); one overflow bucket catches the rest. Counts,
    ``sum`` and ``count`` are exact; :meth:`quantile` returns the upper
    bound of the bucket the target rank falls in — a deterministic,
    merge-stable estimate.
    """

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Sequence[float] = BUCKET_BOUNDS_MS):
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # +1: overflow
        self.count = 0
        self.total = 0.0

    def _index(self, v: float) -> int:
        # binary search for the first bound >= v
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.bounds[mid] < v:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def observe(self, v: float) -> None:
        v = float(v)
        self.counts[self._index(v)] += 1
        self.count += 1
        self.total += v

    def merge(self, other: "BucketHistogram") -> None:
        """Element-wise addition — the exact merge of the two streams."""
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile rank.

        ``q`` in [0, 1]; 0.0 when empty. Overflow samples report the
        last finite bound (the ladder top is far above any sane
        latency, so this only under-reports pathological outliers).
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, c in enumerate(self.counts):
            cumulative += c
            if cumulative >= rank and c:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def to_wire(self) -> Dict[str, Any]:
        """Compact cross-process form (sparse: only non-zero buckets)."""
        return {
            "counts": {
                str(i): c for i, c in enumerate(self.counts) if c
            },
            "count": self.count,
            "sum": self.total,
        }

    @classmethod
    def from_wire(cls, wire: Dict[str, Any],
                  bounds: Sequence[float] = BUCKET_BOUNDS_MS) -> "BucketHistogram":
        h = cls(bounds)
        for i, c in wire.get("counts", {}).items():
            h.counts[int(i)] = int(c)
        h.count = int(wire.get("count", 0))
        h.total = float(wire.get("sum", 0.0))
        return h


class SlidingWindowHistogram:
    """Bucket histogram over the trailing ``window_s`` seconds.

    The window is ``slots`` sub-intervals; an observation lands in the
    current slot and whole slots expire as time advances — O(slots)
    worst case per observe, O(1) amortized. :meth:`window` merges the
    live slots into one :class:`BucketHistogram`; :attr:`cumulative`
    never resets (the Prometheus-exposition view).
    """

    def __init__(
        self,
        window_s: float = 60.0,
        slots: int = 6,
        bounds: Sequence[float] = BUCKET_BOUNDS_MS,
        clock: Callable[[], float] = time.monotonic,
    ):
        if window_s <= 0 or slots < 1:
            raise ValueError("window_s must be > 0 and slots >= 1")
        self.window_s = float(window_s)
        self.slots = slots
        self.bounds = tuple(bounds)
        self._slot_s = self.window_s / slots
        self._clock = clock
        self._ring: List[BucketHistogram] = [
            BucketHistogram(self.bounds) for _ in range(slots)
        ]
        self._slot_epoch: List[int] = [-1] * slots
        self.cumulative = BucketHistogram(self.bounds)

    def _slot_for(self, now: float) -> BucketHistogram:
        epoch = int(now / self._slot_s)
        idx = epoch % self.slots
        if self._slot_epoch[idx] != epoch:
            self._ring[idx] = BucketHistogram(self.bounds)
            self._slot_epoch[idx] = epoch
        return self._ring[idx]

    def observe(self, v: float) -> None:
        self._slot_for(self._clock()).observe(v)
        self.cumulative.observe(v)

    def window(self) -> BucketHistogram:
        """The merged histogram of the non-expired slots."""
        now_epoch = int(self._clock() / self._slot_s)
        merged = BucketHistogram(self.bounds)
        for idx in range(self.slots):
            epoch = self._slot_epoch[idx]
            if epoch >= 0 and now_epoch - epoch < self.slots:
                merged.merge(self._ring[idx])
        return merged

    def snapshot(self) -> Dict[str, Any]:
        return {
            "window": self.window().snapshot(),
            "cumulative": self.cumulative.snapshot(),
        }


class WindowedCounter:
    """Counter over the trailing window (same slot scheme as above)."""

    def __init__(
        self,
        window_s: float = 60.0,
        slots: int = 6,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.window_s = float(window_s)
        self.slots = slots
        self._slot_s = self.window_s / slots
        self._clock = clock
        self._ring = [0.0] * slots
        self._slot_epoch = [-1] * slots
        self.total = 0.0

    def add(self, n: float = 1.0) -> None:
        now = self._clock()
        epoch = int(now / self._slot_s)
        idx = epoch % self.slots
        if self._slot_epoch[idx] != epoch:
            self._ring[idx] = 0.0
            self._slot_epoch[idx] = epoch
        self._ring[idx] += n
        self.total += n

    def window_total(self) -> float:
        now_epoch = int(self._clock() / self._slot_s)
        return sum(
            self._ring[idx]
            for idx in range(self.slots)
            if self._slot_epoch[idx] >= 0
            and now_epoch - self._slot_epoch[idx] < self.slots
        )

    def rate_per_s(self) -> float:
        return self.window_total() / self.window_s


# --------------------------------------------------------------------- #
# SLO policy + monitor
# --------------------------------------------------------------------- #
@dataclass
class SloPolicy:
    """The targets one serving session promises (None = not tracked)."""

    #: rolling-window p99 request latency ceiling, milliseconds
    p99_ms: Optional[float] = None
    #: rolling-window error-rate ceiling in [0, 1] (errors / requests)
    error_rate: Optional[float] = None
    #: evaluation window in seconds
    window_s: float = 60.0
    #: below this many requests in the window the monitor stays/returns
    #: healthy — an empty window has no p99 to violate
    min_requests: int = 1

    @property
    def enabled(self) -> bool:
        return self.p99_ms is not None or self.error_rate is not None


def parse_slo_spec(spec: str, window_s: float = 60.0) -> SloPolicy:
    """Parse the CLI form ``p99_ms=250,error_rate=0.01``.

    Keys: ``p99_ms`` (milliseconds), ``error_rate`` (fraction in
    [0, 1]), ``min_requests``. Unknown keys are an error — a typoed SLO
    that silently never fires is worse than no SLO.
    """
    policy = SloPolicy(window_s=window_s)
    for part in filter(None, (p.strip() for p in spec.split(","))):
        if "=" not in part:
            raise ValueError(f"bad SLO term {part!r}; expected key=value")
        key, _, value = part.partition("=")
        key = key.strip()

        def number(cast):
            try:
                return cast(value)
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"bad SLO value for {key!r}: {value!r}"
                ) from exc

        if key == "p99_ms":
            policy.p99_ms = number(float)
        elif key == "error_rate":
            policy.error_rate = number(float)
            if not (0.0 <= policy.error_rate <= 1.0):
                raise ValueError("error_rate must be in [0, 1]")
        elif key == "min_requests":
            policy.min_requests = number(int)
        else:
            raise ValueError(
                f"unknown SLO key {key!r}; expected p99_ms, "
                "error_rate, or min_requests"
            )
    if not policy.enabled:
        raise ValueError(f"SLO spec {spec!r} sets no target")
    return policy


class SloMonitor:
    """Rolling-window SLO evaluator with transition events.

    :meth:`evaluate` recomputes the window stats and returns the current
    status dict; when the session transitions healthy -> violating, the
    ``on_violation`` sink fires once with the structured event (the
    ``slo_violation`` log line / metric bump), and again only after the
    session has recovered in between. ``violations`` counts transitions,
    not violating evaluations.
    """

    def __init__(
        self,
        policy: SloPolicy,
        latency: SlidingWindowHistogram,
        requests: WindowedCounter,
        errors: WindowedCounter,
        on_violation: Optional[Callable[[Dict[str, Any]], None]] = None,
        clock: Callable[[], float] = time.time,
    ):
        self.policy = policy
        self.latency = latency
        self.requests = requests
        self.errors = errors
        self.on_violation = on_violation
        self._clock = clock
        self.healthy = True
        self.violations = 0
        self.last_event: Optional[Dict[str, Any]] = None

    def evaluate(self) -> Dict[str, Any]:
        policy = self.policy
        window = self.latency.window()
        n_requests = self.requests.window_total()
        n_errors = self.errors.window_total()
        p99 = window.quantile(0.99)
        error_rate = n_errors / n_requests if n_requests else 0.0
        breaches: List[Dict[str, Any]] = []
        if n_requests >= policy.min_requests:
            if policy.p99_ms is not None and p99 > policy.p99_ms:
                breaches.append(
                    {"slo": "p99_ms", "target": policy.p99_ms, "actual": p99}
                )
            if policy.error_rate is not None and error_rate > policy.error_rate:
                breaches.append(
                    {"slo": "error_rate", "target": policy.error_rate,
                     "actual": round(error_rate, 6)}
                )
        status = {
            "healthy": not breaches,
            "window_s": policy.window_s,
            "window_requests": int(n_requests),
            "window_errors": int(n_errors),
            "window_p99_ms": p99,
            "window_error_rate": round(error_rate, 6),
            "breaches": breaches,
            "violations": self.violations,
        }
        if breaches and self.healthy:
            self.violations += 1
            status["violations"] = self.violations
            event = {
                "event": "slo_violation",
                "unix_time": self._clock(),
                **{k: status[k] for k in (
                    "window_s", "window_requests", "window_errors",
                    "window_p99_ms", "window_error_rate", "breaches",
                )},
            }
            self.last_event = event
            if self.on_violation is not None:
                self.on_violation(event)
        self.healthy = not breaches
        return status

    def report(self) -> Dict[str, Any]:
        """The drain-manifest summary of the session's SLO history."""
        status = self.evaluate()
        return {
            "policy": {
                "p99_ms": self.policy.p99_ms,
                "error_rate": self.policy.error_rate,
                "window_s": self.policy.window_s,
            },
            "healthy": status["healthy"],
            "violations": self.violations,
            "last_event": self.last_event,
        }
