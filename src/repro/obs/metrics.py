"""Namespaced metrics registry: counters, gauges, reservoir histograms.

One registry per observability session collects every runtime's
accounting under slash-namespaced names (``engine/iterations``,
``gpusim/cycles/compute``, ``comm/halo_bytes`` ...). The *bridges* fold
the repo's pre-existing instrumentation — :class:`SimProfiler` cycle
buckets, :class:`TimerRegistry` wall-clock totals, NCCL byte counters —
into the same snapshot, so the numbers in a metrics export are exactly
the numbers those subsystems report (tested invariant: the bridge copies
values, it never re-measures).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Union

Number = Union[int, float]


class Counter:
    """Monotonically accumulating value (ints or float seconds/bytes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def add(self, n: Number = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {n})")
        self.value += n


class Gauge:
    """Last-written value (cumulative snapshots, sizes, configuration)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def set(self, v: Number) -> None:
        self.value = v


class Histogram:
    """Streaming distribution with a bounded deterministic reservoir.

    Keeps exact ``count``/``sum``/``min``/``max`` and a reservoir of up to
    ``capacity`` samples for percentile estimates. Replacement is
    deterministic (a multiplicative-congruential index), so two identical
    runs produce identical snapshots — the property every other accounting
    layer in this repo guarantees, kept here too.
    """

    __slots__ = ("name", "capacity", "count", "total", "min", "max",
                 "_reservoir", "_rng_state")

    def __init__(self, name: str, capacity: int = 512):
        if capacity < 1:
            raise ValueError("histogram capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._reservoir: List[float] = []
        self._rng_state = 0x9E3779B9

    def observe(self, v: Number) -> None:
        v = float(v)
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        if len(self._reservoir) < self.capacity:
            self._reservoir.append(v)
            return
        # deterministic reservoir sampling: LCG draw in [0, count)
        self._rng_state = (self._rng_state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        j = self._rng_state % self.count
        if j < self.capacity:
            self._reservoir[j] = v

    def percentile(self, q: float) -> float:
        """Reservoir percentile (``q`` in [0, 100]); 0.0 when empty."""
        if not self._reservoir:
            return 0.0
        if not (0.0 <= q <= 100.0):
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self._reservoir)
        idx = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[idx]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Thread-safe named collection of counters, gauges, and histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                self._check_free(name, self._counters)
                c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                self._check_free(name, self._gauges)
                g = self._gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str, capacity: int = 512) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                self._check_free(name, self._histograms)
                h = self._histograms[name] = Histogram(name, capacity)
            return h

    def _check_free(self, name: str, own: dict) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not own and name in kind:
                raise ValueError(
                    f"metric name {name!r} already registered as a different kind"
                )

    # convenience one-liners ------------------------------------------- #
    def inc(self, name: str, n: Number = 1) -> None:
        self.counter(name).add(n)

    def set(self, name: str, v: Number) -> None:
        self.gauge(name).set(v)

    def observe(self, name: str, v: Number) -> None:
        self.histogram(name).observe(v)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict snapshot: ``{"counters": {...}, "gauges": {...},
        "histograms": {name: {count, sum, ...}}}`` — JSON-serializable."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in sorted(self._counters.items())},
                "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
                "histograms": {
                    k: h.snapshot() for k, h in sorted(self._histograms.items())
                },
            }

    # bridges from the pre-existing instrumentation -------------------- #
    def bridge_timers(self, timers, prefix: str = "time") -> None:
        """Accumulate a :class:`~repro.utils.timer.TimerRegistry`'s totals.

        Each engine run owns a fresh registry, so bridging *adds* —
        multi-round pipelines (Louvain levels) sum to the whole-run total.
        Values are copied from ``Timer.total`` verbatim, never re-measured.
        """
        for name, timer in timers.timers.items():
            self.counter(f"{prefix}/{name}_seconds").add(timer.total)
            self.counter(f"{prefix}/{name}_intervals").add(timer.count)

    def bridge_sim_profiler(self, profiler, prefix: str = "gpusim") -> None:
        """Mirror a :class:`~repro.gpusim.profiler.SimProfiler` snapshot.

        Profilers accumulate for the lifetime of their device, so the
        bridge *sets gauges* to the cumulative values — re-bridging after
        every engine run converges on exactly ``profiler.snapshot()``.
        """
        for bucket, cycles in profiler.cycles.items():
            self.gauge(f"{prefix}/cycles/{bucket}").set(cycles)
        for name, n in profiler.counters.items():
            self.gauge(f"{prefix}/counters/{name}").set(n)
        self.gauge(f"{prefix}/total_cycles").set(profiler.total_cycles)

    def bridge_devices(self, devices: Iterable, prefix: str = "gpusim") -> None:
        """Bridge a set of simulated devices: per-device and merged views."""
        from repro.gpusim.profiler import SimProfiler

        devices = list(devices)
        merged = SimProfiler()
        for dev in devices:
            merged.merge(dev.profiler)
            if len(devices) > 1:
                self.bridge_sim_profiler(
                    dev.profiler, prefix=f"{prefix}/dev{dev.device_id}"
                )
        if devices:
            self.bridge_sim_profiler(merged, prefix=prefix)

    def bridge_halo(self, stats, prefix: str = "comm") -> None:
        """Mirror a distributed run's cumulative :class:`HaloStats`."""
        self.gauge(f"{prefix}/halo_bytes").set(stats.bytes_sent)
        self.gauge(f"{prefix}/halo_messages").set(stats.messages)

    def bridge_result_cache(self, cache, prefix: str = "serve/cache") -> None:
        """Mirror a serving-layer :class:`~repro.serve.cache.ResultCache`.

        The cache keeps exact cumulative counters for its whole lifetime
        (like a device profiler), so the bridge *sets gauges* to the
        current ``cache.stats()`` values — re-bridging converges on
        exactly the cache's own numbers, never re-measures.
        """
        for name, value in cache.stats().items():
            self.gauge(f"{prefix}/{name}").set(value)

    def bridge_arena(self, arena, prefix: str = "arena") -> None:
        """Accumulate a :class:`~repro.core.arena.BufferArena`'s counters.

        Arenas are per-engine-run (like timer registries), so the bridge
        *adds* the counters — multi-level pipelines sum to the whole-run
        total — while ``hwm`` keeps the maximum across bridged arenas.
        Values are copied from ``arena.stats()`` verbatim, never
        re-measured.
        """
        stats = arena.stats()
        self.counter(f"{prefix}/allocs").add(stats["allocs"])
        self.counter(f"{prefix}/reuses").add(stats["reuses"])
        self.counter(f"{prefix}/bytes_reused").add(stats["bytes_reused"])
        hwm = self.gauge(f"{prefix}/hwm")
        if stats["hwm"] > hwm.value:
            hwm.set(stats["hwm"])
