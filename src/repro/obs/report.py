"""Render and diff run manifests (the ``repro report`` subcommand).

One manifest renders as a per-level breakdown (the hierarchy's shape and
cost) plus a per-phase breakdown (where wall-clock and simulated cycles
went). Two manifests additionally render a diff table — cycles, bytes,
iterations, Q — the before/after comparison every perf PR needs to make.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from repro.obs.manifest import RunManifest


def _level_rows(manifest: RunManifest) -> List[Dict[str, Any]]:
    rows = []
    for lvl in manifest.levels:
        timers = lvl.get("timers", {})
        rows.append(
            {
                "level": lvl["level"],
                "n": lvl["n"],
                "edges": lvl["num_edges"],
                "iters": lvl["iterations"],
                "moved": lvl["moved"],
                "Q": round(lvl["modularity"], 5),
                "sim_cycles": lvl["sim_cycles"],
                "comm_bytes": lvl["comm_bytes"],
                "decide_s": round(timers.get("decide_and_move", 0.0), 4),
            }
        )
    return rows


def _phase_rows(manifest: RunManifest) -> List[Dict[str, Any]]:
    """Aggregate wall-clock phases across levels, with shares."""
    totals: Dict[str, float] = {}
    for lvl in manifest.levels:
        for name, seconds in lvl.get("timers", {}).items():
            totals[name] = totals.get(name, 0.0) + seconds
    grand = sum(totals.values()) or 1.0
    return [
        {
            "phase": name,
            "seconds": round(seconds, 4),
            "share": f"{100.0 * seconds / grand:.1f}%",
        }
        for name, seconds in sorted(totals.items(), key=lambda kv: -kv[1])
    ]


def _cycle_rows(manifest: RunManifest) -> List[Dict[str, Any]]:
    """Simulated-cycle buckets from the metrics snapshot, with shares."""
    gauges = manifest.metrics.get("gauges", {})
    buckets = {
        name.removeprefix("gpusim/cycles/"): value
        for name, value in gauges.items()
        if name.startswith("gpusim/cycles/")
    }
    grand = sum(buckets.values()) or 1.0
    return [
        {
            "bucket": name,
            "cycles": value,
            "share": f"{100.0 * value / grand:.1f}%",
        }
        for name, value in sorted(buckets.items(), key=lambda kv: -kv[1])
    ]


def _serve_lines(manifest: RunManifest) -> List[str]:
    """The serving-session section (manifests written by ``repro serve``)."""
    r = manifest.result
    histograms = manifest.metrics.get("histograms", {})

    def pct(name: str, q: str) -> float:
        return float(histograms.get(name, {}).get(q, 0.0))

    hits = int(r.get("cache_hits", 0))
    misses = int(r.get("cache_misses", 0))
    lines = [
        f"requests={r.get('requests', 0)} shed={r.get('shed', 0)} "
        f"timeouts={r.get('timeouts', 0)} errors={r.get('errors', 0)} "
        f"uptime={float(r.get('uptime_s') or 0.0):.1f}s "
        f"drain={'clean' if r.get('drained_clean') else 'forced'}",
        f"cache: hits={hits} misses={misses} "
        f"hit_rate={float(r.get('cache_hit_rate') or 0.0):.2f}",
        f"latency: p50={float(r.get('latency_p50_ms') or 0.0):.2f}ms "
        f"p99={float(r.get('latency_p99_ms') or 0.0):.2f}ms "
        f"(hit p50={pct('serve/hit_latency_ms', 'p50'):.2f}ms, "
        f"miss p50={pct('serve/miss_latency_ms', 'p50'):.2f}ms)",
    ]
    gauges = manifest.metrics.get("gauges", {})
    if "serve/registry/graphs" in gauges:
        lines.append(
            f"registry: graphs={int(gauges['serve/registry/graphs'])} "
            f"bytes={int(gauges.get('serve/registry/bytes', 0))} "
            f"evictions={int(gauges.get('serve/registry/evictions', 0))}"
        )
    live = r.get("live")
    if live and live.get("requests"):
        lines.append(
            f"live: requests={live['requests']} "
            f"p50={float(live.get('p50_ms') or 0.0):.2f}ms "
            f"p95={float(live.get('p95_ms') or 0.0):.2f}ms "
            f"p99={float(live.get('p99_ms') or 0.0):.2f}ms "
            f"(bucket histogram — matches /metrics exactly)"
        )
    slo = r.get("slo")
    if slo:
        policy = slo.get("policy") or {}
        targets = " ".join(
            f"{k}={v}" for k, v in policy.items() if v is not None
        )
        lines.append(
            f"slo: {'healthy' if slo.get('healthy') else 'VIOLATING'} "
            f"violations={slo.get('violations', 0)} ({targets})"
        )
    if r.get("traces_written"):
        lines.append(f"traces: {r['traces_written']} request trace(s) written")
    return lines


def render_manifest(manifest: RunManifest) -> str:
    """Human-readable report of one run."""
    from repro.bench.reporting import format_table

    g = manifest.graph
    lines = [
        f"run: {manifest.command or '(unknown command)'}",
        f"  runtime={manifest.runtime} seed={manifest.seed} "
        f"created={time.strftime('%Y-%m-%d %H:%M:%S', time.localtime(manifest.created_unix))}",
    ]
    if g:  # serving sessions have no single graph
        lines.append(
            f"  graph: {g.get('name')} n={g.get('n')} edges={g.get('num_edges')} "
            f"sha256={g.get('sha256')}"
        )
    lines += [
        f"  env: " + " ".join(f"{k}={v}" for k, v in manifest.environment.items()),
        "",
    ]
    if "requests" in manifest.result:  # a serving session, not one run
        lines += _serve_lines(manifest)
        return "\n".join(lines)
    modularity = manifest.result.get("modularity")
    headline = (
        f"modularity={modularity:.5f} " if modularity is not None
        else "modularity=n/a "
    )
    if manifest.result.get("partial"):
        headline += f"(partial; interrupted by {manifest.result.get('signal')}) "
    headline += (
        f"levels={manifest.result.get('num_levels')} "
        f"iterations={manifest.result.get('iterations')} "
        f"communities={manifest.result.get('num_communities')}"
    )
    lines.append(headline)
    backends: Dict[str, int] = {}
    compile_s = 0.0
    arena_allocs = None
    for lvl in manifest.levels:
        for name, count in (lvl.get("kernel_backends") or {}).items():
            backends[name] = backends.get(name, 0) + count
        compile_s += lvl.get("kernel_compile_s") or 0.0
        if lvl.get("arena_allocs") is not None:
            arena_allocs = (arena_allocs or 0) + lvl["arena_allocs"]
    if backends:
        line = "kernel: " + " ".join(
            f"{k}x{v}" for k, v in sorted(backends.items())
        )
        if compile_s:
            line += f" (compile {compile_s:.3f}s)"
        lines.append(line)
    counters = manifest.metrics.get("counters", {})
    gauges = manifest.metrics.get("gauges", {})
    if "arena/allocs" in counters:
        lines.append(
            f"arena: allocs={counters['arena/allocs']} "
            f"reuses={counters.get('arena/reuses', 0)} "
            f"bytes_reused={counters.get('arena/bytes_reused', 0)} "
            f"hwm={gauges.get('arena/hwm', 0)}"
        )
    elif arena_allocs is not None:
        lines.append(f"arena: allocs={arena_allocs}")
    if manifest.levels:
        lines += ["", format_table(_level_rows(manifest), title="per-level breakdown")]
    phase = _phase_rows(manifest)
    if phase:
        lines += ["", format_table(phase, title="per-phase wall clock")]
    cycles = _cycle_rows(manifest)
    if cycles:
        lines += ["", format_table(cycles, title="simulated cycle buckets")]
    san = manifest.sanitizer
    if san:
        counts = san.get("by_checker") or {}
        breakdown = (
            " ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            if counts
            else "clean"
        )
        lines += [
            "",
            f"sanitizer: mode={san.get('mode')} "
            f"findings={san.get('total', 0)} ({breakdown})",
        ]
    static = manifest.staticcheck
    if static:
        by_rule = static.get("by_rule") or {}
        breakdown = (
            " ".join(f"{k}={v}" for k, v in sorted(by_rule.items()))
            if by_rule
            else "clean"
        )
        lines += [
            "",
            f"staticcheck: findings={static.get('total', 0)} "
            f"waived={static.get('waived', 0)} ({breakdown})",
        ]
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# diffing
# --------------------------------------------------------------------- #
def _headline(manifest: RunManifest) -> Dict[str, float]:
    wall = sum(
        seconds
        for lvl in manifest.levels
        for seconds in lvl.get("timers", {}).values()
    )
    r = manifest.result
    return {
        "modularity": float(r.get("modularity") or 0.0),
        "iterations": float(r.get("iterations") or 0),
        "levels": float(r.get("num_levels") or 0),
        "sim_cycles": float(r.get("sim_cycles") or 0.0),
        "comm_bytes": float(r.get("comm_bytes") or 0),
        "wall_seconds": wall,
    }


def diff_manifests(a: RunManifest, b: RunManifest) -> List[Dict[str, Any]]:
    """Metric-by-metric comparison rows (``b`` relative to ``a``)."""
    ha, hb = _headline(a), _headline(b)
    rows = []
    for key in ha:
        va, vb = ha[key], hb[key]
        rows.append(
            {
                "metric": key,
                "a": round(va, 6),
                "b": round(vb, 6),
                "delta": round(vb - va, 6),
                "b/a": round(vb / va, 4) if va else float("inf") if vb else 1.0,
            }
        )
    # per-phase wall-clock deltas, where either run spent time
    ta = {r["phase"]: r["seconds"] for r in _phase_rows(a)}
    tb = {r["phase"]: r["seconds"] for r in _phase_rows(b)}
    for phase in sorted(set(ta) | set(tb)):
        va, vb = ta.get(phase, 0.0), tb.get(phase, 0.0)
        rows.append(
            {
                "metric": f"time/{phase}",
                "a": va,
                "b": vb,
                "delta": round(vb - va, 6),
                "b/a": round(vb / va, 4) if va else float("inf") if vb else 1.0,
            }
        )
    return rows


def render_diff(a: RunManifest, b: RunManifest) -> str:
    from repro.bench.reporting import format_table

    ga, gb = a.graph.get("sha256"), b.graph.get("sha256")
    lines = []
    if ga != gb:
        lines.append(
            f"WARNING: graphs differ (a: {a.graph.get('name')}/{ga}, "
            f"b: {b.graph.get('name')}/{gb}) — cost comparison is apples-to-oranges"
        )
    lines.append(
        format_table(
            diff_manifests(a, b),
            title=f"diff: a={a.command or 'run-a'}  vs  b={b.command or 'run-b'}",
        )
    )
    return "\n".join(lines)
