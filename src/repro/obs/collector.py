"""Cross-process trace collection: clock sync, span transport, merging.

The serve stack spans three process tiers — asyncio server, subprocess
worker, rank processes — each recording spans against its *own*
``time.perf_counter``. ``perf_counter`` origins are arbitrary per
process, so merging requires estimating each child's clock offset
relative to its parent. Two mechanisms, matched to the two transports:

* **request/reply handshake** (server ↔ worker): the job carries the
  parent's send timestamp; the reply carries the worker's receive and
  send timestamps; the parent stamps the reply's arrival. That is the
  classic NTP exchange: the true offset θ (``parent = worker + θ``) is
  bounded by ``t_send − t_job_recv ≤ θ ≤ t_recv − t_reply_send`` and
  :class:`ClockSync` uses the midpoint. The bounds give a *guarantee*,
  not just an estimate: any θ inside them maps the worker's service
  interval ``[t_job_recv, t_reply_send]`` strictly inside the parent's
  ``[t_send, t_recv]`` — so worker spans nest under the dispatch span
  by construction, no tolerance required.
* **barrier-release stamp** (worker ↔ rank): the multiprocess executor
  writes its ``perf_counter`` into a shared-memory slot immediately
  before releasing the round barrier; each rank reads the slot and its
  own clock right after waking. The rank's offset estimate errs only by
  the barrier wake latency, and errs in the direction that maps rank
  spans slightly *early* — still after the parent wrote the stamp, so
  rank spans stay inside the worker's engine span.

Spans travel as plain "wire dicts" (:meth:`Tracer.export_spans`):
``{name, ph, start, end, pid, tid, args?}`` with times in absolute
seconds of the sender's clock. :func:`shift_spans` maps them into the
receiver's domain; ``Tracer.ingest`` adopts them; and
:func:`build_request_trace` emits the final Chrome JSON with flow
events (phases ``s``/``t``/``f``) linking the tiers by trace id.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .tracer import Tracer

__all__ = [
    "ClockSync",
    "shift_spans",
    "make_span",
    "build_request_trace",
    "TraceCollector",
]


@dataclass(frozen=True)
class ClockSync:
    """Bounded clock-offset estimate mapping child time → parent time.

    ``offset_low ≤ θ ≤ offset_high`` holds exactly (assuming only that
    both clocks run forward); :attr:`offset` is the midpoint. The
    uncertainty equals the request round-trip minus the child's service
    time, typically well under a millisecond for a local pipe.
    """

    offset_low: float
    offset_high: float

    @classmethod
    def from_handshake(
        cls,
        t_send: float,
        t_child_recv: float,
        t_child_send: float,
        t_recv: float,
    ) -> "ClockSync":
        """Build from the four handshake timestamps.

        ``t_send``/``t_recv`` are parent-clock stamps bracketing the
        exchange; ``t_child_recv``/``t_child_send`` are child-clock
        stamps bracketing the child's service interval.
        """
        return cls(
            offset_low=t_send - t_child_recv,
            offset_high=t_recv - t_child_send,
        )

    @property
    def offset(self) -> float:
        return (self.offset_low + self.offset_high) / 2.0

    @property
    def uncertainty(self) -> float:
        return max(0.0, self.offset_high - self.offset_low)


def shift_spans(
    spans: List[Dict[str, Any]], offset: float
) -> List[Dict[str, Any]]:
    """Map wire spans from the sender's clock domain into the receiver's."""
    shifted = []
    for span in spans:
        out = dict(span)
        out["start"] = span["start"] + offset
        out["end"] = span["end"] + offset
        shifted.append(out)
    return shifted


def make_span(
    name: str,
    start: float,
    end: float,
    pid: Optional[int] = None,
    tid: int = 0,
    args: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One wire span. ``pid`` defaults to the calling process."""
    span: Dict[str, Any] = {
        "name": name,
        "ph": "X",
        "start": start,
        "end": end,
        "pid": os.getpid() if pid is None else pid,
        "tid": tid,
    }
    if args:
        span["args"] = args
    return span


def _flow_id(trace_id: str) -> int:
    """Stable small integer flow id for a trace id string."""
    return zlib.crc32(trace_id.encode()) & 0x7FFFFFFF


def build_request_trace(
    tracer: Tracer, trace_id: str, request_id: str
) -> Dict[str, Any]:
    """The merged per-request Chrome trace with cross-pid flow links.

    Takes the request's tracer (server spans local, worker/rank spans
    ingested) and appends one flow chain: a flow-start (``ph: "s"``) on
    the earliest span of the server pid, flow-steps (``"t"``) on the
    earliest span of each other pid in time order, and a flow-end
    (``"f"``) on the last of those — all sharing the id derived from
    ``trace_id``, which is how Perfetto draws the arrows connecting
    ``serve.request → worker.detect → rank[k].decide`` across process
    tracks.
    """
    chrome = tracer.to_chrome()
    events = chrome["traceEvents"]
    # earliest complete event per pid anchors that tier's flow node
    anchors: Dict[int, Dict[str, Any]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        pid = event["pid"]
        best = anchors.get(pid)
        if best is None or event["ts"] < best["ts"]:
            anchors[pid] = event
    ordered = sorted(anchors.values(), key=lambda e: e["ts"])
    flow = []
    fid = _flow_id(trace_id)
    for i, anchor in enumerate(ordered):
        if i == 0:
            ph = "s"
        elif i == len(ordered) - 1:
            ph = "f"
        else:
            ph = "t"
        flow.append(
            {
                "name": "request",
                "cat": "flow",
                "ph": ph,
                "id": fid,
                "ts": anchor["ts"],
                "pid": anchor["pid"],
                "tid": anchor["tid"],
            }
        )
    if len(flow) < 2:
        flow = []  # a single-tier trace has nothing to link
    chrome["traceEvents"] = events + flow
    chrome["metadata"] = {"trace_id": trace_id, "request_id": request_id}
    return chrome


_SAFE_ID = re.compile(r"[^a-zA-Z0-9_-]")


class TraceCollector:
    """Writes one merged Chrome trace file per traced request.

    Files land in ``trace_dir`` as ``req-<seq>-<trace_id>.trace.json``
    (sequence keeps listings chronological; the trace id makes the file
    greppable from a log line). ``keep`` caps retained files so a
    long-lived server does not fill the disk: the oldest traces are
    unlinked once the cap is exceeded.
    """

    def __init__(self, trace_dir: str, keep: int = 256):
        self.trace_dir = trace_dir
        self.keep = keep
        self.written = 0
        self._paths: List[str] = []
        os.makedirs(trace_dir, exist_ok=True)

    def write(self, seq: int, trace_id: str, chrome: Dict[str, Any]) -> str:
        safe = _SAFE_ID.sub("_", trace_id)
        path = os.path.join(
            self.trace_dir, f"req-{seq:06d}-{safe}.trace.json"
        )
        with open(path, "w") as fh:
            json.dump(chrome, fh)
        self.written += 1
        self._paths.append(path)
        while len(self._paths) > self.keep:
            stale = self._paths.pop(0)
            try:
                os.unlink(stale)
            except OSError:
                pass
        return path
