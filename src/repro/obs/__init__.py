"""``repro.obs`` — unified tracing, metrics, and run manifests.

The repo's cost accounting was historically fragmented: simulated cycles
in :class:`~repro.gpusim.profiler.SimProfiler`, wall clock in
:class:`~repro.utils.timer.TimerRegistry`, per-iteration schema in
:class:`~repro.core.engine.IterationTrace`, NCCL bytes in device
counters. This package is the one layer that sees a run end-to-end:

* :func:`session` activates observability for a scope; inside it, every
  runtime (local, multi-GPU, distributed, gpusim kernels, NCCL
  collectives, halo exchange) emits **spans** into one Chrome trace-event
  file and **metrics** into one namespaced registry;
* :func:`span` / :func:`inc` / :func:`observe` are the zero-cost
  accessors instrumented code calls — when no session is active they
  return shared no-op singletons (no allocation on hot paths);
* :class:`RunManifest` captures a finished run (config, seed, graph
  fingerprint, environment, metrics summary, per-level breakdown) for
  ``repro report`` to render and diff.

See ``docs/observability.md`` for the span taxonomy and metric names.
"""

from repro.obs.manifest import (
    RunManifest,
    build_manifest,
    environment_info,
    graph_fingerprint,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.io import (
    MetricsWriter,
    load_manifest,
    read_metrics_jsonl,
    save_manifest,
    validate_chrome_trace,
)
from repro.obs.report import diff_manifests, render_diff, render_manifest
from repro.obs.collector import (
    ClockSync,
    TraceCollector,
    build_request_trace,
    make_span,
    shift_spans,
)
from repro.obs.exposition import (
    parse_prometheus_text,
    render_prometheus,
    sample_value,
    sanitize_metric_name,
)
from repro.obs.live import (
    BUCKET_BOUNDS_MS,
    BucketHistogram,
    SlidingWindowHistogram,
    SloMonitor,
    SloPolicy,
    WindowedCounter,
    parse_slo_spec,
)
from repro.obs._session import (
    ObsSession,
    active,
    current,
    inc,
    instant,
    observe,
    session,
    span,
    tracer,
)
from repro.obs.tracer import NULL_SPAN, NULL_TRACER, NullTracer, Tracer

__all__ = [
    # session / accessors
    "session",
    "ObsSession",
    "current",
    "active",
    "span",
    "instant",
    "inc",
    "observe",
    "tracer",
    # tracer
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    # manifest / io
    "RunManifest",
    "build_manifest",
    "graph_fingerprint",
    "environment_info",
    "save_manifest",
    "load_manifest",
    "read_metrics_jsonl",
    "MetricsWriter",
    "validate_chrome_trace",
    # report
    "render_manifest",
    "diff_manifests",
    "render_diff",
    # live telemetry
    "BUCKET_BOUNDS_MS",
    "BucketHistogram",
    "SlidingWindowHistogram",
    "WindowedCounter",
    "SloPolicy",
    "SloMonitor",
    "parse_slo_spec",
    # exposition
    "render_prometheus",
    "parse_prometheus_text",
    "sample_value",
    "sanitize_metric_name",
    # cross-process collection
    "ClockSync",
    "TraceCollector",
    "build_request_trace",
    "make_span",
    "shift_spans",
]
