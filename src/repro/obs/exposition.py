"""Prometheus text exposition: render and parse.

One function pair. :func:`render_prometheus` turns the server's live
telemetry (MetricsRegistry counters/gauges + the live-histogram map)
into Prometheus text exposition format version 0.0.4 — the format every
scraper, including ``repro top`` and the CI smoke job, consumes.
:func:`parse_prometheus_text` is the inverse, used by the dashboard,
the tests, and the CI assertion that the exposition actually parses.

No client library is involved on either side: the format is a stable,
line-oriented text protocol and the stdlib is enough.

Naming: registry metrics use ``/``-separated paths (``serve/requests``)
which are not legal Prometheus names; :func:`sanitize_metric_name` maps
them to ``repro_serve_requests`` (prefix + path with every illegal
character folded to ``_``).
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from .live import BucketHistogram

__all__ = [
    "sanitize_metric_name",
    "render_prometheus",
    "parse_prometheus_text",
    "sample_value",
]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_ILLEGAL = re.compile(r"[^a-zA-Z0-9_:]")

#: every repro metric family is prefixed so a shared Prometheus server
#: can tell our families from anything else it scrapes
PREFIX = "repro_"


def sanitize_metric_name(name: str, prefix: str = PREFIX) -> str:
    """Map a registry path like ``serve/requests_total`` to a legal name."""
    candidate = prefix + _ILLEGAL.sub("_", name)
    if not _NAME_OK.match(candidate):
        candidate = "_" + candidate
    return candidate


def _fmt_value(v: float) -> str:
    if isinstance(v, float):
        if math.isinf(v):
            return "+Inf" if v > 0 else "-Inf"
        if math.isnan(v):
            return "NaN"
        if v == int(v) and abs(v) < 1e15:
            return str(int(v))
    return repr(float(v)) if isinstance(v, float) else str(v)


def _fmt_labels(labels: Mapping[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{str(v).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_prometheus(
    counters: Mapping[str, float] = (),
    gauges: Mapping[str, float] = (),
    histograms: Mapping[str, BucketHistogram] = (),
    labeled_gauges: Mapping[str, Iterable[Tuple[Mapping[str, Any], float]]] = (),
    help_text: Mapping[str, str] = (),
    prefix: str = PREFIX,
) -> str:
    """Render metric families as Prometheus text exposition.

    * ``counters`` → ``TYPE counter`` samples (names should already end
      in ``_total`` by convention; we do not rename).
    * ``gauges`` → ``TYPE gauge`` samples.
    * ``histograms`` → full cumulative-bucket families: ``_bucket`` with
      ``le`` labels (cumulative counts, ``+Inf`` last), ``_sum``,
      ``_count``. These merge correctly under Prometheus aggregation
      because every process shares the same bucket ladder.
    * ``labeled_gauges`` → gauge families with per-sample labels, e.g.
      per-rank halo bytes: ``name -> [({"rank": 0}, 123.0), ...]``.
    """
    counters = dict(counters)
    gauges = dict(gauges)
    histograms = dict(histograms)
    labeled_gauges = dict(labeled_gauges)
    help_text = dict(help_text)
    out: List[str] = []

    def emit(name: str, kind: str, samples: List[str]) -> None:
        full = sanitize_metric_name(name, prefix)
        help_line = help_text.get(name)
        if help_line:
            out.append(f"# HELP {full} {help_line}")
        out.append(f"# TYPE {full} {kind}")
        out.extend(samples)

    for name in sorted(counters):
        full = sanitize_metric_name(name, prefix)
        emit(name, "counter", [f"{full} {_fmt_value(float(counters[name]))}"])
    for name in sorted(gauges):
        full = sanitize_metric_name(name, prefix)
        emit(name, "gauge", [f"{full} {_fmt_value(float(gauges[name]))}"])
    for name, series in sorted(labeled_gauges.items()):
        full = sanitize_metric_name(name, prefix)
        emit(
            name,
            "gauge",
            [
                f"{full}{_fmt_labels(labels)} {_fmt_value(float(value))}"
                for labels, value in series
            ],
        )
    for name in sorted(histograms):
        hist = histograms[name]
        full = sanitize_metric_name(name, prefix)
        samples: List[str] = []
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += count
            samples.append(
                f'{full}_bucket{{le="{_fmt_value(float(bound))}"}} {cumulative}'
            )
        samples.append(f'{full}_bucket{{le="+Inf"}} {hist.count}')
        samples.append(f"{full}_sum {_fmt_value(hist.total)}")
        samples.append(f"{full}_count {hist.count}")
        emit(name, "histogram", samples)

    return "\n".join(out) + "\n" if out else ""


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+\d+)?$"  # optional timestamp, ignored
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    return float(raw)


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse exposition text into ``{family: {type, help, samples}}``.

    Samples are ``(name, labels, value)`` tuples under the *family*
    name (the ``TYPE`` line's name; ``_bucket``/``_sum``/``_count``
    suffixed samples attach to their histogram family). Malformed lines
    raise ``ValueError`` — the CI assertion wants a strict parser.
    """
    families: Dict[str, Dict[str, Any]] = {}
    current: Optional[str] = None

    def family_for(sample_name: str) -> str:
        if current:
            if sample_name == current or (
                families[current]["type"] == "histogram"
                and sample_name in (
                    current + "_bucket", current + "_sum", current + "_count"
                )
            ):
                return current
        return sample_name

    for line_number, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_line = rest.partition(" ")
            families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )["help"] = help_line
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            kind = kind.strip()
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {line_number}: bad metric type {kind!r}")
            families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )["type"] = kind
            current = name
            continue
        if line.startswith("#"):
            continue  # comment
        m = _SAMPLE.match(line)
        if not m:
            raise ValueError(f"line {line_number}: unparseable sample {line!r}")
        sample_name = m.group("name")
        labels: Dict[str, str] = {}
        if m.group("labels"):
            for lk, lv in _LABEL.findall(m.group("labels")):
                labels[lk] = lv.replace('\\"', '"').replace("\\\\", "\\")
        value = _parse_value(m.group("value"))
        fam = family_for(sample_name)
        families.setdefault(
            fam, {"type": "untyped", "help": "", "samples": []}
        )["samples"].append((sample_name, labels, value))
    return families


def sample_value(
    families: Mapping[str, Dict[str, Any]],
    family: str,
    labels: Optional[Mapping[str, str]] = None,
    suffix: str = "",
) -> Optional[float]:
    """Convenience lookup: the value of one sample, or None."""
    fam = families.get(family)
    if fam is None:
        return None
    want_name = family + suffix
    for name, sample_labels, value in fam["samples"]:
        if name != want_name:
            continue
        if labels is not None and dict(sample_labels) != dict(labels):
            continue
        return value
    return None
