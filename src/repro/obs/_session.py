"""The active observability session and its zero-cost accessors.

A session bundles one :class:`~repro.obs.tracer.Tracer`, one
:class:`~repro.obs.metrics.MetricsRegistry`, and (optionally) the output
paths for the trace / metrics-JSONL artifacts. Instrumented code never
holds a session: it calls the module-level accessors —

* :func:`span` / :func:`tracer` — the active tracer, or the shared
  :data:`~repro.obs.tracer.NULL_TRACER` when observability is off;
* :func:`inc` / :func:`observe` — metric updates that no-op when off;
* :func:`current` — the session itself for the few places that attach
  richer payloads (the engine's per-iteration records, result bridging).

Activation is a context manager (:func:`session`) so instrumentation is
strictly opt-in; the default state is *off* and costs one global read and
branch per call site. Sessions nest (innermost wins) and are visible
across threads — the tracer and registry are thread-safe.
"""

from __future__ import annotations

import dataclasses
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from repro.obs.io import MetricsWriter
from repro.obs.metrics import MetricsRegistry, Number
from repro.obs.tracer import NULL_SPAN, NULL_TRACER, Tracer


class ObsSession:
    """One observability scope: tracer + metrics + export destinations."""

    def __init__(
        self,
        trace_path: Optional[str] = None,
        metrics_path: Optional[str] = None,
        process_name: str = "repro",
    ):
        self.tracer = Tracer(process_name=process_name)
        self.metrics = MetricsRegistry()
        self.trace_path = trace_path
        self.metrics_path = metrics_path
        self._writer = MetricsWriter(metrics_path) if metrics_path else None
        #: free-form tags merged into every iteration record (the Louvain
        #: driver sets ``level`` here so the JSONL stream is level-indexed)
        self.context: Dict[str, Any] = {}
        self._closed = False
        # pre-resolved instruments for the per-iteration fast path (skips
        # the registry's locked name lookup on every engine iteration)
        m = self.metrics
        self._c_iterations = m.counter("engine/iterations")
        self._c_moved = m.counter("engine/moved_total")
        self._c_active_edges = m.counter("engine/active_edges_total")
        self._h_moved = m.histogram("iter/num_moved")
        self._h_delta_q = m.histogram("iter/delta_q")

    # ------------------------------------------------------------------ #
    # hooks called by the engine
    # ------------------------------------------------------------------ #
    def record_iteration(self, trace, runtime: str) -> None:
        """Fold one :class:`IterationTrace` into the metrics + JSONL stream."""
        m = self.metrics
        self._c_iterations.add(1)
        self._c_moved.add(trace.num_moved)
        self._c_active_edges.add(trace.active_edges)
        if trace.comm_bytes:
            m.inc("comm/bytes_total", trace.comm_bytes)
        if trace.comm_messages:
            m.inc("comm/messages_total", trace.comm_messages)
        if trace.sim_cycles:
            m.inc("gpusim/iteration_cycles_total", trace.sim_cycles)
        self._h_moved.observe(trace.num_moved)
        self._h_delta_q.observe(trace.delta_q)
        if trace.kernel_backend is not None:
            m.inc(f"kernel/backend/{trace.kernel_backend}")
        plan = trace.sync_plan
        if plan is not None:
            m.inc(f"sync/{plan.mode.value}_iterations")

        if self._writer is not None:
            record = dataclasses.asdict(trace)
            record["sync_plan"] = None if plan is None else {
                "mode": str(plan.mode.value),
                "dense_bytes": plan.dense_bytes,
                "sparse_bytes": plan.sparse_bytes,
            }
            record["kind"] = "iteration"
            record["runtime"] = runtime
            record.update(self.context)
            self._writer.write(record)

    def record_engine_result(self, result, executor) -> None:
        """Bridge one finished engine run's accounting into the registry.

        Duck-typed over the executor: simulated-device profilers come from
        an optional ``profilers()`` method, distributed halo accounting
        from an optional ``stats`` attribute.
        """
        self.metrics.bridge_timers(result.timers)
        profilers = getattr(executor, "profilers", None)
        if profilers is not None:
            from repro.gpusim.profiler import SimProfiler

            merged = SimProfiler()
            named = profilers()
            for name, prof in named.items():
                merged.merge(prof)
                if len(named) > 1:
                    self.metrics.bridge_sim_profiler(prof, prefix=f"gpusim/{name}")
            if named:
                self.metrics.bridge_sim_profiler(merged)
        stats = getattr(executor, "stats", None)
        if stats is not None and hasattr(stats, "bytes_sent"):
            self.metrics.bridge_halo(stats)
        arena = getattr(executor, "arena", None)
        if arena is not None and hasattr(arena, "stats"):
            self.metrics.bridge_arena(arena)

    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, Any]:
        """The final metrics snapshot (also the JSONL summary record)."""
        return self.metrics.snapshot()

    def close(self) -> None:
        """Flush artifacts: trace JSON, JSONL summary record. Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._writer is not None:
            record = {"kind": "summary"}
            record.update(self.summary())
            self._writer.write(record)
            self._writer.close()
        if self.trace_path:
            self.tracer.write(self.trace_path)


# --------------------------------------------------------------------- #
# the active-session stack
# --------------------------------------------------------------------- #
_lock = threading.Lock()
_stack: list[ObsSession] = []
_current: Optional[ObsSession] = None  # cached top-of-stack for fast reads


def current() -> Optional[ObsSession]:
    """The innermost active session, or None when observability is off."""
    return _current


def active() -> bool:
    return _current is not None


def tracer():
    """The active tracer (or the no-op :data:`NULL_TRACER`)."""
    s = _current
    return s.tracer if s is not None else NULL_TRACER


def span(name: str, **args: Any):
    """Open a span on the active tracer; a shared no-op when off."""
    s = _current
    if s is None:
        return NULL_SPAN
    return s.tracer.span(name, **args)


def instant(name: str, **args: Any) -> None:
    s = _current
    if s is not None:
        s.tracer.instant(name, **args)


def inc(name: str, n: Number = 1) -> None:
    """Bump a counter on the active registry; no-op when off."""
    s = _current
    if s is not None:
        s.metrics.inc(name, n)


def observe(name: str, v: Number) -> None:
    """Record a histogram sample on the active registry; no-op when off."""
    s = _current
    if s is not None:
        s.metrics.observe(name, v)


def push(sess: ObsSession) -> ObsSession:
    """Activate ``sess`` (innermost-wins). Prefer :func:`session`."""
    global _current
    with _lock:
        _stack.append(sess)
        _current = sess
    return sess


def pop(sess: ObsSession) -> None:
    """Deactivate ``sess``; it must be the innermost active session."""
    global _current
    with _lock:
        if not _stack or _stack[-1] is not sess:
            raise ValueError("obs session stack mismatch (pop out of order)")
        _stack.pop()
        _current = _stack[-1] if _stack else None


@contextmanager
def session(
    trace: Optional[str] = None,
    metrics: Optional[str] = None,
    process_name: str = "repro",
) -> Iterator[ObsSession]:
    """Activate observability for the enclosed code.

    Usage::

        from repro import obs

        with obs.session(trace="run.trace.json", metrics="run.jsonl") as s:
            result = gala(graph)
        print(s.summary()["counters"]["engine/iterations"])

    On exit the trace is written to ``trace`` (Chrome trace-event JSON,
    loadable in Perfetto) and the per-iteration stream plus a final
    summary record to ``metrics`` (JSON Lines). Both paths are optional —
    with neither, the artifacts stay in memory on the returned session.
    """
    sess = ObsSession(
        trace_path=trace, metrics_path=metrics, process_name=process_name
    )
    push(sess)
    try:
        with sess.tracer.span("obs/session"):
            yield sess
    finally:
        pop(sess)
        sess.close()
