"""Run manifests: everything needed to identify and compare two runs.

A manifest is a plain JSON-serializable record of *what ran* (config,
seed, graph fingerprint, package/environment versions) and *what it
cost and produced* (per-level breakdown, metrics summary, modularity).
``repro report`` renders one manifest as a breakdown table and diffs two
(cycles, bytes, iterations, Q) — the comparison loop every perf PR in
this repo needs.

The builders are duck-typed over the result objects (``EngineResult`` has
``history``/``timers``; ``LouvainResult`` has ``levels``) so this module
never imports :mod:`repro.core` — the core imports *us*.
"""

from __future__ import annotations

import dataclasses
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

# Fingerprinting lives with the graph substrate now (CSRGraph caches the
# digest; the serving layer's registry and result cache key on it) — the
# re-export keeps this module the import site manifest consumers know.
from repro.graph.fingerprint import graph_fingerprint

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "build_manifest",
    "environment_info",
    "graph_fingerprint",
]

#: bump when the manifest layout changes incompatibly
MANIFEST_SCHEMA_VERSION = 1


def environment_info() -> Dict[str, str]:
    """Package/interpreter versions that can change a run's numbers."""
    import scipy

    from repro import __version__ as repro_version

    return {
        "repro": repro_version,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
        "platform": sys.platform,
    }


def _config_dict(config) -> Dict[str, Any]:
    """A config dataclass (or dict, or None) as JSON-safe key/values."""
    if config is None:
        return {}
    if isinstance(config, dict):
        raw = config
    elif dataclasses.is_dataclass(config):
        raw = dataclasses.asdict(config)
    else:
        raw = {k: v for k, v in vars(config).items() if not k.startswith("_")}
    out = {}
    for k, v in raw.items():
        if isinstance(v, (str, int, float, bool)) or v is None:
            out[k] = v
        else:
            out[k] = repr(v)
    return out


@dataclass
class RunManifest:
    """One run, fully described. Serializable via :mod:`repro.obs.io`."""

    schema_version: int = MANIFEST_SCHEMA_VERSION
    created_unix: float = field(default_factory=time.time)
    #: how the run was invoked (CLI argv, example name, test id ...)
    command: Optional[str] = None
    runtime: str = "local"
    config: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    graph: Dict[str, Any] = field(default_factory=dict)
    environment: Dict[str, str] = field(default_factory=environment_info)
    #: one row per hierarchy level (a phase-1-only run has exactly one)
    levels: List[Dict[str, Any]] = field(default_factory=list)
    #: final metrics-registry snapshot (empty when no session was active)
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: headline outcome: modularity, iterations, communities, cost totals
    result: Dict[str, Any] = field(default_factory=dict)
    #: sanitizer report when the run was sanitized (mode, per-checker
    #: counts, stored findings); empty dict otherwise
    sanitizer: Dict[str, Any] = field(default_factory=dict)
    #: static-check (``repro lint``) summary when the manifest came from
    #: a lint run (total, waived, per-rule counts); empty dict otherwise
    staticcheck: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        known = {f.name for f in dataclasses.fields(cls)}
        version = data.get("schema_version", 0)
        if version > MANIFEST_SCHEMA_VERSION:
            raise ValueError(
                f"manifest schema {version} newer than supported "
                f"{MANIFEST_SCHEMA_VERSION}"
            )
        return cls(**{k: v for k, v in data.items() if k in known})


# --------------------------------------------------------------------- #
# builders
# --------------------------------------------------------------------- #
def _history_totals(history) -> Dict[str, Any]:
    totals = {
        "iterations": len(history),
        "moved": int(sum(t.num_moved for t in history)),
        "comm_bytes": int(sum(t.comm_bytes for t in history)),
        "comm_messages": int(sum(t.comm_messages for t in history)),
        "sim_cycles": float(sum(t.sim_cycles for t in history)),
        "active_edges": int(sum(t.active_edges for t in history)),
        "kernel_compile_s": float(
            sum(getattr(t, "kernel_compile_s", 0.0) for t in history)
        ),
    }
    backends: Dict[str, int] = {}
    for t in history:
        b = getattr(t, "kernel_backend", None)
        if b is not None:
            backends[b] = backends.get(b, 0) + 1
    if backends:
        totals["kernel_backends"] = backends
    # arena_allocs is a running count: the last trace carries the total
    arena = [
        t.arena_allocs
        for t in history
        if getattr(t, "arena_allocs", None) is not None
    ]
    if arena:
        totals["arena_allocs"] = int(arena[-1])
    return totals


def _level_row(index: int, graph, phase1) -> Dict[str, Any]:
    row = {
        "level": index,
        "n": int(graph.n),
        "num_edges": int(graph.num_edges),
        "modularity": float(phase1.modularity),
        "timers": dict(phase1.timers.totals()),
    }
    row.update(_history_totals(phase1.history))
    return row


def build_manifest(
    result,
    graph,
    config=None,
    metrics: Optional[Dict[str, Any]] = None,
    command: Optional[str] = None,
    runtime: str = "local",
    sanitizer: Optional[Dict[str, Any]] = None,
) -> RunManifest:
    """Build a manifest for any runtime's result.

    ``result`` may be a ``LouvainResult`` (multi-level), an
    ``EngineResult``/``Phase1Result``, or the multi-GPU / distributed
    result dataclasses — anything carrying ``modularity`` plus either
    ``levels`` or ``history``.
    """
    seed = getattr(config, "seed", None) if config is not None else None
    manifest = RunManifest(
        command=command,
        runtime=runtime,
        config=_config_dict(config),
        seed=seed if isinstance(seed, int) else None,
        graph=graph_fingerprint(graph),
        metrics=metrics or {},
        sanitizer=sanitizer or {},
    )

    levels = getattr(result, "levels", None)
    if levels:
        for i, lvl in enumerate(levels):
            manifest.levels.append(_level_row(i, lvl.graph, lvl.phase1))
    elif getattr(result, "history", None) is not None:
        row = {
            "level": 0,
            "n": int(graph.n),
            "num_edges": int(graph.num_edges),
            "modularity": float(result.modularity),
            "timers": dict(result.timers.totals())
            if getattr(result, "timers", None) is not None
            else {},
        }
        row.update(_history_totals(result.history))
        manifest.levels.append(row)

    communities = getattr(result, "communities", None)
    manifest.result = {
        "modularity": float(result.modularity),
        "num_communities": (
            int(len(np.unique(communities))) if communities is not None else None
        ),
        "num_levels": len(manifest.levels),
        "iterations": int(sum(row["iterations"] for row in manifest.levels)),
        "sim_cycles": float(sum(row["sim_cycles"] for row in manifest.levels)),
        "comm_bytes": int(sum(row["comm_bytes"] for row in manifest.levels)),
    }
    return manifest
