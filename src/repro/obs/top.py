"""``repro top`` — a terminal dashboard for a live serving session.

Polls the server's telemetry on an interval and reprints one compact
status block: request rate, cache hit rate, window p50/p95/p99, backlog,
workers, sheds, SLO state. Curses-free on purpose — plain reprinted
text works in any terminal, under ``watch``, inside CI logs, and over
the dumbest SSH session; the dashboard is ~a screenful, so ANSI
clear-and-home is all the "UI" needed (and ``--once`` skips even that).

Two transports, same numbers:

* the JSONL ``metrics`` op (``--connect host:port``) returns the
  dashboard summary directly — the default, since the JSONL port always
  exists;
* the HTTP exposition (``--http URL``) scrapes ``/metrics`` and
  reconstructs the summary from the parsed families — the path a real
  Prometheus would take, so the dashboard doubles as a living test that
  the exposition carries everything an external scraper needs.
"""

from __future__ import annotations

import asyncio
import time
import urllib.request
from typing import Any, Dict, Optional

from repro.obs.exposition import parse_prometheus_text, sample_value

__all__ = ["fetch_summary_jsonl", "fetch_summary_http", "render_top", "run_top"]


def fetch_summary_jsonl(host: str, port: int) -> Dict[str, Any]:
    """One ``metrics`` round-trip over the JSONL protocol."""
    from repro.serve.client import ServeClient

    async def go() -> Dict[str, Any]:
        client = await ServeClient.connect(host, port)
        try:
            reply = await client.metrics(exposition=False)
            return reply["summary"]
        finally:
            await client.close()

    return asyncio.run(go())


def fetch_summary_http(url: str, timeout_s: float = 5.0) -> Dict[str, Any]:
    """Scrape ``/metrics`` and rebuild the summary from the families."""
    with urllib.request.urlopen(url, timeout=timeout_s) as response:
        text = response.read().decode("utf-8")
    families = parse_prometheus_text(text)

    def g(name: str, default: float = 0.0) -> float:
        value = sample_value(families, f"repro_{name}")
        return default if value is None else value

    return {
        "uptime_s": g("serve_uptime_s"),
        "requests_total": g("serve_requests_total"),
        "req_per_s": g("serve_req_per_s"),
        "window_requests": g("serve_window_requests"),
        "window_errors": g("serve_window_errors"),
        "window_p50_ms": g("serve_window_p50_ms"),
        "window_p95_ms": g("serve_window_p95_ms"),
        "window_p99_ms": g("serve_window_p99_ms"),
        "cache_hit_rate": g("serve_cache_hit_rate"),
        "shed_total": g("serve_shed_total"),
        "inflight": g("serve_backlog_depth"),
        "workers": g("serve_pool_workers"),
        "worker_restarts": g("serve_pool_respawns"),
        "healthy": bool(g("serve_healthy", 1.0)),
    }


def render_top(summary: Dict[str, Any]) -> str:
    """The status block for one poll."""
    from repro.bench.reporting import format_table

    slo = summary.get("slo")
    if slo is not None:
        health = "OK" if slo.get("healthy") else "VIOLATING"
        health += f" (violations={slo.get('violations', 0)})"
    elif "healthy" in summary:
        health = "OK" if summary["healthy"] else "VIOLATING"
    else:
        health = "n/a"
    rows = [
        {
            "req/s": round(float(summary.get("req_per_s", 0.0)), 2),
            "total": int(summary.get("requests_total", 0)),
            "hit_rate": round(float(summary.get("cache_hit_rate", 0.0)), 2),
            "p50_ms": round(float(summary.get("window_p50_ms", 0.0)), 2),
            "p95_ms": round(float(summary.get("window_p95_ms", 0.0)), 2),
            "p99_ms": round(float(summary.get("window_p99_ms", 0.0)), 2),
            "backlog": int(summary.get("inflight", 0)),
            "workers": int(summary.get("workers", 0)),
            "restarts": int(summary.get("worker_restarts", 0)),
            "shed": int(summary.get("shed_total", 0)),
        }
    ]
    uptime = float(summary.get("uptime_s", 0.0))
    title = (
        f"repro serve — up {uptime:.0f}s — slo {health} — "
        f"{time.strftime('%H:%M:%S')}"
    )
    return format_table(rows, title=title)


def run_top(
    connect: Optional[str] = None,
    http: Optional[str] = None,
    interval_s: float = 2.0,
    iterations: Optional[int] = None,
    clear: bool = True,
) -> int:
    """The poll loop. ``iterations=None`` runs until interrupted."""
    if (connect is None) == (http is None):
        raise ValueError("exactly one of connect/http is required")
    if connect is not None:
        host, _, port = connect.rpartition(":")
        fetch = lambda: fetch_summary_jsonl(host or "127.0.0.1", int(port))  # noqa: E731
    else:
        fetch = lambda: fetch_summary_http(http)  # noqa: E731
    n = 0
    try:
        while iterations is None or n < iterations:
            try:
                block = render_top(fetch())
            except (ConnectionError, OSError) as exc:
                block = f"repro top: server unreachable ({exc})"
            if clear and n > 0:
                print("\x1b[2J\x1b[H", end="")
            print(block, flush=True)
            n += 1
            if iterations is not None and n >= iterations:
                break
            time.sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return 0
