"""The metric-name registry: every metric this repo emits, declared once.

This module is the single source of truth for observability metric names.
Code that emits a metric (``MetricsRegistry.counter/gauge/histogram``,
``obs.inc``, or the dictionaries handed to
:func:`repro.obs.exposition.render_prometheus`) must use a name declared
here — either one of the exact names in :data:`METRIC_NAMES` or an
instance of one of the dynamic families in :data:`METRIC_FAMILIES`
(``*`` matches exactly one path segment, or a segment's variable part).

The ``repro lint`` static checker (rule ``metric-names``,
:mod:`repro.analysis.staticcheck.rules.metric_names`) enforces three
directions of agreement:

* every emission site in ``src/`` resolves to a declared name/family;
* every declared name/family is actually emitted somewhere (no dead
  registry entries — a rename in code without a rename here is caught
  as *both* an undeclared emission and a stale declaration);
* every declared name/family is mentioned in the documentation files
  listed in :data:`DOC_FILES`, so the tables in docs/observability.md
  and docs/serving.md cannot drift from the code.

The Prometheus exposition shares these names verbatim:
:func:`repro.obs.exposition.sanitize_metric_name` maps a registry path
like ``serve/requests_total`` to the exported family
``repro_serve_requests_total``.
"""

from __future__ import annotations

import re
from typing import Optional, Tuple

__all__ = [
    "DOC_FILES",
    "METRIC_FAMILIES",
    "METRIC_NAMES",
    "is_declared",
    "match_family",
]

#: documentation files (repo-root relative) that must mention every
#: declared metric name/family — checked by the ``metric-names`` rule
DOC_FILES: Tuple[str, ...] = (
    "docs/observability.md",
    "docs/serving.md",
)

#: exact metric names emitted by the engine / runtimes / serving layer
METRIC_NAMES: frozenset = frozenset(
    {
        # BSP engine (repro.obs._session bridges run_engine's traces)
        "engine/iterations",
        "engine/moved_total",
        "engine/active_edges_total",
        "iter/num_moved",
        "iter/delta_q",
        # cross-rank communication (distributed / multiprocess runtimes)
        "comm/bytes_total",
        "comm/messages_total",
        "comm/halo_bytes_total",
        "comm/halo_messages_total",
        "comm/halo_bytes",
        "comm/halo_messages",
        # simulated GPU cost model
        "gpusim/iteration_cycles_total",
        "gpusim/total_cycles",
        # multi-GPU sync planning + simulated collectives
        "sync/plan_bytes_total",
        "nccl/collectives",
        # observability internals
        "obs/rank_spans_dropped",
        # zero-allocation buffer arena
        "arena/allocs",
        "arena/reuses",
        "arena/bytes_reused",
        "arena/hwm",
        # serving layer: request lifecycle
        "serve/requests_total",
        "serve/cache_hits",
        "serve/cache_misses",
        "serve/shed_total",
        "serve/timeouts",
        "serve/errors",
        "serve/uploads",
        "serve/inflight",
        "serve/latency_ms",
        "serve/hit_latency_ms",
        "serve/miss_latency_ms",
        "serve/slo_violations",
        # serving layer: live exposition (/metrics and the metrics op)
        "serve/uptime_s",
        "serve/req_per_s",
        "serve/window_requests",
        "serve/window_errors",
        "serve/window_error_rate",
        "serve/window_p50_ms",
        "serve/window_p95_ms",
        "serve/window_p99_ms",
        "serve/backlog_depth",
        "serve/healthy",
        "serve/request_latency_ms",
        "serve/rank_halo_bytes",
    }
)

#: dynamic metric families: ``*`` stands for the variable part of one
#: path segment (a kernel backend, a sanitizer checker, a cycle bucket,
#: a stats-dict key ...). An f-string emission site must collapse to one
#: of these patterns exactly.
METRIC_FAMILIES: Tuple[str, ...] = (
    # wall-clock timers bridged from TimerRegistry
    "time/*_seconds",
    "time/*_intervals",
    # per-backend kernel dispatch accounting
    "kernel/backend/*",
    "kernel/*_vertices",
    # multi-GPU sync-mode decisions
    "sync/*_iterations",
    # simulated-GPU profiler buckets/counters
    "gpusim/cycles/*",
    "gpusim/counters/*",
    # sanitizer finding counters (repro.analysis)
    "sanitizer/findings/*",
    "sanitizer/kind/*",
    # serving-layer stats mirrors (cache/registry/pool/worker)
    "serve/cache/*",
    "serve/registry/*",
    "serve/pool/*",
    "serve/worker/*",
    "serve/worker/kernel/*",
)


def _family_regex(pattern: str) -> "re.Pattern[str]":
    parts = [re.escape(p) for p in pattern.split("*")]
    return re.compile("^" + "[^/]+".join(parts) + "$")


_FAMILY_REGEXES = tuple(
    (pattern, _family_regex(pattern)) for pattern in METRIC_FAMILIES
)


def match_family(name: str) -> Optional[str]:
    """The family pattern covering ``name``, or None.

    ``name`` may itself carry ``*`` placeholders (the static checker
    collapses f-string holes to ``*``); such a name matches only the
    identical family pattern.
    """
    if "*" in name:
        return name if name in METRIC_FAMILIES else None
    for pattern, regex in _FAMILY_REGEXES:
        if regex.match(name):
            return pattern
    return None


def is_declared(name: str) -> bool:
    """True when ``name`` is an exact registry name or a family instance."""
    return name in METRIC_NAMES or match_family(name) is not None
