"""Workload definitions shared by all experiments.

``REPRO_BENCH_SCALE`` (default 0.25) scales every stand-in graph, so the
full experiment suite finishes in minutes on a laptop; set it to 1.0 for
the largest instances the generators are tuned for.
"""

from __future__ import annotations

import os

from repro.graph.csr import CSRGraph
from repro.graph.generators import load_dataset
from repro.graph.generators.lfr import LFRParams, lfr_graph

#: the paper's Figure 7 restricts itself to four representative graphs
FIG7_GRAPHS = ["LJ", "OR", "UK", "HW"]
ALL_GRAPHS = ["FR", "LJ", "OR", "TW", "UK", "EW", "HW"]


def bench_scale(default: float = 0.25) -> float:
    """Graph-size multiplier for benchmark runs (env REPRO_BENCH_SCALE)."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "")
    try:
        return float(raw) if raw else default
    except ValueError:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be a float, got {raw!r}"
        ) from None


def load_suite(
    abbrs: list[str] | None = None, scale: float | None = None
) -> list[CSRGraph]:
    """Load the stand-in suite at the benchmark scale."""
    abbrs = abbrs or ALL_GRAPHS
    scale = scale if scale is not None else bench_scale()
    return [load_dataset(a, scale) for a in abbrs]


# The paper's Table 4 LFR graphs: 100k vertices with three community-
# strength regimes (measured baselines Q = 0.350 / 0.924 / 0.434). The
# mixing parameters below are chosen to hit those regimes; ``scale``
# shrinks n while preserving the regime.
_TAB4_SPECS = [
    ("Graph1", dict(mu=0.46, min_degree=8, max_degree=40, seed=301)),
    ("Graph2", dict(mu=0.06, min_degree=20, max_degree=80, seed=302)),
    ("Graph3", dict(mu=0.635, min_degree=20, max_degree=80, seed=301)),
]


def lfr_suite(scale: float | None = None, n_base: int = 20000):
    """The three LFR ground-truth graphs of Table 4.

    Returns ``[(name, graph, ground_truth), ...]``.
    """
    scale = scale if scale is not None else bench_scale()
    n = max(int(n_base * scale), 500)
    out = []
    for name, kw in _TAB4_SPECS:
        params = LFRParams(
            n=n,
            min_community=max(20, n // 100),
            max_community=max(60, n // 10),
            **kw,
        )
        g, truth = lfr_graph(params)
        g.name = name
        out.append((name, g, truth))
    return out
