"""Table 3: modularity of the full Louvain under each pruning strategy.

Paper claims: Baseline, MG and SM columns are *identical* (both strategies
are false-negative-free, so they cannot alter the trajectory); RM loses
0.00119 on average, PM 0.00413; losses are largest on TW (weak community
structure) and negligible on UK (near-perfect structure).
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentOutput
from repro.bench.workloads import ALL_GRAPHS, bench_scale
from repro.core import GalaConfig, gala
from repro.graph.generators import load_dataset


def _full_q(graph, pruning: str) -> float:
    return gala(graph, GalaConfig(pruning=pruning, seed=17)).modularity


def run(scale: float | None = None, graphs: list[str] | None = None) -> ExperimentOutput:
    scale = scale if scale is not None else bench_scale()
    graphs = graphs or ALL_GRAPHS
    rows = []
    rm_losses, pm_losses = [], []
    for abbr in graphs:
        g = load_dataset(abbr, scale)
        base = _full_q(g, "none")
        q_mg = _full_q(g, "mg")
        q_sm = _full_q(g, "sm")
        q_rm = _full_q(g, "rm")
        q_pm = _full_q(g, "pm")
        q_mgrm = _full_q(g, "mg+rm")
        rm_losses.append(base - q_rm)
        pm_losses.append(base - q_pm)
        rows.append(
            {
                "graph": abbr,
                "Baseline/MG/SM": round(base, 5),
                "MG==base": bool(q_mg == base),
                "SM==base": bool(q_sm == base),
                "RM": f"{q_rm:.5f} ({base - q_rm:+.5f})",
                "MG+RM": f"{q_mgrm:.5f} ({base - q_mgrm:+.5f})",
                "PM": f"{q_pm:.5f} ({base - q_pm:+.5f})",
            }
        )
    return ExperimentOutput(
        experiment="table3",
        title="Modularity under each pruning strategy (full Louvain)",
        rows=rows,
        notes=[
            f"avg RM loss {np.mean(rm_losses):+.5f} (paper: +0.00119), "
            f"avg PM loss {np.mean(pm_losses):+.5f} (paper: +0.00413)",
            "MG and SM columns equal the baseline exactly on every graph",
        ],
    )
