"""Table 1: FNR and FPR of the four pruning strategies on every graph.

Each (graph, strategy) cell comes from an oracle-instrumented phase-1 run:
the engine executes the strategy's own (possibly lossy) trajectory while a
full unpruned DecideAndMove on each BSP snapshot supplies the ground-truth
moved set.

Paper claims: SM and MG have exactly 0.00% FNR on every graph; RM and PM
have small-but-nonzero FNR; MG's average FPR (32.2% in the paper) beats
SM's (91.7%), RM's (39.6%) and PM's (47.3%); every strategy does poorly on
TW, whose community structure is weak.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentOutput
from repro.bench.workloads import ALL_GRAPHS, bench_scale
from repro.core.phase1 import Phase1Config, run_phase1
from repro.graph.generators import load_dataset
from repro.metrics.fnr_fpr import pruning_rates

STRATEGIES = ["sm", "rm", "pm", "mg"]


def run(scale: float | None = None, graphs: list[str] | None = None) -> ExperimentOutput:
    scale = scale if scale is not None else bench_scale()
    graphs = graphs or ALL_GRAPHS
    rows = []
    sums = {s: {"fnr": [], "fpr": []} for s in STRATEGIES}
    for abbr in graphs:
        g = load_dataset(abbr, scale)
        row: dict = {"graph": abbr}
        for strat in STRATEGIES:
            result = run_phase1(
                g, Phase1Config(pruning=strat, oracle=True, seed=17)
            )
            rates = pruning_rates(result, strategy=strat, graph=abbr)
            row[f"FNR {strat.upper()}"] = f"{100 * rates.fnr:.2f}%"
            row[f"FPR {strat.upper()}"] = f"{100 * rates.fpr:.2f}%"
            sums[strat]["fnr"].append(rates.fnr)
            sums[strat]["fpr"].append(rates.fpr)
        rows.append(row)
    avg_row: dict = {"graph": "Avg."}
    for strat in STRATEGIES:
        avg_row[f"FNR {strat.upper()}"] = f"{100 * np.mean(sums[strat]['fnr']):.2f}%"
        avg_row[f"FPR {strat.upper()}"] = f"{100 * np.mean(sums[strat]['fpr']):.2f}%"
    rows.append(avg_row)

    mg_fpr = float(np.mean(sums["mg"]["fpr"]))
    sm_fpr = float(np.mean(sums["sm"]["fpr"]))
    return ExperimentOutput(
        experiment="table1",
        title="FNR and FPR of SM/RM/PM/MG (Table 1)",
        rows=rows,
        notes=[
            "SM and MG: 0.00% FNR everywhere (Lemma 3 / Theorem 6)",
            f"avg FPR: SM {100 * sm_fpr:.1f}% vs MG {100 * mg_fpr:.1f}% "
            "(paper: 91.7% vs 32.2%)",
        ],
    )
