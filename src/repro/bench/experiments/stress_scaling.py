"""Throughput stress test (the paper's Section 5.6 closing data point:
phase 1 of uk-2007-02, 3.4 B edges, in 43 seconds on 8 A100s).

We cannot hold billions of edges, but we can measure how *this* engine's
throughput scales with graph size: LFR instances across a size sweep, MG
pruning on, reporting wall-clock, per-edge throughput, pruning savings and
iterations. The claims checked by ``benchmarks/test_stress_scaling.py``:

* throughput (processed edges/second) does not collapse with size — the
  engine is O(active edges * log) per iteration and the constant must not
  grow;
* MG's pruning fraction *grows* with size (the paper's Figure 6
  observation that larger graphs benefit more).
"""

from __future__ import annotations

import time

from repro.bench.harness import ExperimentOutput
from repro.bench.workloads import bench_scale
from repro.core.phase1 import Phase1Config, run_phase1
from repro.graph.generators.lfr import LFRParams, lfr_graph

#: size sweep relative to the base n (scaled by REPRO_BENCH_SCALE)
SIZE_STEPS = [0.25, 0.5, 1.0, 2.0]


def _make_graph(n: int, seed: int = 77):
    params = LFRParams(
        n=n,
        mu=0.3,
        min_degree=6,
        max_degree=max(30, n // 200),
        min_community=max(20, n // 200),
        max_community=max(80, n // 20),
        seed=seed,
    )
    g, _ = lfr_graph(params)
    g.name = f"lfr-{n}"
    return g


def run(scale: float | None = None, n_base: int = 40000) -> ExperimentOutput:
    scale = scale if scale is not None else bench_scale()
    rows = []
    throughputs = []
    prune_fracs = []
    for step in SIZE_STEPS:
        n = max(int(n_base * scale * step), 500)
        gen_start = time.perf_counter()
        g = _make_graph(n)
        gen_time = time.perf_counter() - gen_start

        start = time.perf_counter()
        base = run_phase1(g, Phase1Config(pruning="none"))
        t_base = time.perf_counter() - start
        start = time.perf_counter()
        mg = run_phase1(g, Phase1Config(pruning="mg"))
        t_mg = time.perf_counter() - start

        pruned = 1 - mg.processed_vertices / max(base.processed_vertices, 1)
        throughput = mg.processed_edges / max(t_mg, 1e-9)
        throughputs.append(throughput)
        prune_fracs.append(pruned)
        rows.append(
            {
                "n": g.n,
                "m": g.num_edges,
                "gen (s)": round(gen_time, 2),
                "iters": mg.num_iterations,
                "baseline (s)": round(t_base, 3),
                "GALA (s)": round(t_mg, 3),
                "speedup": f"{t_base / max(t_mg, 1e-9):.2f}x",
                "pruned": f"{100 * pruned:.0f}%",
                "Medges/s": round(throughput / 1e6, 2),
                "Q": round(mg.modularity, 4),
            }
        )
    return ExperimentOutput(
        experiment="stress",
        title="Phase-1 throughput across graph sizes (Section 5.6 analogue)",
        rows=rows,
        notes=[
            "paper: phase 1 of a 3.4B-edge graph in 43s on 8 A100s "
            "(~80 Medges/s effective); this engine is NumPy on one core",
            f"pruning fraction trend across sizes: "
            + " -> ".join(f"{100 * p:.0f}%" for p in prune_fracs),
        ],
    )
