"""Figure 6: ablation of GALA's two optimisations.

Three configurations per graph, on the shared cost estimator:

* **baseline** — no pruning, naive weight recomputation, global-memory
  hashtable data path;
* **+MG** — modularity gain-based pruning and delta weight updates, same
  global-memory data path;
* **+MG+MM** — pruning plus the workload-aware kernels (shuffle +
  hierarchical hashtable data path).

Paper claims: MG alone gives ~2.4x (larger on graphs needing more
iterations), MM adds ~1.4x, ~3.4x combined.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.designs import SystemDesign, estimate_cycles
from repro.bench.harness import ExperimentOutput
from repro.bench.workloads import ALL_GRAPHS, bench_scale
from repro.core.phase1 import Phase1Config, run_phase1
from repro.graph.generators import load_dataset

# The Figure 6 baseline is *GALA's own fused kernel* with the hashtable
# placed in global memory — not a comparator's unfused pipeline — so its
# data path is only moderately worse than the workload-aware one: the
# coalesced row loads and scattered C[u] gathers (~425 cycles/edge) are
# common to both; the global-table probe+atomic (~330/edge effective after
# caching) vs the register/shared path (~95/edge) is what MM removes.
_BASELINE = SystemDesign(
    name="baseline", pruning="none", weight_update="recompute",
    decide_cycles_per_edge=755.0, decide_cycles_per_vertex=40.0,
    update_cycles_per_edge=600.0,
)
_MG = SystemDesign(
    name="+MG", pruning="mg", weight_update="delta",
    decide_cycles_per_edge=755.0, decide_cycles_per_vertex=40.0,
    update_cycles_per_edge=600.0,
)
_MG_MM = SystemDesign(
    name="+MG+MM", pruning="mg", weight_update="delta",
    decide_cycles_per_edge=520.0, decide_cycles_per_vertex=30.0,
    update_cycles_per_edge=450.0,
)


def run(scale: float | None = None, graphs: list[str] | None = None) -> ExperimentOutput:
    scale = scale if scale is not None else bench_scale()
    graphs = graphs or ALL_GRAPHS
    rows = []
    mg_speedups, mm_speedups = [], []
    for abbr in graphs:
        g = load_dataset(abbr, scale)
        cycles = {}
        qs = {}
        for design in (_BASELINE, _MG, _MG_MM):
            result = run_phase1(
                g,
                Phase1Config(
                    pruning=design.pruning, weight_update=design.weight_update
                ),
            )
            cycles[design.name] = estimate_cycles(design, result, g)
            qs[design.name] = result.modularity
        mg_x = cycles["baseline"] / cycles["+MG"]
        mm_x = cycles["+MG"] / cycles["+MG+MM"]
        mg_speedups.append(mg_x)
        mm_speedups.append(mm_x)
        assert abs(qs["baseline"] - qs["+MG"]) < 1e-12, "MG must be lossless"
        rows.append(
            {
                "graph": abbr,
                "baseline (Mcyc)": round(cycles["baseline"] / 1e6, 1),
                "+MG (Mcyc)": round(cycles["+MG"] / 1e6, 1),
                "+MG+MM (Mcyc)": round(cycles["+MG+MM"] / 1e6, 1),
                "MG speedup": f"{mg_x:.2f}x",
                "MM speedup": f"{mm_x:.2f}x",
                "total": f"{cycles['baseline'] / cycles['+MG+MM']:.2f}x",
            }
        )
    rows.append(
        {
            "graph": "Avg.",
            "MG speedup": f"{np.mean(mg_speedups):.2f}x",
            "MM speedup": f"{np.mean(mm_speedups):.2f}x",
            "total": f"{np.mean(mg_speedups) * np.mean(mm_speedups):.2f}x",
        }
    )
    return ExperimentOutput(
        experiment="fig6",
        title="Impact of MG pruning and memory-management optimisations",
        rows=rows,
        notes=[
            "paper: MG 2.4x avg (3.7x on FR), MM 1.4x, 3.4x combined",
            "baseline and +MG modularity identical (asserted): MG is lossless",
        ],
    )
