"""Figure 1(b): proportion of pruned (inactive) and unmoved vertices per
iteration on the LiveJournal stand-in.

Paper claims reproduced here: the unmoved fraction climbs towards ~95% as
the partition stabilises, the MG-pruned (inactive) fraction climbs with it
(paper: up to 69% pruned), and pruned stays below unmoved (MG has no false
negatives, so it can only prune a subset of the truly unmoved set).
"""

from __future__ import annotations

from repro.bench.harness import ExperimentOutput
from repro.bench.workloads import bench_scale
from repro.core.phase1 import Phase1Config, run_phase1
from repro.graph.generators import load_dataset
from repro.metrics.fnr_fpr import inactive_rate_series, unmoved_rate_series


def run(scale: float | None = None) -> ExperimentOutput:
    scale = scale if scale is not None else bench_scale()
    graph = load_dataset("LJ", scale)
    result = run_phase1(graph, Phase1Config(pruning="mg"))
    inactive = inactive_rate_series(result)
    unmoved = unmoved_rate_series(result)
    rows = [
        {
            "iteration": h.iteration,
            "unmoved%": round(100 * u, 1),
            "pruned%": round(100 * i, 1),
        }
        for h, u, i in zip(result.history, unmoved, inactive)
    ]
    return ExperimentOutput(
        experiment="fig1",
        title="Pruned (inactive) and unmoved vertices per iteration, LJ",
        rows=rows,
        series={"unmoved": list(unmoved), "pruned (MG)": list(inactive)},
        notes=[
            f"peak unmoved {100 * max(unmoved):.1f}% (paper: up to 95%), "
            f"peak pruned {100 * max(inactive):.1f}% (paper: up to 69%)",
            "pruned <= unmoved at every iteration (MG is false-negative-free)",
        ],
    )
