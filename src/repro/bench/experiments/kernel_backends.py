"""Kernel-backend crossover: incremental cache + workload-aware dispatch.

Not one of the paper's figures — this experiment profiles the repo's own
host-side DecideAndMove backends, extending the paper's Section 4
workload-aware kernel-selection idea to the host engine:

* ``vectorized`` — full re-aggregation every iteration (the reference);
* ``incremental`` — persistent pair cache, re-aggregating only the
  active∧dirty rows (Section 3.5's delta principle applied to the
  aggregation itself);
* ``bincount`` — sort-free dense-relabel aggregation;
* ``jit`` — the compiled per-vertex loop (numba extra or the bundled C
  fallback) over the zero-allocation buffer arena; included only when a
  compile provider passes its warm-up probe on this machine;
* ``auto`` — the per-iteration dispatcher over the NumPy paths, which
  prefers the compiled backend whenever the probe passed.

For each workload it times an MG-pruned phase-1 run per backend, checks
the bit-exactness contract on the fly, and reports the auto dispatcher's
per-span backend choices (:func:`repro.bench.reporting.backend_crossover_rows`)
plus the per-iteration aggregated-edge fraction — the work the cache
actually avoided.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.harness import ExperimentOutput
from repro.bench.reporting import backend_crossover_rows
from repro.bench.workloads import bench_scale, load_suite
from repro.core.phase1 import Phase1Config, run_phase1

GRAPHS = ["LJ", "OR"]
#: host backends plus the simulated GPU dispatch (batched SoA engine) —
#: all bound by the same bit-exactness contract, so the gpusim row shows
#: how close the simulator now runs to the host kernels wall-clock-wise
BACKENDS = ["vectorized", "incremental", "bincount", "auto", "gpusim"]


def _backends() -> list[str]:
    """The backend list, with ``jit`` when a compile provider works."""
    try:
        from repro.core.kernels.jit import get_runtime

        if get_runtime() is not None:
            return BACKENDS[:-1] + ["jit", BACKENDS[-1]]
    except Exception:  # pragma: no cover - defensive: probe must not break
        pass
    return list(BACKENDS)


def _run_backend(graph, backend: str):
    kernel: str | object = backend
    if backend == "gpusim":
        from repro.core.kernels.dispatch import make_gpusim_kernel

        kernel = make_gpusim_kernel(engine="batched")
    cfg = Phase1Config(pruning="mg", kernel=kernel)
    t0 = time.perf_counter()
    result = run_phase1(graph, cfg)
    elapsed = time.perf_counter() - t0
    return result, elapsed


def run(scale: float | None = None) -> ExperimentOutput:
    scale = scale if scale is not None else bench_scale()
    rows = []
    series: dict[str, list[float]] = {}
    notes = []
    crossover_rows = []
    backends = _backends()
    if "jit" in backends:
        # probed (and compiled) inside _backends(), so the one-off compile
        # never lands in a timed row
        from repro.core.kernels.jit import get_runtime

        rt = get_runtime()
        notes.append(
            f"jit provider: {rt.provider} "
            f"(one-off compile {rt.compile_s:.3f}s, excluded from rows)"
        )
    for graph in load_suite(GRAPHS, scale=scale):
        per_backend = {}
        for backend in backends:
            result, elapsed = _run_backend(graph, backend)
            per_backend[backend] = (result, elapsed)
        ref, ref_time = per_backend["vectorized"]
        for backend in backends:
            result, elapsed = per_backend[backend]
            if not np.array_equal(result.communities, ref.communities):
                raise AssertionError(
                    f"{backend} diverged from vectorized on {graph.name}"
                )
            aggregated = sum(
                h.aggregated_edges or 0 for h in result.history
            )
            rows.append(
                {
                    "graph": graph.name,
                    "backend": backend,
                    "time_s": elapsed,
                    "speedup": f"{ref_time / elapsed:.2f}x",
                    "iters": result.num_iterations,
                    "active_edges": result.processed_edges,
                    "aggregated_edges": aggregated,
                    "agg_frac": (
                        f"{aggregated / result.processed_edges:.0%}"
                        if result.processed_edges
                        else "-"
                    ),
                }
            )
        auto_result, _ = per_backend["auto"]
        series[f"{graph.name} agg frac"] = [
            (h.aggregated_edges or 0) / h.active_edges if h.active_edges else 0.0
            for h in auto_result.history
        ]
        for span in backend_crossover_rows(auto_result.history):
            crossover_rows.append({"graph": graph.name, **span})
        incr_result, _ = per_backend["incremental"]
        incr_agg = sum(h.aggregated_edges or 0 for h in incr_result.history)
        notes.append(
            f"{graph.name}: incremental re-aggregated "
            f"{incr_agg / max(incr_result.processed_edges, 1):.0%} of the "
            f"active adjacency the full path streams"
        )
    for row in crossover_rows:
        notes.append(
            f"auto crossover {row['graph']} iters {row['span']}: "
            f"{row['backend']} ({row['aggregated_edges']} edges aggregated)"
        )
    return ExperimentOutput(
        experiment="kernels",
        title="DecideAndMove backend crossover (host dispatch)",
        rows=rows,
        columns=[
            "graph", "backend", "time_s", "speedup", "iters",
            "active_edges", "aggregated_edges", "agg_frac",
        ],
        series=series,
        notes=notes,
    )
