"""Table 4: NMI against LFR ground-truth communities.

Three LFR benchmark graphs spanning the paper's community-strength regimes
(their baseline NMI values were 0.350 / 0.924 / 0.434). Paper claims: the
baseline, MG and SM columns are identical; RM and PM reduce NMI slightly
(-0.2% / -0.3% on average).
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentOutput
from repro.bench.workloads import bench_scale, lfr_suite
from repro.core import GalaConfig, gala
from repro.metrics import normalized_mutual_information


def run(scale: float | None = None) -> ExperimentOutput:
    scale = scale if scale is not None else bench_scale()
    rows = []
    rm_drops, pm_drops = [], []
    for name, graph, truth in lfr_suite(scale):
        nmis = {}
        for strat in ["none", "mg", "sm", "rm", "pm", "mg+rm"]:
            result = gala(graph, GalaConfig(pruning=strat, seed=17))
            nmis[strat] = normalized_mutual_information(result.communities, truth)
        rm_drops.append(nmis["none"] - nmis["rm"])
        pm_drops.append(nmis["none"] - nmis["pm"])
        rows.append(
            {
                "graph": name,
                "n": graph.n,
                "m": graph.num_edges,
                "Baseline/MG/SM": round(nmis["none"], 5),
                "MG==base": bool(nmis["mg"] == nmis["none"]),
                "SM==base": bool(nmis["sm"] == nmis["none"]),
                "RM": round(nmis["rm"], 5),
                "MG+RM": round(nmis["mg+rm"], 5),
                "PM": round(nmis["pm"], 5),
            }
        )
    return ExperimentOutput(
        experiment="table4",
        title="NMI vs LFR ground truth under each pruning strategy",
        rows=rows,
        notes=[
            f"avg NMI drop: RM {np.mean(rm_drops):+.4f}, PM {np.mean(pm_drops):+.4f} "
            "(paper: ~0.002 and ~0.003)",
            "paper Table 4 regimes: strong (Graph2, NMI~0.92) vs mixed "
            "(Graph1/Graph3, NMI~0.35-0.43)",
        ],
    )
