"""Table 2 counterpart: statistics of the stand-in graphs.

Not an evaluation result, but the anchor of the whole substitution: this
table records what each synthetic stand-in actually looks like next to the
real graph it replaces.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentOutput
from repro.bench.workloads import ALL_GRAPHS, bench_scale
from repro.graph.generators import load_dataset
from repro.graph.generators.datasets import DATASETS
from repro.graph.stats import compute_stats


def run(scale: float | None = None) -> ExperimentOutput:
    scale = scale if scale is not None else bench_scale()
    rows = []
    for abbr in ALL_GRAPHS:
        spec = DATASETS[abbr]
        g = load_dataset(abbr, scale)
        s = compute_stats(g)
        rows.append(
            {
                "graph": abbr,
                "paper graph": spec.paper_name,
                "paper |V|/|E|": f"{spec.paper_vertices}/{spec.paper_edges}",
                "standin n": s.n,
                "standin m": s.num_edges,
                "deg max": s.max_degree,
                "deg<32": f"{100 * s.frac_small_degree:.0f}%",
                "character": spec.character,
            }
        )
    return ExperimentOutput(
        experiment="table2",
        title="Stand-in graphs vs the paper's Table 2",
        rows=rows,
        notes=[
            f"scale={scale}; real graphs are 10^2-10^5 x larger — the "
            "stand-ins match community-structure character, not size "
            "(see DESIGN.md substitutions)."
        ],
    )
