"""Figure 4: shared-memory maintenance and access rates, per iteration, of
the hierarchical vs unified hashtable on the LiveJournal stand-in.

Paper claims: hierarchical beats unified on both rates (4.7x on access
rate); the hierarchical rates *increase* as iterations proceed (fewer
communities -> more of them win their shared bucket) while unified stays
flat (its split is fixed by s/(s+g)); access rate >= maintenance rate
(hot communities are found early and stay in shared memory).
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentOutput
from repro.bench.workloads import bench_scale
from repro.core.kernels.hash import HashKernel
from repro.core.phase1 import Phase1Config, run_phase1
from repro.graph.generators import load_dataset
from repro.gpusim.device import Device

#: small shared table relative to the community count so the designs differ
SHARED_BUCKETS = 128


def _instrumented_run(graph, kind: str, max_iterations: int):
    import numpy as np

    # The global region is preallocated for the worst-case degree (blocks
    # are assigned to vertices dynamically), which is what dilutes the
    # unified design's s/(s+g) shared fraction on skewed graphs.
    max_degree = int(np.diff(graph.indptr).max())
    kernel = HashKernel(
        Device(),
        table_kind=kind,
        shared_buckets=SHARED_BUCKETS,
        fixed_global_buckets=max(2 * max_degree, 1024),
    )

    def wrapped(state, idx, remove_self):
        result = kernel(state, idx, remove_self)
        kernel.flush_rates()
        return result

    run_phase1(
        graph,
        Phase1Config(pruning="mg", kernel=wrapped, max_iterations=max_iterations),
    )
    return kernel.rate_log


def run(scale: float | None = None, max_iterations: int = 12) -> ExperimentOutput:
    # the batched SoA engine decides whole launches at once, so the LJ
    # slice can be 2.5x larger than the scalar engine's old 0.1 cap
    scale = scale if scale is not None else bench_scale()
    graph = load_dataset("LJ", min(scale, 0.25))
    logs = {
        kind: _instrumented_run(graph, kind, max_iterations)
        for kind in ("hierarchical", "unified")
    }
    n_iter = min(len(v) for v in logs.values())
    rows = []
    for it in range(n_iter):
        rows.append(
            {
                "iteration": it,
                "hier maint%": round(100 * logs["hierarchical"][it]["maintenance_rate"], 1),
                "hier access%": round(100 * logs["hierarchical"][it]["access_rate"], 1),
                "unif maint%": round(100 * logs["unified"][it]["maintenance_rate"], 1),
                "unif access%": round(100 * logs["unified"][it]["access_rate"], 1),
            }
        )
    h_acc = [e["access_rate"] for e in logs["hierarchical"][:n_iter]]
    u_acc = [e["access_rate"] for e in logs["unified"][:n_iter]]
    ratio = np.mean(h_acc) / max(np.mean(u_acc), 1e-9)
    return ExperimentOutput(
        experiment="fig4",
        title="Hierarchical vs unified hashtable rates in shared memory",
        rows=rows,
        series={
            "hier access": h_acc,
            "unif access": u_acc,
        },
        notes=[
            f"access-rate advantage hierarchical/unified = {ratio:.1f}x "
            "(paper: 4.7x)",
            "hierarchical rates rise with iterations; unified stays flat",
        ],
    )
