"""Figure 9: the memory-management kernels on their target workloads.

* **(a) small degrees** (< 32, a warp per vertex): shuffle-based kernel vs
  the hash-based kernel with a shared-memory table vs global-memory table.
  Paper: shuffle wins 1.9x over hash-global and 1.2x over hash-shared.
* **(b) large degrees** (> 2000, a block per vertex): hierarchical vs
  unified vs global-only hashtable. Paper: hierarchical wins 1.5x over
  global-only and 1.2x over unified; unified suffers most when the maximum
  degree is large (most buckets land in global memory).

The stand-ins carry few degree>2000 vertices, so part (b) additionally
builds synthetic hub vertices (degree ~2500 with many distinct
neighbouring communities), which is exactly the workload the paper's
part (b) isolates.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentOutput
from repro.bench.workloads import bench_scale
from repro.core.kernels.hash import HashKernel
from repro.core.kernels.shuffle import ShuffleKernel
from repro.core.state import CommunityState
from repro.graph.builder import from_edge_array
from repro.graph.generators import load_dataset
from repro.gpusim.device import Device

SMALL_GRAPHS = ["LJ", "UK", "HW"]


def _small_degree_costs(graph, max_vertices: int = 4000) -> dict[str, float]:
    deg = np.diff(graph.indptr)
    idx = np.flatnonzero(deg < 32)[:max_vertices].astype(np.int64)
    state = CommunityState.singletons(graph)
    out = {}
    kernels = {
        "shuffle": lambda d: ShuffleKernel(d),
        "hash (shared)": lambda d: HashKernel(d, "hierarchical"),
        "hash (global)": lambda d: HashKernel(d, "global"),
    }
    for name, make in kernels.items():
        dev = Device()
        make(dev)(state, idx)
        out[name] = dev.profiler.total_cycles
    return out


def hub_workload(
    hub_degree: int = 2500, num_hubs: int = 16, num_comms: int = 600, seed: int = 5
):
    """Synthetic large-degree vertices: each hub touches ``num_comms``
    distinct communities — the regime where hashtable placement decides
    everything."""
    rng = np.random.default_rng(seed)
    n = num_hubs + hub_degree
    src = np.repeat(np.arange(num_hubs), hub_degree)
    dst = np.tile(np.arange(num_hubs, n), num_hubs)
    graph = from_edge_array(n, src, dst, 1.0, name="hubs")
    comm = np.arange(n, dtype=np.int64)
    comm[num_hubs:] = num_hubs + rng.integers(0, num_comms, n - num_hubs)
    state = CommunityState.from_assignment(graph, comm)
    hubs = np.arange(num_hubs, dtype=np.int64)
    return graph, state, hubs


def _large_degree_costs(shared_buckets: int = 2048) -> dict[str, float]:
    # A100-class blocks can carve ~2k buckets out of shared memory; the
    # global region holds ~2x that, giving the unified design a meaningful
    # (but fixed) s/(s+g) shared fraction — the paper's part-(b) regime.
    _, state, hubs = hub_workload()
    out = {}
    for kind, label in [
        ("hierarchical", "hierarchical"),
        ("unified", "unified"),
        ("global", "global-only"),
    ]:
        dev = Device()
        HashKernel(
            dev, kind, shared_buckets=shared_buckets, load_factor=0.7
        )(state, hubs)
        out[label] = dev.profiler.total_cycles
    return out


def run(scale: float | None = None) -> ExperimentOutput:
    scale = scale if scale is not None else bench_scale()
    rows = []
    for abbr in SMALL_GRAPHS:
        # the batched SoA engine decides whole launches at once, so the
        # experiment runs at the requested scale (the scalar engine used
        # to force a 0.1 cap and 400 vertices)
        g = load_dataset(abbr, min(scale, 1.0))
        costs = _small_degree_costs(g)
        base = costs["shuffle"]
        rows.append(
            {
                "part": "a (deg<32)",
                "workload": abbr,
                "shuffle": "1.00x",
                "hash (shared)": f"{costs['hash (shared)'] / base:.2f}x",
                "hash (global)": f"{costs['hash (global)'] / base:.2f}x",
            }
        )
    large = _large_degree_costs()
    base = large["hierarchical"]
    rows.append(
        {
            "part": "b (deg>2000)",
            "workload": "hubs",
            "hierarchical": "1.00x",
            "unified": f"{large['unified'] / base:.2f}x",
            "global-only": f"{large['global-only'] / base:.2f}x",
        }
    )
    columns = [
        "part", "workload", "shuffle", "hash (shared)", "hash (global)",
        "hierarchical", "unified", "global-only",
    ]
    return ExperimentOutput(
        experiment="fig9",
        title="Kernel costs on small-degree and large-degree workloads",
        rows=rows,
        columns=columns,
        notes=[
            "paper (a): shuffle 1.9x faster than hash-global, 1.2x than "
            "hash-shared",
            "paper (b): hierarchical 1.5x faster than global-only, 1.2x "
            "than unified",
        ],
    )
