"""Figure 10: multi-GPU scalability and time breakdown.

(a) speedup from 1 to 8 simulated GPUs on every graph (paper: 2.5x average,
sub-linear because communication does not shrink);
(b) computation vs communication breakdown on the OR stand-in (paper:
computation drops 4.4x from 1 to 8 GPUs, communication stays nearly
constant and reaches 43% of runtime at 8 GPUs).
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentOutput
from repro.bench.workloads import bench_scale
from repro.graph.generators import load_dataset
from repro.multigpu import MultiGpuConfig, run_multigpu_phase1

GPU_COUNTS = [1, 2, 4, 8]
GRAPHS = ["LJ", "OR", "UK", "HW"]


def run(scale: float | None = None, graphs: list[str] | None = None) -> ExperimentOutput:
    scale = scale if scale is not None else bench_scale()
    graphs = graphs or GRAPHS
    rows = []
    speedups_at_8 = []
    for abbr in graphs:
        g = load_dataset(abbr, scale)
        results = {
            k: run_multigpu_phase1(g, MultiGpuConfig(num_gpus=k))
            for k in GPU_COUNTS
        }
        t1 = results[1].total_seconds()
        row: dict = {"graph": abbr}
        for k in GPU_COUNTS:
            row[f"{k} GPU"] = f"{t1 / results[k].total_seconds():.2f}x"
        speedups_at_8.append(t1 / results[8].total_seconds())
        rows.append(row)

    # (b) breakdown on OR — merged into the same schema via shared columns
    g = load_dataset("OR", scale)
    comp1 = None
    for k in GPU_COUNTS:
        r = run_multigpu_phase1(g, MultiGpuConfig(num_gpus=k))
        comp, comm = r.compute_seconds(), r.comm_seconds()
        comp1 = comp1 or comp
        rows.append(
            {
                "graph": f"OR breakdown @{k} GPU",
                "compute (ms)": round(1e3 * comp, 3),
                "comm (ms)": round(1e3 * comm, 3),
                "comm share": f"{100 * comm / (comp + comm):.1f}%",
                "compute scale": f"{comp1 / comp:.2f}x",
            }
        )
    columns = ["graph"] + [f"{k} GPU" for k in GPU_COUNTS] + [
        "compute (ms)", "comm (ms)", "comm share", "compute scale",
    ]
    return ExperimentOutput(
        experiment="fig10",
        title="Multi-GPU speedup (a) and OR compute/comm breakdown (b)",
        rows=rows,
        columns=columns,
        notes=[
            f"avg speedup at 8 GPUs: {np.mean(speedups_at_8):.2f}x "
            "(paper: 2.5x; higher here because the stand-ins' compute/"
            "comm ratio differs at laptop scale)",
            "paper (b): compute drops 4.4x from 1->8 GPUs, comm nearly "
            "constant (43% of runtime at 8 GPUs)",
        ],
    )
