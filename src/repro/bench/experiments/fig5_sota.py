"""Figure 5: end-to-end phase-1 runtime, GALA vs the state of the art.

Every comparator design (see :mod:`repro.baselines.designs`) runs the same
functional algorithm; the simulated runtime differs because the data paths
and pruning do. Paper claims reproduced as orderings: GALA is fastest on
every graph; Grappolo(GPU)* is the closest competitor (paper: 6x), then
cuGraph (17x), nido (21x) ~ Grappolo(GPU) (22x), Gunrock (53x), and
Grappolo(CPU) is far behind (222x). Modularity is identical across systems
(all follow Grappolo's convergence strategy).
"""

from __future__ import annotations

import numpy as np

from repro.baselines import BASELINE_DESIGNS, run_baseline, run_gala_simulated
from repro.bench.harness import ExperimentOutput
from repro.bench.workloads import ALL_GRAPHS, bench_scale
from repro.graph.generators import load_dataset


def run(scale: float | None = None, graphs: list[str] | None = None) -> ExperimentOutput:
    scale = scale if scale is not None else bench_scale()
    graphs = graphs or ALL_GRAPHS
    rows = []
    slowdowns: dict[str, list[float]] = {name: [] for name in BASELINE_DESIGNS}
    for abbr in graphs:
        g = load_dataset(abbr, scale)
        gala_r = run_gala_simulated(g)
        row = {
            "graph": abbr,
            "GALA (ms)": round(gala_r.simulated_seconds * 1e3, 2),
            "Q": round(gala_r.modularity, 5),
        }
        for name, design in BASELINE_DESIGNS.items():
            r = run_baseline(g, design)
            factor = r.simulated_cycles / gala_r.simulated_cycles
            row[name] = f"{factor:.1f}x"
            slowdowns[name].append(factor)
        rows.append(row)
    avg = {"graph": "Avg.", "GALA (ms)": "", "Q": ""}
    for name, vals in slowdowns.items():
        avg[name] = f"{np.mean(vals):.1f}x"
    rows.append(avg)
    return ExperimentOutput(
        experiment="fig5",
        title="GALA vs state of the art (slowdown factors relative to GALA)",
        rows=rows,
        notes=[
            "paper averages: Grappolo(GPU)* 6x, cuGraph 17x, nido 21x, "
            "Grappolo(GPU) 22x, Gunrock 53x, Grappolo(CPU) 222x",
            "factors shrink at laptop scale because MG pruning saves less "
            "on short runs; the ordering is the reproduced claim",
        ],
    )
