"""Figure 8: two-stage pruning profiling — where does phase-1 time go?

Three configurations on the shared data-path cost model (the same per-edge
charges as Figures 5/6, so all runtime figures live on one axis):

* **B**  — baseline: no pruning, naive weight recomputation (the update
  rescans every adjacency entry, same complexity as DecideAndMove);
* **P1** — MG pruning of DecideAndMove, still naive recomputation;
* **P2** — MG pruning plus delta weight updating (full GALA): the update
  only streams the moved vertices' rows.

Paper claims: in B, DecideAndMove dominates (65.5%); after P1 the weight
update becomes the bottleneck (45.7% of runtime); P2 accelerates the
weight update (paper: 7.3x) and shifts the bottleneck back to
DecideAndMove. The module also reports the engine's measured wall-clock
totals for reference.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentOutput
from repro.bench.workloads import bench_scale
from repro.core.phase1 import Phase1Config, Phase1Result, run_phase1
from repro.graph.generators import load_dataset

#: shared data-path constants (see repro.baselines.designs derivations)
DECIDE_CYCLES_PER_EDGE = 520.0
UPDATE_CYCLES_PER_EDGE = 450.0
OTHER_CYCLES_PER_VERTEX = 40.0  # aggregates, modularity, filter op

CONFIGS = {
    "B": Phase1Config(pruning="none", weight_update="recompute"),
    "P1": Phase1Config(pruning="mg", weight_update="recompute"),
    "P2": Phase1Config(pruning="mg", weight_update="delta"),
}


def breakdown_cycles(result: Phase1Result, graph, config: Phase1Config) -> dict:
    """Charge the recorded per-iteration workload to the three buckets."""
    decide = update = other = 0.0
    all_edges = graph.num_directed_edges
    for rec in result.history:
        decide += rec.active_edges * DECIDE_CYCLES_PER_EDGE
        if config.weight_update == "recompute":
            update += all_edges * UPDATE_CYCLES_PER_EDGE
        else:
            update += rec.moved_edges * UPDATE_CYCLES_PER_EDGE
        other += graph.n * OTHER_CYCLES_PER_VERTEX
    return {"decide": decide, "update": update, "other": other}


def run(scale: float | None = None, graphs: list[str] | None = None) -> ExperimentOutput:
    scale = scale if scale is not None else bench_scale()
    graphs = graphs or ["LJ", "OR"]
    rows = []
    notes = []
    for abbr in graphs:
        g = load_dataset(abbr, scale)
        updates = {}
        for label, cfg in CONFIGS.items():
            result = run_phase1(g, cfg)
            buckets = breakdown_cycles(result, g, cfg)
            grand = sum(buckets.values())
            updates[label] = buckets["update"]
            rows.append(
                {
                    "graph": abbr,
                    "config": label,
                    "total (Mcyc)": round(grand / 1e6, 1),
                    "DecideAndMove%": round(100 * buckets["decide"] / grand, 1),
                    "weight update%": round(100 * buckets["update"] / grand, 1),
                    "other%": round(100 * buckets["other"] / grand, 1),
                    "wall (ms)": round(
                        1e3 * sum(result.timers.totals().values()), 1
                    ),
                }
            )
        if updates["P2"] > 0:
            notes.append(
                f"{abbr}: weight-update speedup P1->P2 = "
                f"{updates['P1'] / updates['P2']:.1f}x (paper: 7.3x)"
            )
    notes.append(
        "paper: DecideAndMove 65.5% in B; weight update 45.7% in P1; "
        "P2 shifts the bottleneck back to DecideAndMove"
    )
    return ExperimentOutput(
        experiment="fig8",
        title="Phase-1 breakdown: B vs P1 vs P2 (shared cost model)",
        rows=rows,
        notes=notes,
    )
