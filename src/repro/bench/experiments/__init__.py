"""One module per paper table/figure; see repro.bench.harness for ids."""
