"""Figure 7: pruned proportion (inactive rate) per iteration for every
pruning strategy, on the paper's four representative graphs.

Paper claims: SM prunes almost nothing (<4% average); RM and PM are
competitive with MG; MG+RM prunes the most (up to 91.9%); pruning grows as
iterations proceed; PM terminates earlier than the others.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentOutput
from repro.bench.workloads import FIG7_GRAPHS, bench_scale
from repro.core.phase1 import Phase1Config, run_phase1
from repro.graph.generators import load_dataset
from repro.metrics.fnr_fpr import average_inactive_rate, inactive_rate_series

STRATEGIES = ["sm", "rm", "pm", "mg", "mg+rm"]


def run(scale: float | None = None, graphs: list[str] | None = None) -> ExperimentOutput:
    scale = scale if scale is not None else bench_scale()
    graphs = graphs or FIG7_GRAPHS
    rows = []
    series: dict[str, list[float]] = {}
    avg_by_strategy: dict[str, list[float]] = {s: [] for s in STRATEGIES}
    for abbr in graphs:
        g = load_dataset(abbr, scale)
        row: dict = {"graph": abbr}
        for strat in STRATEGIES:
            result = run_phase1(g, Phase1Config(pruning=strat, seed=17))
            avg = average_inactive_rate(result)
            avg_by_strategy[strat].append(avg)
            row[strat.upper()] = f"{100 * avg:.1f}%"
            row[f"{strat.upper()} iters"] = result.num_iterations
            if abbr == graphs[0]:
                series[strat.upper()] = list(inactive_rate_series(result))
        rows.append(row)
    avg_row: dict = {"graph": "Avg."}
    for strat in STRATEGIES:
        avg_row[strat.upper()] = f"{100 * np.mean(avg_by_strategy[strat]):.1f}%"
    rows.append(avg_row)
    return ExperimentOutput(
        experiment="fig7",
        title="Pruned proportion per strategy (series = first graph)",
        rows=rows,
        series=series,
        notes=[
            "paper: SM <4% avg; MG+RM up to 91.9%; MG adds ~37% pruning on "
            "top of RM's active set",
        ],
    )
