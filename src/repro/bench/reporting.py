"""Plain-text table and series formatting for experiment output.

The paper's artifact prints "the final results ... in tabular form on the
terminal"; these helpers do the same, dependency-free.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[dict], title: str | None = None, columns: Sequence[str] | None = None
) -> str:
    """Render dict rows as an aligned ASCII table.

    Column order follows the first row's key order unless ``columns`` is
    given; missing cells render empty.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    table = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in table)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in table:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(
    name: str, values: Iterable[float], width: int = 50, as_percent: bool = False
) -> str:
    """One-line text sparkline for an iteration series."""
    values = list(values)
    if not values:
        return f"{name}: (empty)"
    blocks = " ▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    spark = "".join(
        blocks[int((v - lo) / span * (len(blocks) - 1))] for v in values[:width]
    )
    if as_percent:
        return f"{name:16s} [{spark}] last={100 * values[-1]:.1f}% peak={100 * hi:.1f}%"
    return f"{name:16s} [{spark}] last={values[-1]:.4g} peak={hi:.4g}"


#: IterationTrace columns every runtime populates, in display order
_TRACE_BASE_COLUMNS = ("iteration", "num_active", "num_moved", "modularity")
#: optional IterationTrace columns, shown only when some record carries a
#: non-default value (kernel accounting on the local runtime, sync/comm
#: accounting on the multi-GPU and distributed ones)
_TRACE_OPTIONAL_COLUMNS = (
    "kernel_backend",
    "aggregated_edges",
    "comm_bytes",
    "comm_messages",
    "sim_cycles",
)


def trace_rows(history: Sequence) -> list[dict]:
    """Render a unified :class:`~repro.core.engine.IterationTrace` history
    as table rows.

    Works on any engine-driven runtime's history (local, multi-GPU,
    distributed): the shared movement/modularity columns always appear,
    and a runtime's cost/comm columns appear exactly when it populated
    them. Pair with :func:`format_table`.
    """
    optional = [
        c
        for c in _TRACE_OPTIONAL_COLUMNS
        if any(getattr(h, c, None) for h in history)
    ]
    rows = []
    for h in history:
        row = {c: getattr(h, c) for c in _TRACE_BASE_COLUMNS}
        sp = getattr(h, "sync_plan", None)
        if sp is not None:
            row["sync"] = sp.mode.value
        for c in optional:
            row[c] = getattr(h, c)
        rows.append(row)
    return rows


def backend_crossover_rows(history: Sequence) -> list[dict]:
    """Collapse a phase-1 history into contiguous same-backend spans.

    ``history`` is a sequence of :class:`IterationRecord`-like objects (or
    dicts) carrying ``kernel_backend``, ``num_active`` and
    ``aggregated_edges``. Returns one row per contiguous run of the same
    backend choice — the crossover table that makes the workload-aware
    dispatcher's behaviour legible (which path ran when, and how much
    aggregation work it did).
    """

    def get(h, key):
        return h.get(key) if isinstance(h, dict) else getattr(h, key, None)

    spans: list[dict] = []
    for i, h in enumerate(history):
        backend = get(h, "kernel_backend") or "?"
        agg = get(h, "aggregated_edges") or 0
        act = get(h, "num_active") or 0
        if spans and spans[-1]["backend"] == backend:
            span = spans[-1]
            span["last"] = i
            span["iterations"] += 1
            span["active_vertices"] += act
            span["aggregated_edges"] += agg
        else:
            spans.append(
                {
                    "backend": backend,
                    "first": i,
                    "last": i,
                    "iterations": 1,
                    "active_vertices": act,
                    "aggregated_edges": agg,
                }
            )
    return [
        {
            "span": (
                str(s["first"])
                if s["first"] == s["last"]
                else f"{s['first']}-{s['last']}"
            ),
            "backend": s["backend"],
            "iterations": s["iterations"],
            "active_vertices": s["active_vertices"],
            "aggregated_edges": s["aggregated_edges"],
        }
        for s in spans
    ]


def format_speedups(base_key: str, rows: Sequence[dict], time_key: str) -> list[dict]:
    """Augment rows with a 'speedup vs <base>' column.

    ``rows`` must contain one row whose ``system`` equals ``base_key``.
    """
    base = next(r for r in rows if r.get("system") == base_key)
    out = []
    for r in rows:
        r = dict(r)
        r["slowdown_vs_" + base_key] = (
            r[time_key] / base[time_key] if base[time_key] else float("inf")
        )
        out.append(r)
    return out
