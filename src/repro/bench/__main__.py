"""CLI: ``python -m repro.bench [experiment-id ...] [--scale S]``.

With no arguments, runs every registered experiment at the default bench
scale and prints the paper-formatted tables.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import time

from repro.bench.harness import EXPERIMENTS, list_experiments, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids (default: all). Available: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="graph-size multiplier (default: REPRO_BENCH_SCALE or 0.25)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="additionally dump all experiment outputs as JSON",
    )
    parser.add_argument(
        "--obs-dir", metavar="DIR", default=None,
        help="opt into the observability layer: per experiment, write "
             "<id>.trace.json (Chrome trace) and <id>.metrics.jsonl here",
    )
    args = parser.parse_args(argv)

    if args.list:
        for eid, title in list_experiments():
            print(f"{eid:8s} {title}")
        return 0

    if args.obs_dir:
        os.makedirs(args.obs_dir, exist_ok=True)

    targets = args.experiments or EXPERIMENTS
    collected = []
    for eid in targets:
        if args.obs_dir:
            from repro import obs

            sess_cm = obs.session(
                trace=os.path.join(args.obs_dir, f"{eid}.trace.json"),
                metrics=os.path.join(args.obs_dir, f"{eid}.metrics.jsonl"),
                process_name=f"repro.bench.{eid}",
            )
        else:
            sess_cm = contextlib.nullcontext()
        start = time.perf_counter()
        with sess_cm:
            output = run_experiment(eid, scale=args.scale)
        print(output.render())
        print(f"({eid} completed in {time.perf_counter() - start:.1f}s)\n")
        collected.append(output)
    if args.obs_dir:
        print(f"wrote per-experiment trace/metrics artifacts to {args.obs_dir}")
    if args.json:
        payload = [
            {
                "experiment": o.experiment,
                "title": o.title,
                "rows": o.rows,
                "series": o.series,
                "notes": o.notes,
            }
            for o in collected
        ]
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, default=str)
        print(f"wrote JSON results to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
