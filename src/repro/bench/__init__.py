"""Experiment harness: regenerates every table and figure of the paper.

Each module in :mod:`repro.bench.experiments` reproduces one table/figure;
:func:`repro.bench.harness.run_experiment` runs one by id and prints the
paper-formatted rows; ``python -m repro.bench`` runs them all. The pytest
benchmarks under ``benchmarks/`` call the same entry points and assert the
paper's qualitative claims hold.
"""

from repro.bench.harness import (
    EXPERIMENTS,
    ExperimentOutput,
    list_experiments,
    run_experiment,
)
from repro.bench.reporting import format_table
from repro.bench.workloads import bench_scale, load_suite, lfr_suite

__all__ = [
    "EXPERIMENTS",
    "ExperimentOutput",
    "list_experiments",
    "run_experiment",
    "format_table",
    "bench_scale",
    "load_suite",
    "lfr_suite",
]
