"""Experiment registry and runner.

Each experiment module registers a ``run(scale) -> ExperimentOutput``
function here under its paper id. ``python -m repro.bench [id ...]`` runs
and prints them.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.bench.reporting import format_series, format_table
from repro.errors import ExperimentError


@dataclass
class ExperimentOutput:
    """What one experiment produces.

    ``rows`` render as the main table; ``series`` as one-line sparklines
    (iteration-indexed figures); ``notes`` carry the paper-vs-measured
    commentary recorded into EXPERIMENTS.md.
    """

    experiment: str
    title: str
    rows: list[dict] = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)
    series_percent: bool = True
    notes: list[str] = field(default_factory=list)
    columns: Optional[list[str]] = None

    def render(self) -> str:
        parts = [f"== {self.experiment}: {self.title} =="]
        if self.rows:
            parts.append(format_table(self.rows, columns=self.columns))
        for name, values in self.series.items():
            parts.append(format_series(name, values, as_percent=self.series_percent))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)


#: experiment id -> (module name, title)
_SPECS: dict[str, tuple[str, str]] = {
    "table2": ("table2_datasets", "Graph statistics (stand-ins for Table 2)"),
    "fig1": ("fig1_unmoved", "Unmoved/pruned proportion per iteration (Figure 1b)"),
    "table1": ("tab1_fnr_fpr", "FNR/FPR of pruning strategies (Table 1)"),
    "fig4": ("fig4_hashtable_rates", "Shared-memory maintenance/access rates (Figure 4)"),
    "fig5": ("fig5_sota", "Comparison with the state of the art (Figure 5)"),
    "fig6": ("fig6_optimizations", "Impact of optimizations (Figure 6)"),
    "fig7": ("fig7_pruning", "Pruned proportion per strategy (Figure 7)"),
    "table3": ("tab3_modularity", "Modularity comparisons (Table 3)"),
    "table4": ("tab4_nmi", "NMI on LFR ground truth (Table 4)"),
    "fig8": ("fig8_two_stage", "Two-stage pruning profiling (Figure 8)"),
    "fig9": ("fig9_kernels", "Memory-management kernels (Figure 9)"),
    "fig10": ("fig10_scaling", "Multi-GPU scalability (Figure 10)"),
    "stress": ("stress_scaling", "Throughput across graph sizes (Section 5.6 analogue)"),
    "kernels": ("kernel_backends", "DecideAndMove backend crossover (host dispatch)"),
}

EXPERIMENTS = list(_SPECS)


def list_experiments() -> list[tuple[str, str]]:
    """(id, title) for every registered experiment."""
    return [(eid, title) for eid, (_, title) in _SPECS.items()]


def run_experiment(
    experiment_id: str, scale: float | None = None
) -> ExperimentOutput:
    """Run one experiment by id (e.g. ``"table1"``, ``"fig9"``)."""
    if experiment_id not in _SPECS:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: {EXPERIMENTS}"
        )
    module_name, _ = _SPECS[experiment_id]
    module = importlib.import_module(f"repro.bench.experiments.{module_name}")
    run: Callable = module.run
    return run(scale=scale)
