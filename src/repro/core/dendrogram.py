"""A first-class view of the Louvain hierarchy.

:class:`Dendrogram` wraps a :class:`~repro.core.louvain.LouvainResult`
into the tree structure users actually want to query: cut it at any level,
walk a community's subtree, list each super-community's children, and
export to Newick for external tree tooling.

The node id convention: ``(level, community_id)`` where level -1 denotes
the leaves (original vertices).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.louvain import LouvainResult
from repro.graph.csr import CSRGraph


@dataclass
class Dendrogram:
    """Hierarchy of community merges across Louvain rounds."""

    #: assignments[l][v] = community (on the ORIGINAL vertices) after round l
    assignments: list[np.ndarray]
    n: int

    @classmethod
    def from_result(cls, result: LouvainResult) -> "Dendrogram":
        n = len(result.communities)
        assignments = [
            result.communities_at_level(level)
            for level in range(result.num_levels)
        ]
        return cls(assignments=assignments, n=n)

    @property
    def num_levels(self) -> int:
        return len(self.assignments)

    def cut(self, level: int) -> np.ndarray:
        """Community per original vertex after round ``level`` (compacted
        ids). ``level = -1`` gives singletons; the last level is the final
        partition."""
        if level == -1:
            return np.arange(self.n, dtype=np.int64)
        if not (0 <= level < self.num_levels):
            raise IndexError(f"level {level} outside [-1, {self.num_levels})")
        _, compact = np.unique(self.assignments[level], return_inverse=True)
        return compact.astype(np.int64)

    def num_communities(self, level: int) -> int:
        return int(self.cut(level).max()) + 1 if self.n else 0

    def children(self, level: int, community: int) -> list[int]:
        """Sub-communities (at ``level - 1``) merged into ``community`` at
        ``level``. At level 0 the children are original vertex ids."""
        cur = self.cut(level)
        members = np.flatnonzero(cur == community)
        if len(members) == 0:
            raise KeyError(f"community {community} empty at level {level}")
        if level == 0:
            return members.tolist()
        prev = self.cut(level - 1)
        return sorted(set(prev[members].tolist()))

    def members(self, level: int, community: int) -> np.ndarray:
        """Original vertices of ``community`` at ``level``."""
        return np.flatnonzero(self.cut(level) == community)

    def community_sizes(self, level: int) -> np.ndarray:
        return np.bincount(self.cut(level))

    def is_refinement_chain(self) -> bool:
        """Whether every level is a coarsening of the previous one (a core
        Louvain invariant; exposed for auditing custom hierarchies)."""
        for level in range(1, self.num_levels):
            prev = self.cut(level - 1)
            cur = self.cut(level)
            # each prev community must map into exactly one cur community
            pair_ids = prev.astype(np.int64) * (cur.max() + 1) + cur
            if len(np.unique(pair_ids)) != len(np.unique(prev)):
                return False
        return True

    def to_newick(self, max_leaves: int = 500) -> str:
        """Newick string of the merge tree (vertex leaves labelled ``v<i>``).

        Refuses to serialise beyond ``max_leaves`` leaves — Newick of a
        million-vertex dendrogram helps nobody.
        """
        if self.n > max_leaves:
            raise ValueError(
                f"{self.n} leaves exceed max_leaves={max_leaves}; "
                "raise the limit explicitly if you really want this"
            )

        def subtree(level: int, community: int) -> str:
            if level == -1:
                return f"v{community}"
            kids = self.children(level, community)
            inner = ",".join(subtree(level - 1, k) for k in kids)
            return f"({inner})"

        top = self.cut(self.num_levels - 1) if self.num_levels else self.cut(-1)
        roots = [
            subtree(self.num_levels - 1, c) for c in range(int(top.max()) + 1)
        ]
        return "(" + ",".join(roots) + ");"


def dendrogram_from_graph(graph: CSRGraph, **gala_kwargs) -> Dendrogram:
    """Convenience: run GALA and wrap the hierarchy."""
    from repro.core.gala import GalaConfig, gala

    result = gala(graph, GalaConfig(**gala_kwargs))
    return Dendrogram.from_result(result)
