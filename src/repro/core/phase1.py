"""Phase 1 of the BSP parallel Louvain algorithm (paper Algorithm 1).

The loop itself lives in :mod:`repro.core.engine`; this module provides
the **local executor** — DecideAndMove through one host/gpusim kernel
backend plus the configured community-weight updater — and the public
:func:`run_phase1` entry point that drives it:

1. ``DecideAndMove`` for every *active* vertex (the configured kernel
   backend);
2. BSP-synchronous application of the movements;
3. community-weight updating (naive recompute or GALA's delta scheme);
4. refresh of community aggregates and modularity (lines 5-11);
5. the pruning strategy predicts the next active set;
6. terminate via the engine's :class:`~repro.core.engine.ConvergenceTracker`.

Every iteration is recorded in an :class:`IterationTrace`, which carries
enough to regenerate the paper's Figures 1, 7, 8 and Table 1 without any
extra instrumentation passes. With ``oracle=True`` the engine additionally
derives the ground-truth moved set that FNR/FPR measurement requires from
one full-set DecideAndMove per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

import numpy as np

from repro.core.engine import (
    EngineConfig,
    EngineResult,
    Executor,
    IterationTrace,
    run_engine,
)
from repro.core.arena import BufferArena
from repro.core.kernels.incremental import make_kernel
from repro.core.kernels.vectorized import DecideResult
from repro.core.pruning.base import PruningStrategy
from repro.core.state import CommunityState
from repro.core.weights import (
    delta_update,
    make_jit_delta_updater,
    make_weight_updater,
    movement_frontier,
    refresh_aggregates,
)
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike
from repro.utils.timer import TimerRegistry

KernelFn = Callable[[CommunityState, np.ndarray, bool], DecideResult]

#: the unified per-iteration record (engine schema); kept under its
#: historical name for existing consumers
IterationRecord = IterationTrace

#: phase-1 results are plain engine results
Phase1Result = EngineResult


def _resolve_kernel(spec: Union[str, KernelFn]) -> KernelFn:
    """Resolve a backend name (or pass a callable through).

    Stateful backends (``incremental``/``auto``) are instantiated fresh per
    call, so every ``run_phase1`` gets its own cache.
    """
    if callable(spec):
        return spec
    if isinstance(spec, str):
        return make_kernel(spec)
    raise ValueError(
        f"unknown kernel backend {spec!r}; pass a backend name or a callable"
    )


@dataclass
class Phase1Config:
    """Configuration of one phase-1 run.

    Attributes
    ----------
    pruning:
        Strategy name (``none``/``sm``/``rm``/``pm``/``mg``/``mg+rm``) or a
        :class:`PruningStrategy` instance.
    weight_update:
        ``"delta"`` (GALA, Section 3.5) or ``"recompute"`` (naive baseline).
    remove_self:
        Gain convention; see :func:`repro.core.kernels.vectorized.decide_moves`.
    theta:
        Modularity-improvement termination threshold (paper: ``1e-6``).
    patience:
        Number of consecutive below-``theta`` iterations tolerated before
        stopping; see :class:`repro.core.engine.ConvergenceTracker` for the
        limit-cycle-proof rule. ``patience=1`` reproduces the bare
        Algorithm 1 termination.
    max_iterations:
        Hard iteration cap (safety net; BSP Louvain with the Grappolo
        guards converges far earlier in practice).
    oracle:
        Record ground-truth moved sets for FNR/FPR measurement (one
        full-set DecideAndMove per iteration serves as both the oracle and
        the active-set decision — measurement only; see
        :class:`repro.core.engine.OracleProbe`).
    seed:
        Seed for strategy randomness (PM).
    kernel:
        DecideAndMove backend: ``"vectorized"`` (full re-aggregation, the
        reference), ``"incremental"`` (persistent pair cache),
        ``"bincount"`` (sort-free dense relabel), ``"jit"`` (compiled
        per-vertex loop via the optional numba extra or the bundled C
        fallback; raises :class:`~repro.errors.KernelUnavailableError`
        when neither compile provider works), ``"auto"`` (workload-aware
        dispatch, preferring jit once its compile probe passes; see
        :mod:`repro.core.kernels.incremental`), or a callable. All named
        backends return bit-identical decisions.
    """

    pruning: Union[str, PruningStrategy, None] = "none"
    weight_update: str = "delta"
    remove_self: bool = True
    #: resolution parameter gamma of the generalised modularity (1.0 =
    #: classic Newman; the knob the paper's intro cites for the
    #: resolution-limit problem)
    resolution: float = 1.0
    theta: float = 1e-6
    patience: int = 3
    max_iterations: int = 500
    oracle: bool = False
    seed: SeedLike = 0
    kernel: Union[str, KernelFn] = "vectorized"

    def engine_config(self) -> EngineConfig:
        return EngineConfig(
            pruning=self.pruning,
            remove_self=self.remove_self,
            theta=self.theta,
            patience=self.patience,
            max_iterations=self.max_iterations,
            oracle=self.oracle,
            seed=self.seed,
        )


class LocalExecutor(Executor):
    """Single-runtime executor: one kernel backend, one weight updater.

    Implements the optional kernel backend protocol (duck-typed so plain
    callables keep working): cache lifecycle, timer binding, and move
    notification for the incremental backends.
    """

    def __init__(
        self,
        graph: CSRGraph,
        config: Phase1Config,
        initial_communities: np.ndarray | None = None,
    ):
        self.config = config
        self.kernel = _resolve_kernel(config.kernel)
        self.remove_self = config.remove_self
        #: per-level scratch allocator; every iteration-shaped buffer the
        #: hot loop needs (frontier flags, kernel scratch, DecideResult
        #: storage, aggregate rebuilds) is served from here, so the
        #: steady-state loop performs zero heap allocations
        self.arena = BufferArena("engine")
        kernel_bind_arena = getattr(self.kernel, "bind_arena", None)
        if kernel_bind_arena is not None:
            kernel_bind_arena(self.arena)
        if initial_communities is None:
            self.state = CommunityState.singletons(
                graph, resolution=config.resolution
            )
        else:
            self.state = CommunityState.from_assignment(
                graph, initial_communities, resolution=config.resolution
            )
        kernel_reset = getattr(self.kernel, "reset", None)
        if kernel_reset is not None:
            kernel_reset(self.state)
        # A jit-backed kernel (JitKernel directly, or AutoKernel after a
        # successful probe) carries its compiled runtime; the executor then
        # also routes the delta weight update and the aggregates refresh
        # through the same runtime — all bit-identical to the NumPy paths.
        runtime = getattr(self.kernel, "runtime", None)
        if runtime is None:
            runtime = getattr(getattr(self.kernel, "jit", None), "runtime", None)
        if runtime is not None and runtime.provider == "python":
            runtime = None  # interpreted provider: NumPy paths are faster
        self._jit_runtime = runtime
        #: one-off compile seconds to charge to the first iteration trace
        self._compile_s_pending = float(getattr(self.kernel, "compile_s", 0.0))
        self.updater = self._make_updater()
        self._notify = getattr(self.kernel, "notify_moves", None)
        #: simulated device behind a gpusim kernel, if any (per-iteration
        #: cycle deltas feed IterationTrace.sim_cycles)
        self._device = getattr(self.kernel, "device", None)
        self._cycles_seen = 0.0

    def _make_updater(self):
        """The weight updater, arena-backed where that saves allocations.

        The registry lookup stays authoritative: the fast paths (compiled
        delta, arena-backed frontier) only replace the *stock*
        ``delta_update`` — a patched registry entry (the sanitizer
        mutation tests) is used as-is.
        """
        base = make_weight_updater(self.config.weight_update)
        if base is not delta_update:
            return base
        if self._jit_runtime is not None:
            return make_jit_delta_updater(self._jit_runtime, self.arena)
        arena = self.arena

        def arena_delta(state, prev_comm, moved):
            out = arena.zeros(
                ("weights", "frontier", arena.generation & 1),
                state.graph.n,
                np.bool_,
            )
            return delta_update(state, prev_comm, moved, out=out)

        return arena_delta

    def setup(self, timers: TimerRegistry) -> None:
        super().setup(timers)
        kernel_bind = getattr(self.kernel, "bind_timers", None)
        if kernel_bind is not None:
            kernel_bind(timers)

    def decide(self, active_idx: np.ndarray, active: np.ndarray) -> np.ndarray:
        result = self.kernel(self.state, active_idx, self.remove_self)
        return result.next_comm(self.state.comm)

    def apply_and_sync(self, next_comm: np.ndarray, moved: np.ndarray) -> float:
        state = self.state
        # New iteration for the arena: buffers double-buffered on
        # generation parity (the movement frontier) flip here, so the
        # previous iteration's frontier stays valid through this sweep.
        self.arena.tick()
        prev_comm = state.comm
        state.comm = next_comm
        with self.timers.measure("weight_update"):
            frontier = self.updater(state, prev_comm, moved)
        with self.timers.measure("aggregate"):
            refresh_aggregates(state, arena=self.arena, runtime=self._jit_runtime)
            next_q = state.modularity()
        if self._notify is not None:
            if frontier is None:
                frontier = movement_frontier(
                    state.graph,
                    moved,
                    out=self.arena.zeros(
                        ("weights", "frontier", self.arena.generation & 1),
                        state.graph.n,
                        np.bool_,
                    ),
                )
            self._notify(state, prev_comm, moved, frontier=frontier)
        return next_q

    def collect(self, trace: IterationTrace) -> None:
        trace.kernel_backend = getattr(self.kernel, "last_backend", None)
        trace.aggregated_edges = getattr(self.kernel, "last_aggregated_edges", None)
        trace.arena_allocs = self.arena.allocs
        if self._compile_s_pending:
            trace.kernel_compile_s = self._compile_s_pending
            self._compile_s_pending = 0.0
        if self._device is not None:
            total = self._device.profiler.total_cycles
            trace.sim_cycles = total - self._cycles_seen
            self._cycles_seen = total

    def profilers(self) -> dict:
        if self._device is None:
            return {}
        return {f"dev{self._device.device_id}": self._device.profiler}


def run_phase1(
    graph: CSRGraph,
    config: Phase1Config | None = None,
    initial_communities: np.ndarray | None = None,
) -> Phase1Result:
    """Run phase 1 on ``graph``; see the module docstring."""
    cfg = config or Phase1Config()
    executor = LocalExecutor(graph, cfg, initial_communities)
    return run_engine(executor, cfg.engine_config())
