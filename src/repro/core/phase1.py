"""Phase 1 of the BSP parallel Louvain algorithm (paper Algorithm 1).

One call to :func:`run_phase1` performs the iterative vertex-movement
optimisation on a single graph level:

1. ``DecideAndMove`` for every *active* vertex (the configured kernel
   backend);
2. BSP-synchronous application of the movements;
3. community-weight updating (naive recompute or GALA's delta scheme);
4. refresh of community aggregates and modularity (lines 5-11);
5. the pruning strategy predicts the next active set;
6. terminate once the modularity improvement drops below ``theta``.

Every iteration is recorded in an :class:`IterationRecord`, which carries
enough to regenerate the paper's Figures 1, 7, 8 and Table 1 without any
extra instrumentation passes. With ``oracle=True`` the engine additionally
runs an *unpruned* DecideAndMove on the same BSP snapshot each iteration to
obtain the ground-truth moved set that FNR/FPR measurement requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

import numpy as np

from repro.core.kernels.incremental import make_kernel
from repro.core.kernels.vectorized import DecideResult
from repro.core.pruning.base import IterationContext, PruningStrategy, make_strategy
from repro.core.state import CommunityState
from repro.core.weights import make_weight_updater, movement_frontier
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timer import TimerRegistry

KernelFn = Callable[[CommunityState, np.ndarray, bool], DecideResult]


def _resolve_kernel(spec: Union[str, KernelFn]) -> KernelFn:
    """Resolve a backend name (or pass a callable through).

    Stateful backends (``incremental``/``auto``) are instantiated fresh per
    call, so every ``run_phase1`` gets its own cache.
    """
    if callable(spec):
        return spec
    if isinstance(spec, str):
        return make_kernel(spec)
    raise ValueError(
        f"unknown kernel backend {spec!r}; pass a backend name or a callable"
    )


@dataclass
class Phase1Config:
    """Configuration of one phase-1 run.

    Attributes
    ----------
    pruning:
        Strategy name (``none``/``sm``/``rm``/``pm``/``mg``/``mg+rm``) or a
        :class:`PruningStrategy` instance.
    weight_update:
        ``"delta"`` (GALA, Section 3.5) or ``"recompute"`` (naive baseline).
    remove_self:
        Gain convention; see :func:`repro.core.kernels.vectorized.decide_moves`.
    theta:
        Modularity-improvement termination threshold (paper: ``1e-6``).
    patience:
        Number of consecutive below-``theta`` iterations tolerated before
        stopping. BSP sweeps can transiently lose modularity when
        simultaneous moves interfere and then recover (one of the
        convergence heuristics the paper adopts from Grappolo, footnote 1);
        the engine rides out up to ``patience`` such iterations and always
        returns the best state seen. ``patience=1`` reproduces the bare
        Algorithm 1 termination.
    max_iterations:
        Hard iteration cap (safety net; BSP Louvain with the Grappolo
        guards converges far earlier in practice).
    oracle:
        Record ground-truth moved sets for FNR/FPR measurement (runs a full
        unpruned DecideAndMove per iteration — measurement only; the
        active-set result is sliced out of the full run, so oracle mode
        costs one kernel call per iteration, not two).
    seed:
        Seed for strategy randomness (PM).
    kernel:
        DecideAndMove backend: ``"vectorized"`` (full re-aggregation, the
        reference), ``"incremental"`` (persistent pair cache),
        ``"bincount"`` (sort-free dense relabel), ``"auto"`` (workload-aware
        dispatch between the three; see
        :mod:`repro.core.kernels.incremental`), or a callable. All named
        backends return bit-identical decisions.
    """

    pruning: Union[str, PruningStrategy, None] = "none"
    weight_update: str = "delta"
    remove_self: bool = True
    #: resolution parameter gamma of the generalised modularity (1.0 =
    #: classic Newman; the knob the paper's intro cites for the
    #: resolution-limit problem)
    resolution: float = 1.0
    theta: float = 1e-6
    patience: int = 3
    max_iterations: int = 500
    oracle: bool = False
    seed: SeedLike = 0
    kernel: Union[str, KernelFn] = "vectorized"


@dataclass
class IterationRecord:
    """Everything observed in one BSP iteration."""

    iteration: int
    num_active: int
    num_moved: int
    modularity: float
    delta_q: float
    #: whether the active set was an actual prediction (False in iteration 0,
    #: where every strategy starts with all vertices active)
    predicted: bool
    #: adjacency entries streamed by DecideAndMove this iteration
    active_edges: int = 0
    #: adjacency entries of the vertices that moved (the delta weight
    #: update's workload; Figure 8's P2 stage)
    moved_edges: int = 0
    #: oracle fields (populated only when Phase1Config.oracle is set)
    oracle_moved: Optional[int] = None
    false_negatives: Optional[int] = None
    false_positives: Optional[int] = None
    #: aggregation path the kernel ran this iteration (None for plain
    #: callables that don't report one)
    kernel_backend: Optional[str] = None
    #: adjacency entries the kernel actually re-aggregated — equals
    #: ``active_edges`` for full backends, strictly less once the
    #: incremental cache has clean rows to reuse
    aggregated_edges: Optional[int] = None

    @property
    def inactive_rate(self) -> float:
        """Fraction of vertices pruned this iteration (paper Figure 7)."""
        total = self.num_active + self.num_inactive
        return self.num_inactive / total if total else 0.0

    # number of inactive vertices, set by the engine
    num_inactive: int = 0

    @property
    def unmoved_rate(self) -> float:
        """Fraction of processed-or-not vertices that did not move."""
        total = self.num_active + self.num_inactive
        return 1.0 - self.num_moved / total if total else 1.0


@dataclass
class Phase1Result:
    """Result of one phase-1 optimisation."""

    communities: np.ndarray
    modularity: float
    num_iterations: int
    history: list[IterationRecord]
    timers: TimerRegistry
    state: CommunityState
    #: total DecideAndMove vertex-processings (sum of active counts); the
    #: work measure pruning reduces
    processed_vertices: int = 0
    #: total adjacency entries touched by DecideAndMove
    processed_edges: int = 0


def run_phase1(
    graph: CSRGraph,
    config: Phase1Config | None = None,
    initial_communities: np.ndarray | None = None,
) -> Phase1Result:
    """Run phase 1 on ``graph``; see the module docstring."""
    cfg = config or Phase1Config()
    strategy = make_strategy(cfg.pruning)
    updater = make_weight_updater(cfg.weight_update)
    kernel = _resolve_kernel(cfg.kernel)
    rng = as_generator(cfg.seed)
    timers = TimerRegistry()

    if initial_communities is None:
        state = CommunityState.singletons(graph, resolution=cfg.resolution)
    else:
        state = CommunityState.from_assignment(
            graph, initial_communities, resolution=cfg.resolution
        )
    strategy.reset(state)
    active = strategy.initial_active(state)

    # Optional backend protocol (duck-typed so plain callables keep
    # working): cache lifecycle, timer binding, and move notification for
    # the incremental backends.
    kernel_reset = getattr(kernel, "reset", None)
    if kernel_reset is not None:
        kernel_reset(state)
    kernel_bind = getattr(kernel, "bind_timers", None)
    if kernel_bind is not None:
        kernel_bind(timers)
    kernel_notify = getattr(kernel, "notify_moves", None)

    q = state.modularity()
    best_q = q
    # Seed the best-state tracker with the initial state: if every sweep
    # loses ground (possible on weak-structure graphs late in the
    # hierarchy), the engine must return the initial state, never a
    # degraded one.
    best_state: CommunityState | None = state.copy()
    bad_streak = 0
    history: list[IterationRecord] = []
    degrees = graph.degrees
    processed_vertices = 0
    processed_edges = 0
    all_idx = np.arange(graph.n, dtype=np.int64)

    for it in range(cfg.max_iterations):
        active_idx = np.flatnonzero(active)
        active_edges = int(degrees[active_idx].sum())
        processed_vertices += len(active_idx)
        processed_edges += active_edges

        oracle_result: DecideResult | None = None
        with timers.measure("decide_and_move"):
            if cfg.oracle:
                # One full-set run serves both purposes: DecideAndMove is
                # row-local, so the active-set result is an exact slice of
                # the full-set result (tested invariant) — no second run.
                oracle_result = kernel(state, all_idx, cfg.remove_self)
                result = oracle_result.restrict(active_idx)
            else:
                result = kernel(state, active_idx, cfg.remove_self)
            next_comm = result.next_comm(state.comm)
        moved = next_comm != state.comm

        record = IterationRecord(
            iteration=it,
            num_active=len(active_idx),
            num_inactive=graph.n - len(active_idx),
            num_moved=int(moved.sum()),
            modularity=0.0,  # filled below
            delta_q=0.0,
            predicted=it > 0,
            active_edges=active_edges,
            moved_edges=int(degrees[moved].sum()),
            kernel_backend=getattr(kernel, "last_backend", None),
            aggregated_edges=getattr(kernel, "last_aggregated_edges", None),
        )

        if oracle_result is not None:
            # Ground truth on the same snapshot: what the unpruned engine
            # would have done for every vertex.
            oracle_next = oracle_result.next_comm(state.comm)
            oracle_moved = oracle_next != state.comm
            record.oracle_moved = int(oracle_moved.sum())
            record.false_negatives = int(np.sum(oracle_moved & ~active))
            record.false_positives = int(np.sum(~oracle_moved & active))

        prev_comm = state.comm
        state.comm = next_comm
        with timers.measure("weight_update"):
            frontier = updater(state, prev_comm, moved)
        with timers.measure("aggregate"):
            state.refresh_community_aggregates()
            next_q = state.modularity()
        if kernel_notify is not None:
            if frontier is None:
                frontier = movement_frontier(graph, moved)
            kernel_notify(state, prev_comm, moved, frontier=frontier)

        record.modularity = next_q
        record.delta_q = next_q - q
        history.append(record)

        # An iteration only counts as progress if it sets a new best by at
        # least theta — otherwise a limit cycle (Q bouncing between two
        # values) would reset a naive last-iteration streak forever.
        improved = next_q >= best_q + cfg.theta
        if next_q > best_q:
            best_q = next_q
            best_state = state.copy()

        with timers.measure("pruning"):
            ctx = IterationContext(
                state=state,
                prev_comm=prev_comm,
                moved=moved,
                active=active,
                iteration=it,
                rng=rng,
                remove_self=cfg.remove_self,
            )
            active = strategy.next_active(ctx)

        q = next_q
        bad_streak = 0 if improved else bad_streak + 1
        if bad_streak >= cfg.patience or record.num_moved == 0:
            break

    # Return the best state seen: a final oscillating sweep must not cost
    # modularity (the engine's replacement for Grappolo's ad-hoc guards).
    if best_state is not None and best_q > q:
        state = best_state
        q = best_q
    return Phase1Result(
        communities=state.comm.copy(),
        modularity=q,
        num_iterations=len(history),
        history=history,
        timers=timers,
        state=state,
        processed_vertices=processed_vertices,
        processed_edges=processed_edges,
    )
