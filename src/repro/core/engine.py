"""The unified BSP phase-1 engine (paper Algorithm 1, written once).

The paper's optimisation loop — decide → apply/sync → weight-update →
prune → converge — is the same whether DecideAndMove runs on one host
kernel, on partitioned simulated GPUs, or on distributed ranks with halo
exchange. This module is that loop, written exactly once and parameterized
by an :class:`Executor`:

* :meth:`Executor.decide` proposes the next assignment for the active set
  from the current BSP snapshot (every runtime's kernels are row-local, so
  the proposal depends only on the shared snapshot — the property that
  makes all executors bit-identical);
* :meth:`Executor.apply_and_sync` commits the move step: replica/halo
  synchronisation, community-weight updating, aggregate refresh;
* :meth:`Executor.collect` attaches the runtime's cost/comm accounting
  (kernel choice, simulated cycles, sync bytes) to the shared
  :class:`IterationTrace` record.

The engine owns everything the three pre-unification runtimes each
hand-rolled: active-set management and pruning, the limit-cycle-proof
convergence rule (:class:`ConvergenceTracker`), per-iteration tracing, the
wall-clock timers, and the oracle/FNR instrumentation
(:class:`OracleProbe`) — which therefore works identically on the local,
multi-GPU, and distributed runtimes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Optional, Union

import numpy as np

from repro import analysis
from repro.core.pruning.base import IterationContext, PruningStrategy, make_strategy
from repro.core.state import CommunityState
from repro.obs import _session as obs
from repro.obs.tracer import NULL_TRACER
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timer import TimerRegistry


# --------------------------------------------------------------------- #
# convergence
# --------------------------------------------------------------------- #
class ConvergenceTracker:
    """The engine's single convergence rule (Grappolo-derived, footnote 1).

    An iteration only counts as progress if it sets a new best modularity
    by at least ``theta`` — otherwise a limit cycle (Q bouncing between two
    values) would reset a naive last-iteration streak forever. The tracker
    rides out up to ``patience`` consecutive non-improving iterations and
    snapshots the best state seen, so a final oscillating sweep never costs
    modularity. ``patience=1`` reproduces the bare Algorithm 1 termination.
    """

    def __init__(
        self,
        theta: float,
        patience: int,
        initial_q: float,
        snapshot: Any = None,
    ):
        # Reject silently-broken configurations up front: patience < 1
        # stops after every iteration regardless of progress, and
        # theta < 0 counts every iteration as progress, so a limit cycle
        # never converges and runs to max_iterations.
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if theta < 0:
            raise ValueError(f"theta must be >= 0, got {theta}")
        self.theta = theta
        self.patience = patience
        #: best modularity seen so far (seeded with the initial state's, so
        #: a run where every sweep loses ground returns the initial state,
        #: never a degraded one)
        self.best_q = initial_q
        #: snapshot associated with ``best_q``
        self.best = snapshot
        #: consecutive iterations without a >= theta improvement
        self.bad_streak = 0

    def update(self, next_q: float, snapshot: Callable[[], Any]) -> bool:
        """Observe one iteration's modularity; returns whether it counted
        as progress. ``snapshot`` is called only on a strict new best."""
        improved = next_q >= self.best_q + self.theta
        if next_q > self.best_q:
            self.best_q = next_q
            self.best = snapshot()
        self.bad_streak = 0 if improved else self.bad_streak + 1
        return improved

    @property
    def converged(self) -> bool:
        return self.bad_streak >= self.patience

    def select(self, final_q: float, final: Any) -> tuple[float, Any]:
        """Pick the returned (q, state): the best snapshot when it strictly
        beats the final sweep, else the final state (ties keep the final
        state — the bit-identity guarantee covers limit cycles too)."""
        if self.best is not None and self.best_q > final_q:
            return self.best_q, self.best
        return final_q, final


# --------------------------------------------------------------------- #
# the unified per-iteration record
# --------------------------------------------------------------------- #
@dataclass
class IterationTrace:
    """Everything observed in one BSP iteration, on any runtime.

    One schema carries what the local, multi-GPU, and distributed runtimes
    each used to record separately: movement and modularity (all runtimes),
    kernel/backend accounting (local), synchronisation plans and simulated
    cycles (multi-GPU), and halo-exchange volume (distributed). Fields a
    runtime does not produce stay at their defaults, so consumers
    (``bench/reporting.py``, ``metrics/fnr_fpr.py``) handle every runtime's
    history uniformly.
    """

    iteration: int
    num_active: int
    num_moved: int
    modularity: float
    delta_q: float
    #: whether the active set was an actual prediction (False in iteration 0,
    #: where every strategy starts with all vertices active)
    predicted: bool
    #: adjacency entries streamed by DecideAndMove this iteration
    active_edges: int = 0
    #: adjacency entries of the vertices that moved (the delta weight
    #: update's workload; Figure 8's P2 stage)
    moved_edges: int = 0
    #: oracle fields (populated only when the engine runs with oracle=True)
    oracle_moved: Optional[int] = None
    false_negatives: Optional[int] = None
    false_positives: Optional[int] = None
    #: aggregation path the kernel ran this iteration (None for plain
    #: callables that don't report one)
    kernel_backend: Optional[str] = None
    #: adjacency entries the kernel actually re-aggregated — equals
    #: ``active_edges`` for full backends, strictly less once the
    #: incremental cache has clean rows to reuse
    aggregated_edges: Optional[int] = None
    #: one-off jit compile/warm-up seconds charged to this iteration
    #: (nonzero only on the first iteration that used a compiled backend)
    kernel_compile_s: float = 0.0
    #: running buffer-arena allocation count after this iteration (None
    #: when the executor has no arena); flat after iteration 2 — the
    #: zero-steady-state-allocation invariant
    arena_allocs: Optional[int] = None
    # number of inactive vertices, set by the engine
    num_inactive: int = 0
    #: dense/sparse synchronisation decision (multi-GPU runtime)
    sync_plan: Optional[Any] = None
    #: synchronisation payload bytes this iteration (multi-GPU: the chosen
    #: sync volume; distributed: halo-exchange bytes, all ranks summed)
    comm_bytes: int = 0
    #: point-to-point messages this iteration (distributed runtime)
    comm_messages: int = 0
    #: simulated device cycles charged this iteration (gpusim-backed
    #: runtimes; 0.0 where no simulated device is involved)
    sim_cycles: float = 0.0

    @property
    def inactive_rate(self) -> float:
        """Fraction of vertices pruned this iteration (paper Figure 7)."""
        total = self.num_active + self.num_inactive
        return self.num_inactive / total if total else 0.0

    @property
    def unmoved_rate(self) -> float:
        """Fraction of processed-or-not vertices that did not move."""
        total = self.num_active + self.num_inactive
        return 1.0 - self.num_moved / total if total else 1.0


# --------------------------------------------------------------------- #
# executor protocol
# --------------------------------------------------------------------- #
class Executor(ABC):
    """One runtime's implementation of the per-iteration BSP stages.

    An executor owns its :class:`CommunityState` (mutated in place as the
    engine drives it) plus whatever runtime resources it needs (kernel
    caches, simulated devices, rank views). The engine guarantees the call
    order ``decide → apply_and_sync → collect`` once per iteration.
    """

    #: the shared BSP state; set in the constructor
    state: CommunityState

    def setup(self, timers: TimerRegistry) -> None:
        """Called once before iteration 0 with the engine's timer registry."""
        self.timers = timers

    @abstractmethod
    def decide(self, active_idx: np.ndarray, active: np.ndarray) -> np.ndarray:
        """Propose the next assignment for the active set.

        ``active_idx`` is the sorted active vertex ids, ``active`` the same
        set as a boolean mask. Returns a full-length community array where
        non-active entries keep their current community. Must not mutate
        the state — the engine commits via :meth:`apply_and_sync`.
        """

    @abstractmethod
    def apply_and_sync(self, next_comm: np.ndarray, moved: np.ndarray) -> float:
        """Commit the BSP move step and return the new modularity.

        Responsible for replica/halo synchronisation, the community-weight
        update, and the aggregate refresh; on return ``self.state`` must be
        the consistent snapshot of the next iteration.
        """

    def collect(self, trace: IterationTrace) -> None:
        """Attach this runtime's cost/comm accounting to the trace."""

    def profilers(self) -> dict:
        """Named :class:`~repro.gpusim.profiler.SimProfiler` instances this
        runtime charges, for the observability layer to bridge into its
        metrics registry at the end of a run. Runtimes without simulated
        devices return the default empty dict."""
        return {}


# --------------------------------------------------------------------- #
# oracle instrumentation
# --------------------------------------------------------------------- #
class OracleProbe:
    """Engine-level FNR/FPR instrumentation (paper Table 1).

    Ground truth is what the *unpruned* engine would do on the same BSP
    snapshot. Every executor's decide step is row-local, so one full-set
    decide serves both purposes: the active-set proposal is its exact
    restriction (tested invariant) — oracle mode costs one decide over the
    full vertex set per iteration, not two. Works identically on the
    local, multi-GPU, and distributed executors; cost accounting in oracle
    mode reflects the full-set decide (measurement-only, as in the paper).
    """

    def __init__(self, n: int):
        self.all_idx = np.arange(n, dtype=np.int64)
        self.all_active = np.ones(n, dtype=bool)
        self._oracle_next: Optional[np.ndarray] = None

    def decide(self, executor: Executor, active: np.ndarray) -> np.ndarray:
        """Full-set decide; returns the active-set restriction."""
        comm = executor.state.comm
        self._oracle_next = executor.decide(self.all_idx, self.all_active)
        next_comm = comm.copy()
        next_comm[active] = self._oracle_next[active]
        return next_comm

    def annotate(self, trace: IterationTrace, comm: np.ndarray, active: np.ndarray) -> None:
        """Fill the trace's oracle fields from the last full-set decide."""
        oracle_moved = self._oracle_next != comm
        trace.oracle_moved = int(oracle_moved.sum())
        trace.false_negatives = int(np.sum(oracle_moved & ~active))
        trace.false_positives = int(np.sum(~oracle_moved & active))


# --------------------------------------------------------------------- #
# engine configuration / result
# --------------------------------------------------------------------- #
@dataclass
class EngineConfig:
    """The loop knobs shared by every runtime (see Phase1Config for the
    per-knob rationale)."""

    pruning: Union[str, PruningStrategy, None] = "none"
    remove_self: bool = True
    theta: float = 1e-6
    patience: int = 3
    max_iterations: int = 500
    oracle: bool = False
    seed: SeedLike = 0


@dataclass
class EngineResult:
    """Result of one engine-driven phase-1 optimisation.

    This is the runtime-independent core; runtime wrappers re-expose it
    with their own extras (devices, rank views, halo stats).
    """

    communities: np.ndarray
    modularity: float
    num_iterations: int
    history: list[IterationTrace]
    timers: TimerRegistry
    state: CommunityState
    #: total DecideAndMove vertex-processings (sum of active counts); the
    #: work measure pruning reduces
    processed_vertices: int = 0
    #: total adjacency entries touched by DecideAndMove
    processed_edges: int = 0
    #: attached :class:`~repro.obs.manifest.RunManifest` (set by the
    #: top-level entry points — ``gala()``, the CLI — not per engine run)
    manifest: Optional[Any] = None


# --------------------------------------------------------------------- #
# the loop
# --------------------------------------------------------------------- #
def run_engine(executor: Executor, config: EngineConfig | None = None) -> EngineResult:
    """Drive ``executor`` through the BSP phase-1 loop to convergence."""
    cfg = config or EngineConfig()
    strategy = make_strategy(cfg.pruning)
    rng = as_generator(cfg.seed)
    timers = TimerRegistry()
    executor.setup(timers)

    state = executor.state
    graph = state.graph
    degrees = graph.degrees
    strategy.reset(state)
    active = strategy.initial_active(state)

    q = state.modularity()
    tracker = ConvergenceTracker(
        theta=cfg.theta, patience=cfg.patience, initial_q=q, snapshot=state.copy()
    )
    oracle = OracleProbe(graph.n) if cfg.oracle else None
    # Sanitizer hooks (repro.analysis). The CSR audit runs once per engine
    # run — phase 2 re-enters the engine per level, so every coarsened
    # graph is audited. Under --sanitize=strict with a strategy that
    # *claims* zero false negatives, a dedicated probe re-derives the
    # unpruned ground truth each iteration (Lemma 5 audit); like oracle
    # mode this costs one full-set decide, but the committed moves are its
    # exact restriction, so results stay bit-identical to an unsanitized
    # run.
    san = analysis.current()
    if san is not None:
        san.audit_graph(graph, source=f"engine:{type(executor).__name__}")
    san_probe = None
    if (
        san is not None
        and san.config.strict
        and san.config.invariants
        and oracle is None
        and getattr(strategy, "zero_false_negatives", False)
    ):
        san_probe = OracleProbe(graph.n)
    history: list[IterationTrace] = []
    processed_vertices = 0
    processed_edges = 0

    # Observability is strictly opt-in: without an active session ``tr``
    # is the shared no-op tracer and every span below is one branch.
    sess = obs.current()
    tr = sess.tracer if sess is not None else NULL_TRACER
    runtime_name = type(executor).__name__
    with tr.span("engine/run", runtime=runtime_name, n=graph.n):
        for it in range(cfg.max_iterations):
            with tr.span("engine/iteration", iteration=it) as iter_span:
                active_idx = np.flatnonzero(active)
                active_edges = int(degrees[active_idx].sum())
                processed_vertices += len(active_idx)
                processed_edges += active_edges

                with timers.measure("decide_and_move"), tr.span(
                    "engine/decide", active=len(active_idx), edges=active_edges
                ):
                    if oracle is not None:
                        next_comm = oracle.decide(executor, active)
                    elif san_probe is not None:
                        next_comm = san_probe.decide(executor, active)
                    else:
                        next_comm = executor.decide(active_idx, active)
                moved = next_comm != state.comm

                trace = IterationTrace(
                    iteration=it,
                    num_active=len(active_idx),
                    num_inactive=graph.n - len(active_idx),
                    num_moved=int(moved.sum()),
                    modularity=0.0,  # filled below
                    delta_q=0.0,
                    predicted=it > 0,
                    active_edges=active_edges,
                    moved_edges=int(degrees[moved].sum()),
                )
                if oracle is not None:
                    oracle.annotate(trace, state.comm, active)
                probe = oracle if oracle is not None else san_probe
                if (
                    san is not None
                    and probe is not None
                    and probe._oracle_next is not None
                    and getattr(strategy, "zero_false_negatives", False)
                ):
                    san.audit_pruning(
                        active,
                        probe._oracle_next != state.comm,
                        iteration=it,
                        strategy=strategy.name,
                    )

                prev_comm = state.comm
                with tr.span("engine/apply_sync", moved=trace.num_moved):
                    next_q = executor.apply_and_sync(next_comm, moved)
                if san is not None:
                    san.audit_weights(state, iteration=it)

                trace.modularity = next_q
                trace.delta_q = next_q - q
                # collect() is cheap bookkeeping — not worth a span of its own
                executor.collect(trace)
                history.append(trace)
                if sess is not None:
                    sess.record_iteration(trace, runtime=runtime_name)

                tracker.update(next_q, state.copy)

                with timers.measure("pruning"), tr.span("engine/prune"):
                    ctx = IterationContext(
                        state=state,
                        prev_comm=prev_comm,
                        moved=moved,
                        active=active,
                        iteration=it,
                        rng=rng,
                        remove_self=cfg.remove_self,
                    )
                    active = strategy.next_active(ctx)

                q = next_q
                iter_span.tag(moved=trace.num_moved, q=next_q)
                converged = tracker.converged or trace.num_moved == 0
            if converged:
                break

    q, state = tracker.select(q, state)
    result = EngineResult(
        communities=state.comm.copy(),
        modularity=float(q),
        num_iterations=len(history),
        history=history,
        timers=timers,
        state=state,
        processed_vertices=processed_vertices,
        processed_edges=processed_edges,
    )
    if sess is not None:
        sess.record_engine_result(result, executor)
    return result
