"""Relaxed movement-based pruning (RM) — paper Section 3.2, from [50, 54].

A vertex is inactive if it and all of its neighbours were unmoved in the
previous iteration. Cheaper and far more aggressive than SM, but unsound:
Lemma 4's counterexample — a non-neighbour leaving a nearby community
changes that community's ``D_V`` and can make a move profitable for a
vertex whose neighbourhood looks quiet. The paper measures an average
0.37% false-negative rate and ~0.0012 modularity loss from this strategy.
"""

from __future__ import annotations

import numpy as np

from repro.core.pruning.base import IterationContext, PruningStrategy, neighborhood_any


class RelaxedMovementPruning(PruningStrategy):
    """RM: active iff the vertex or a neighbour moved last iteration."""

    name = "rm"

    def next_active(self, ctx: IterationContext) -> np.ndarray:
        active = ctx.moved.copy()
        active |= neighborhood_any(ctx.state, ctx.moved)
        return active
