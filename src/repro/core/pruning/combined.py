"""Combined pruning: intersection of two strategies' active sets.

The paper's Section 5.3 evaluates MG+RM: "MG and RM are not competitive but
complementary since they prune from different angles" — RM prunes quiet
neighbourhoods (unsoundly), MG prunes provably-stable vertices; combining
them reaches up to 91.9% pruning at RM's (small) modularity cost.
"""

from __future__ import annotations

import numpy as np

from repro.core.pruning.base import IterationContext, PruningStrategy
from repro.core.state import CommunityState


class CombinedPruning(PruningStrategy):
    """Active iff active under *every* constituent strategy."""

    def __init__(self, *strategies: PruningStrategy, name: str | None = None) -> None:
        if len(strategies) < 2:
            raise ValueError("CombinedPruning needs at least two strategies")
        self.strategies = strategies
        self.name = name or "+".join(s.name for s in strategies)

    def reset(self, state: CommunityState) -> None:
        for s in self.strategies:
            s.reset(state)

    def next_active(self, ctx: IterationContext) -> np.ndarray:
        active = self.strategies[0].next_active(ctx)
        for s in self.strategies[1:]:
            active = np.logical_and(active, s.next_active(ctx))
        return active
