"""Modularity gain-based pruning (MG) — GALA's strategy (Section 3.3).

Instead of guessing from movement history, MG *proves* a vertex cannot
profitably move, using states the BSP model already maintains. From Lemma 5,
``v`` is unmoved if for every neighbour ``u``::

    dQ(v -> C[v]) >= dQ(v -> C[u])

Expanding Eq. 2 and upper-bounding the two terms that would require a
neighbour scan —

* ``d_{C[u]}(v) <= d(v) - d_{C[v]}(v)``  (all non-community weight could be
  concentrated in one community), and
* ``D_V(C[u]) >= min_C D_V(C)``          (no community is lighter than the
  lightest one)

— gives the paper's Eq. 6 test, evaluable in O(1) per vertex from
maintained state::

    2 d_{C[v]}(v) - d(v) + (min_C D_V(C) - D_V(C[v]) [+ d(v)]) d(v)/(2|E|) >= 0

The ``+ d(v)`` term appears exactly when the engine removes the vertex's
own strength from ``D_V(C[v])`` when scoring "stay" (the Grappolo/standard
convention; ``remove_self=True``). With ``remove_self=False`` the formula
is Eq. 6 verbatim. Either way Theorem 6 holds: vertices proven inactive
cannot move, so the strategy has **zero false negatives** and preserves the
exact trajectory of the unpruned algorithm (a test invariant of this
repository).
"""

from __future__ import annotations

import numpy as np

from repro.core.pruning.base import IterationContext, PruningStrategy
from repro.core.state import CommunityState


class ModularityGainPruning(PruningStrategy):
    """MG: prune vertices whose gain upper bound proves they stay put."""

    name = "mg"

    #: Theorem 6 guarantee — the property the sanitizer's Lemma-5 audit
    #: verifies empirically under ``--sanitize=strict``
    zero_false_negatives = True

    def __init__(self, slack: float = 1e-12, bound: str = "global") -> None:
        #: conservative margin: the bound must clear ``slack * 2|E|`` before
        #: we prune, so floating-point noise can only create false
        #: *positives* (harmless), never false negatives.
        self.slack = slack
        if bound not in ("global", "neighborhood"):
            raise ValueError("bound must be 'global' or 'neighborhood'")
        #: which D_V lower bound to use; see _min_strength
        self.bound = bound

    def inactive_mask(self, state: CommunityState, remove_self: bool) -> np.ndarray:
        """Evaluate the Eq. 6 test for every vertex at once.

        Self-loop handling: a vertex's self-loop moves with it, so it
        cancels out of every gain comparison — the engine scores gains with
        the loop-free ``d_C(v)``. The bound must therefore also be
        loop-free: ``d_{C[u]}(v) <= (d(v) - 2 w_loop) - d_{C[v]}(v)``
        (only non-loop, non-community weight can sit in a candidate
        community). Using the loop-inclusive ``d(v)`` here would overstate
        ``d_{C[v]}(v)`` relative to the engine's scoring and produce false
        negatives on coarse graphs, where contraction creates heavy loops.
        The ``D_V`` terms keep the full strengths — those are exactly what
        Eq. 2 uses.
        """
        g = state.graph
        two_m = g.two_m
        if two_m == 0.0:
            return np.ones(g.n, dtype=bool)
        strength = g.strength
        loop_free_degree = strength - 2.0 * g.self_weight
        min_total = self._min_strength(state)
        own_total = state.comm_strength[state.comm]
        correction = strength if remove_self else 0.0
        # state.resolution scales every D_V term of the gains (see Eq. 2
        # with gamma), so it scales the whole comparison term of the bound.
        lhs = (
            2.0 * state.d_comm
            - loop_free_degree
            + state.resolution
            * (min_total - own_total + correction)
            * strength
            / two_m
        )
        # Vertices with no non-loop incident weight have no candidate
        # community at all; they are unconditionally inactive.
        return (lhs >= self.slack * two_m) | (loop_free_degree == 0.0)

    def _min_strength(self, state: CommunityState):
        """The D_V lower bound used for the unknown candidate community.

        ``bound="global"`` (paper Eq. 6) uses the single global minimum over
        all communities — O(1) per vertex. ``bound="neighborhood"`` uses,
        per vertex, the minimum over its *actual* neighbouring communities —
        a tighter bound that prunes more, at the cost of one O(E) pass per
        iteration (exactly the scan the global bound exists to avoid; kept
        as an ablation of the paper's design choice).
        """
        if self.bound == "global":
            return state.min_community_strength()
        g = state.graph
        nbr_strength = state.comm_strength[state.comm[g.indices]]
        out = np.full(g.n, np.inf)
        np.minimum.at(out, g.row_ids, nbr_strength)
        # vertices with no neighbours cannot move anywhere: any bound works
        return np.where(np.isfinite(out), out, 0.0)

    def next_active(self, ctx: IterationContext) -> np.ndarray:
        return ~self.inactive_mask(ctx.state, ctx.remove_self)
