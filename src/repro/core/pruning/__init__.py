"""Pruning strategies for predicting unmoved vertices (paper Section 3).

The engine asks the configured strategy, after every BSP iteration, which
vertices should be *active* in the next one. Strategies:

========  =====================================================  ==========
name      rule                                                   guarantees
========  =====================================================  ==========
``none``  everyone active every iteration                        exact
``sm``    inactive iff every referenced community's *member set* no FN
          is unchanged (strict movement-based, [50])
``rm``    inactive iff the vertex and all its neighbours were    FN possible
          unmoved last iteration (relaxed movement-based,
          Leiden [54] / parallel adaptation [50])
``pm``    inactive with probability alpha when the vertex's own  FN possible
          community id was stable (probabilistic, Vite [24])
``mg``    inactive iff the modularity-gain upper bound (Eq. 6)   no FN
          proves no move can beat staying — GALA's strategy
``mg+rm`` intersection of the MG and RM active sets              FN possible
========  =====================================================  ==========
"""

from repro.core.pruning.base import PruningStrategy, IterationContext, NoPruning, make_strategy
from repro.core.pruning.strict import StrictMovementPruning
from repro.core.pruning.relaxed import RelaxedMovementPruning
from repro.core.pruning.probabilistic import ProbabilisticMovementPruning
from repro.core.pruning.modularity_gain import ModularityGainPruning
from repro.core.pruning.combined import CombinedPruning

__all__ = [
    "PruningStrategy",
    "IterationContext",
    "NoPruning",
    "make_strategy",
    "StrictMovementPruning",
    "RelaxedMovementPruning",
    "ProbabilisticMovementPruning",
    "ModularityGainPruning",
    "CombinedPruning",
]
