"""Probabilistic movement-based pruning (PM) — Vite's strategy [24].

PM looks only at the vertex's own movement history: if its community id was
stable across the last two consecutive iterations, the vertex is pruned
with probability ``alpha`` (paper default 0.25). Aggressive — the paper
notes PM terminates earlier than every other strategy and pays for it with
the largest modularity loss (Table 3, avg 0.00413) and the highest FNR
(Table 1, avg 6.35%).
"""

from __future__ import annotations

import numpy as np

from repro.core.pruning.base import IterationContext, PruningStrategy
from repro.core.state import CommunityState


class ProbabilisticMovementPruning(PruningStrategy):
    """PM: stable-id vertices are pruned with probability ``alpha``."""

    name = "pm"

    def __init__(self, alpha: float = 0.25) -> None:
        if not (0.0 <= alpha <= 1.0):
            raise ValueError("alpha must be in [0, 1]")
        self.alpha = alpha
        self._stable_once: np.ndarray | None = None

    def reset(self, state: CommunityState) -> None:
        # Tracks whether the vertex was already unmoved in the iteration
        # before the last one, giving the "two consecutive iterations" test.
        self._stable_once = np.zeros(state.graph.n, dtype=bool)

    def next_active(self, ctx: IterationContext) -> np.ndarray:
        unmoved = ~ctx.moved
        assert self._stable_once is not None, "reset() not called"
        stable_twice = unmoved & self._stable_once
        self._stable_once = unmoved
        coin = ctx.rng.random(len(unmoved)) < self.alpha
        return ~(stable_twice & coin)
