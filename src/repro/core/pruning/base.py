"""Pruning strategy interface and the no-op strategy.

A strategy sees one :class:`IterationContext` per completed BSP iteration —
the *post-update* state plus what changed — and returns the boolean active
mask for the next iteration. Vertices outside the mask are skipped entirely
by DecideAndMove (the "filter" operation of GPU graph frameworks the paper
refers to in Section 3.1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.state import CommunityState


@dataclass
class IterationContext:
    """Everything a strategy may consult after iteration ``t``.

    Attributes
    ----------
    state:
        The state *after* applying iteration ``t``'s moves and updating all
        aggregates (this is the consistent BSP snapshot for ``t + 1``).
    prev_comm:
        Community ids *before* iteration ``t``'s moves.
    moved:
        ``bool[n]``: vertices whose community id changed in iteration ``t``.
    active:
        ``bool[n]``: the active mask that iteration ``t`` ran with.
    iteration:
        Index of the completed iteration (0-based).
    rng:
        Shared generator (used by the probabilistic strategy).
    remove_self:
        The engine's gain convention, needed by MG to match its bound.
    """

    state: CommunityState
    prev_comm: np.ndarray
    moved: np.ndarray
    active: np.ndarray
    iteration: int
    rng: np.random.Generator
    remove_self: bool = True


class PruningStrategy(ABC):
    """Base class: decides the active set of the next iteration."""

    #: short name used in configs, reports and plots
    name: str = "base"

    #: strategies that *prove* pruned vertices cannot move (Theorem 6)
    #: declare this True; the sanitizer's Lemma-5 audit only applies to
    #: them — heuristic strategies have false negatives by design
    zero_false_negatives: bool = False

    def reset(self, state: CommunityState) -> None:
        """Called once before iteration 0 (strategies may keep history)."""

    def initial_active(self, state: CommunityState) -> np.ndarray:
        """Active mask for iteration 0 — everyone, for every strategy."""
        return np.ones(state.graph.n, dtype=bool)

    @abstractmethod
    def next_active(self, ctx: IterationContext) -> np.ndarray:
        """Active mask for iteration ``ctx.iteration + 1``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class NoPruning(PruningStrategy):
    """Baseline: every vertex active every iteration (exact, no savings)."""

    name = "none"

    def next_active(self, ctx: IterationContext) -> np.ndarray:
        return np.ones(ctx.state.graph.n, dtype=bool)


def neighborhood_any(state: CommunityState, flags: np.ndarray) -> np.ndarray:
    """``out[v] = any(flags[u] for u in N(v))`` for all vertices, vectorised.

    The common building block of the movement-based strategies: one pass
    over the adjacency, a scatter-max per row.
    """
    g = state.graph
    out = np.zeros(g.n, dtype=bool)
    np.logical_or.at(out, g.row_ids, flags[g.indices])
    return out


def make_strategy(spec: "str | PruningStrategy | None", **kwargs) -> PruningStrategy:
    """Resolve a strategy spec: an instance, a name, or None (= no pruning).

    Recognised names: ``none``, ``sm``, ``rm``, ``pm``, ``mg``, ``mg+rm``.
    Keyword arguments are forwarded to the constructor (e.g. ``alpha`` for
    ``pm``).
    """
    from repro.core.pruning.strict import StrictMovementPruning
    from repro.core.pruning.relaxed import RelaxedMovementPruning
    from repro.core.pruning.probabilistic import ProbabilisticMovementPruning
    from repro.core.pruning.modularity_gain import ModularityGainPruning
    from repro.core.pruning.combined import CombinedPruning

    if spec is None:
        return NoPruning()
    if isinstance(spec, PruningStrategy):
        return spec
    registry = {
        "none": NoPruning,
        "sm": StrictMovementPruning,
        "rm": RelaxedMovementPruning,
        "pm": ProbabilisticMovementPruning,
        "mg": ModularityGainPruning,
    }
    key = spec.lower()
    if key == "mg+rm":
        return CombinedPruning(
            ModularityGainPruning(), RelaxedMovementPruning(), name="mg+rm"
        )
    if key not in registry:
        raise ValueError(
            f"unknown pruning strategy {spec!r}; expected one of "
            f"{sorted(registry) + ['mg+rm']}"
        )
    return registry[key](**kwargs)
