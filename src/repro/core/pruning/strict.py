"""Strict movement-based pruning (SM) — paper Section 3.2, from [50].

A vertex is inactive only if *every community it references* (its own and
each neighbour's) kept exactly the same member set over the last iteration.
A community's member set changed iff some vertex joined or left it, so the
rule reduces to: mark every community touched by a move as *dirty*, then
activate every vertex that sees a dirty community in its closed
neighbourhood.

Lemma 3: SM produces no false negatives — if nothing any candidate
community changed, the vertex's DecideAndMove inputs are bit-identical to
last iteration's, so its decision is too. The cost is a huge false-positive
rate (91.7% average in the paper's Table 1): almost every iteration touches
almost every community.
"""

from __future__ import annotations

import numpy as np

from repro.core.pruning.base import IterationContext, PruningStrategy, neighborhood_any


class StrictMovementPruning(PruningStrategy):
    """SM: active unless every referenced community set is unchanged."""

    name = "sm"

    def next_active(self, ctx: IterationContext) -> np.ndarray:
        state = ctx.state
        n = state.graph.n
        dirty = np.zeros(n, dtype=bool)
        movers = np.flatnonzero(ctx.moved)
        if len(movers):
            dirty[ctx.prev_comm[movers]] = True  # lost members
            dirty[state.comm[movers]] = True  # gained members
        active = dirty[state.comm]
        active |= neighborhood_any(state, dirty[state.comm])
        return active
