"""Community weight updating — paper Section 3.5.

After the BSP move step, every vertex's ``d_{C[v]}(v)`` (the weight between
the vertex and its — possibly new — community) must be brought up to date
for the next iteration. Two implementations:

* :func:`recompute_all` — the naive approach (Algorithm 1 lines 6-7): scan
  every vertex's neighbourhood. Same complexity as DecideAndMove itself;
  once MG pruning shrinks DecideAndMove, this becomes the bottleneck
  (Figure 8, bar P1: 45.7% of runtime).
* :func:`delta_update` — GALA's scheme: moved vertices recompute their own
  weight from scratch; every *moved* vertex additionally "informs its
  neighbours", i.e. pushes ``±w(u, v)`` deltas to unmoved neighbours whose
  community it left or joined. Cost is proportional to the degree sum of
  the moved set, which shrinks rapidly in late iterations (Figure 8 bar P2
  reports a 7.3x weight-update speedup).

Both leave the state bit-equivalent (a hypothesis-tested invariant).

Updaters return the **movement frontier** — the boolean mask of vertices
with at least one moved neighbour — when they derive it anyway (the delta
scheme scans exactly those incidences), or ``None`` when they don't. The
frontier is precisely the set of rows whose ``(vertex, neighbour-community)``
pair table changed, so the incremental DecideAndMove cache uses it as its
invalidation set; :func:`movement_frontier` computes it standalone for
updaters that return ``None``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.state import CommunityState
from repro.graph.csr import CSRGraph
from repro.utils.arrays import repeat_by_counts

#: the delta/recompute equivalence is a bit-exact contract — float
#: accumulation order here is pinned (lint rule float-accumulation)
__bitexact__ = True


def movement_frontier(
    graph: CSRGraph, moved: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Boolean mask of vertices with at least one moved neighbour.

    A vertex's DecideAndMove pair table depends only on the communities of
    its neighbours, so this mask is exactly the set of rows invalidated by a
    BSP apply step. The adjacency is symmetric, so scanning the movers' rows
    enumerates every affected vertex.

    ``out``, when given, is the flag array to fill (must be zeroed, length
    ``graph.n``) — the engine passes an arena-backed buffer so no frontier
    is heap-allocated in the steady state.
    """
    frontier = out if out is not None else np.zeros(graph.n, dtype=bool)
    movers = np.flatnonzero(moved)
    if len(movers) == 0:
        return frontier
    counts = graph.degrees[movers]
    eidx = repeat_by_counts(graph.indptr[movers], counts)
    frontier[graph.indices[eidx]] = True
    return frontier


def recompute_all(
    state: CommunityState, prev_comm: np.ndarray, moved: np.ndarray
) -> Optional[np.ndarray]:
    """Naive full recomputation of ``d_comm`` (baseline; args unused)."""
    state.recompute_d_comm()
    return None


def delta_update(
    state: CommunityState,
    prev_comm: np.ndarray,
    moved: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> Optional[np.ndarray]:
    """Delta-update ``d_comm`` from the moved-vertex set.

    Must be called *after* ``state.comm`` holds the new assignment, with
    ``prev_comm``/``moved`` describing what changed. Returns the movement
    frontier (see the module docstring), derived from the single gather of
    the movers' adjacency rows that both halves of the scheme share.
    ``out`` is an optional pre-zeroed flag array for the frontier (see
    :func:`movement_frontier`).
    """
    g = state.graph
    frontier = out if out is not None else np.zeros(g.n, dtype=bool)
    movers = np.flatnonzero(moved)
    if len(movers) == 0:
        return frontier

    counts = g.degrees[movers]
    # integer degree count — exact in any order  # lint: allow[float-accumulation]
    if counts.sum() == 0:
        return frontier
    eidx = repeat_by_counts(g.indptr[movers], counts)
    u = np.repeat(movers, counts)  # the mover
    v = g.indices[eidx]  # its neighbour
    w = g.weights[eidx]
    frontier[v] = True

    # (1) moved vertices: their community changed, recompute from scratch —
    # reusing the gather above instead of a second row scan.
    cv = state.comm[v]
    joined = state.comm[u] == cv  # u now shares v's community
    state.d_comm[movers] = 0.0
    if np.any(joined):
        np.add.at(state.d_comm, u[joined], w[joined])

    # (2) unmoved neighbours of moved vertices: apply +/- deltas. The
    # adjacency is symmetric, so the movers' rows enumerate every
    # (mover u -> neighbour v) incidence exactly once. An edge matters only
    # when exactly one of "u left v's community" / "u joined it" holds (for
    # unmoved v, whose current community equals its previous one); the
    # ``joined`` mask from step 1 is that second condition.
    left = prev_comm[u] == cv
    rel = np.flatnonzero((joined != left) & ~moved[v])
    if len(rel):
        delta = np.where(joined[rel], w[rel], -w[rel])
        np.add.at(state.d_comm, v[rel], delta)
    return frontier


def delta_update_chunked(
    state: CommunityState,
    prev_comm: np.ndarray,
    moved: np.ndarray,
    chunk_edges: int,
    out: Optional[np.ndarray] = None,
    release=None,
) -> Optional[np.ndarray]:
    """:func:`delta_update` in degree-bounded mover chunks.

    Transient allocations (the gathered adjacency rows of the movers) stay
    O(``chunk_edges``) instead of O(moved-degree-sum) — the difference
    between "fits" and "not" when the graph is memory-mapped at 10⁷+
    edges. Bit-identical to the one-shot path: step 1 targets only moved
    vertices and step 2 only unmoved ones, so any single ``d_comm`` entry
    receives all its contributions from one step, in mover-major adjacency
    order — which ascending mover chunks preserve exactly. ``release``
    (e.g. ``MmapCSRGraph.release_pages``) is called after each chunk so
    resident file pages track the chunk size too.
    """
    g = state.graph
    frontier = out if out is not None else np.zeros(g.n, dtype=bool)
    movers = np.flatnonzero(moved)
    if len(movers) == 0:
        return frontier
    from repro.graph.mmap_store import split_by_edges

    degrees = g.degrees
    mover_deg = degrees[movers]
    # integer degree count — exact in any order  # lint: allow[float-accumulation]
    if mover_deg.sum() == 0:
        return frontier
    for sub in split_by_edges(movers, degrees[movers], chunk_edges, release=release):
        _delta_apply(state, prev_comm, moved, sub, degrees[sub], frontier)
    return frontier


def _delta_apply(
    state: CommunityState,
    prev_comm: np.ndarray,
    moved: np.ndarray,
    movers: np.ndarray,
    counts: np.ndarray,
    frontier: np.ndarray,
) -> None:
    """Both halves of the delta scheme for one mover subset (see
    :func:`delta_update` for the algorithm; identical statement order)."""
    g = state.graph
    eidx = repeat_by_counts(g.indptr[movers], counts)
    u = np.repeat(movers, counts)
    v = np.asarray(g.indices[eidx])
    w = np.asarray(g.weights[eidx])
    frontier[v] = True
    cv = state.comm[v]
    joined = state.comm[u] == cv
    state.d_comm[movers] = 0.0
    if np.any(joined):
        np.add.at(state.d_comm, u[joined], w[joined])
    left = prev_comm[u] == cv
    rel = np.flatnonzero((joined != left) & ~moved[v])
    if len(rel):
        delta = np.where(joined[rel], w[rel], -w[rel])
        np.add.at(state.d_comm, v[rel], delta)


def make_chunked_weight_updater(spec: str, chunk_edges: int, release=None):
    """A weight updater with O(``chunk_edges``) transient allocations.

    ``delta`` maps to :func:`delta_update_chunked`; ``recompute`` keeps the
    plain full recomputation (its ``row_ids`` scratch is inherently O(E) —
    out-of-core runs should use ``delta``).
    """
    if spec == "delta":

        def updater(
            state: CommunityState, prev_comm: np.ndarray, moved: np.ndarray
        ) -> Optional[np.ndarray]:
            return delta_update_chunked(
                state, prev_comm, moved, chunk_edges, release=release
            )

        return updater
    return make_weight_updater(spec)


def make_jit_delta_updater(runtime, arena):
    """A compiled drop-in for :func:`delta_update` (same signature/results).

    ``runtime`` is a probed :class:`~repro.core.kernels.jit.JitRuntime`;
    its fused mover-major pass applies both halves of the scheme in one
    sweep over the movers' rows — bit-identical to the NumPy path because
    moved and unmoved vertices receive contributions to *disjoint*
    ``d_comm`` entries, each in the same mover-major adjacency order. The
    frontier flag array comes from ``arena``, double-buffered on
    generation parity because the auto dispatcher reads the previous
    frontier during the *next* iteration's decide step.
    """

    def jit_delta(
        state: CommunityState, prev_comm: np.ndarray, moved: np.ndarray
    ) -> np.ndarray:
        g = state.graph
        frontier = arena.zeros(
            ("weights", "frontier", arena.generation & 1), g.n, np.bool_
        )
        runtime.delta(
            g.indptr,
            g.indices,
            g.weights,
            state.comm,
            np.ascontiguousarray(prev_comm, dtype=np.int64),
            np.ascontiguousarray(moved, dtype=np.bool_),
            state.d_comm,
            frontier,
        )
        return frontier

    return jit_delta


def refresh_aggregates(state: CommunityState, arena=None, runtime=None) -> None:
    """Rebuild ``comm_strength``/``comm_size`` after a BSP apply step.

    The plain path allocates two fresh ``np.bincount`` outputs per
    iteration; with an arena *and* a jit runtime the rebuild instead runs
    the compiled sequential loop into pooled buffers (``np.bincount``
    summation order, so bit-identical), making the refresh allocation-free
    in the steady state. Without a runtime the NumPy path is kept as-is —
    ``np.add.at`` into a reused buffer would be far slower than
    ``np.bincount``.
    """
    if arena is not None and runtime is not None:
        n = state.graph.n
        comm_strength = arena.request(("weights", "comm_strength"), n, np.float64)
        comm_size = arena.request(("weights", "comm_size"), n, np.int64)
        runtime.aggregates(state.comm, state.graph.strength, comm_strength, comm_size)
        state.comm_strength = comm_strength
        state.comm_size = comm_size
    else:
        state.refresh_community_aggregates()


WEIGHT_UPDATERS = {
    "recompute": recompute_all,
    "delta": delta_update,
}


def make_weight_updater(spec: str):
    """Resolve a weight-update mode name to its implementation."""
    try:
        return WEIGHT_UPDATERS[spec]
    except KeyError:
        raise ValueError(
            f"unknown weight update mode {spec!r}; expected one of "
            f"{sorted(WEIGHT_UPDATERS)}"
        ) from None
