"""Community weight updating — paper Section 3.5.

After the BSP move step, every vertex's ``d_{C[v]}(v)`` (the weight between
the vertex and its — possibly new — community) must be brought up to date
for the next iteration. Two implementations:

* :func:`recompute_all` — the naive approach (Algorithm 1 lines 6-7): scan
  every vertex's neighbourhood. Same complexity as DecideAndMove itself;
  once MG pruning shrinks DecideAndMove, this becomes the bottleneck
  (Figure 8, bar P1: 45.7% of runtime).
* :func:`delta_update` — GALA's scheme: moved vertices recompute their own
  weight from scratch; every *moved* vertex additionally "informs its
  neighbours", i.e. pushes ``±w(u, v)`` deltas to unmoved neighbours whose
  community it left or joined. Cost is proportional to the degree sum of
  the moved set, which shrinks rapidly in late iterations (Figure 8 bar P2
  reports a 7.3x weight-update speedup).

Both leave the state bit-equivalent (a hypothesis-tested invariant).
"""

from __future__ import annotations

import numpy as np

from repro.core.state import CommunityState
from repro.utils.arrays import repeat_by_counts


def recompute_all(state: CommunityState, prev_comm: np.ndarray, moved: np.ndarray) -> None:
    """Naive full recomputation of ``d_comm`` (baseline; args unused)."""
    state.recompute_d_comm()


def delta_update(
    state: CommunityState, prev_comm: np.ndarray, moved: np.ndarray
) -> None:
    """Delta-update ``d_comm`` from the moved-vertex set.

    Must be called *after* ``state.comm`` holds the new assignment, with
    ``prev_comm``/``moved`` describing what changed.
    """
    g = state.graph
    movers = np.flatnonzero(moved)
    if len(movers) == 0:
        return

    # (1) moved vertices: their community changed, recompute from scratch.
    state.recompute_d_comm(movers)

    # (2) unmoved neighbours of moved vertices: apply +/- deltas. The
    # adjacency is symmetric, so scanning the movers' rows enumerates every
    # (mover u -> neighbour v) incidence exactly once.
    counts = np.diff(g.indptr)[movers]
    if counts.sum() == 0:
        return
    eidx = repeat_by_counts(g.indptr[movers], counts)
    u = np.repeat(movers, counts)  # the mover
    v = g.indices[eidx]  # its neighbour
    w = g.weights[eidx]

    unmoved_v = ~moved[v]
    if not np.any(unmoved_v):
        return
    u, v, w = u[unmoved_v], v[unmoved_v], w[unmoved_v]
    cv = state.comm[v]  # v unmoved: current == previous community
    left = prev_comm[u] == cv  # u left v's community: subtract
    joined = state.comm[u] == cv  # u joined v's community: add
    delta = np.where(joined, w, 0.0) - np.where(left, w, 0.0)
    relevant = delta != 0.0
    if np.any(relevant):
        np.add.at(state.d_comm, v[relevant], delta[relevant])


WEIGHT_UPDATERS = {
    "recompute": recompute_all,
    "delta": delta_update,
}


def make_weight_updater(spec: str):
    """Resolve a weight-update mode name to its implementation."""
    try:
        return WEIGHT_UPDATERS[spec]
    except KeyError:
        raise ValueError(
            f"unknown weight update mode {spec!r}; expected one of "
            f"{sorted(WEIGHT_UPDATERS)}"
        ) from None
