"""The full multi-round Louvain algorithm (phases 1 + 2, repeated).

Each round runs phase 1 (:func:`repro.core.phase1.run_phase1`) to local
convergence, then phase 2 contracts each community into a super-vertex
(:func:`repro.graph.coarsen.coarsen_graph`). Rounds repeat until a round no
longer improves modularity by ``round_theta``. The result keeps the whole
dendrogram so callers can inspect the hierarchical community structure the
paper describes in Section 2.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.core.phase1 import Phase1Config, Phase1Result, run_phase1
from repro.graph.coarsen import coarsen_graph
from repro.graph.csr import CSRGraph
from repro.obs import _session as obs


@dataclass
class LouvainLevel:
    """One round of the hierarchy."""

    graph: CSRGraph
    phase1: Phase1Result
    #: fine-vertex id -> community id *on this level's graph*
    mapping: np.ndarray


@dataclass
class LouvainResult:
    """Full hierarchical result.

    ``communities`` maps each original vertex to its final community;
    ``levels`` holds one entry per round (coarser and coarser graphs);
    ``modularity`` is the final (best) modularity on the original graph.
    """

    communities: np.ndarray
    modularity: float
    levels: list[LouvainLevel] = field(default_factory=list)
    #: attached :class:`~repro.obs.manifest.RunManifest` (set by ``gala()``)
    manifest: object = None

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def num_communities(self) -> int:
        return len(np.unique(self.communities))

    def communities_at_level(self, level: int) -> np.ndarray:
        """Original-vertex community assignment after round ``level``.

        ``level=0`` is the assignment after the first phase-1/phase-2 round.
        """
        if not (0 <= level < len(self.levels)):
            raise IndexError(f"level {level} out of range [0, {len(self.levels)})")
        comm = self.levels[level].phase1.communities
        # levels[i].mapping maps level-i vertices -> level-(i+1) vertices,
        # so compose the mappings downwards to reach the original graph.
        for i in range(level - 1, -1, -1):
            comm = comm[self.levels[i].mapping]
        return comm


#: pluggable per-round phase-1 entry point: ``(graph, config, round_idx)``
#: -> :class:`Phase1Result`. Lets a caller route specific rounds through a
#: different runtime (e.g. the multiprocess executor for round 0, where
#: the graph is large, and the local path for the tiny coarsened levels).
Phase1Runner = Callable[[CSRGraph, Phase1Config, int], Phase1Result]


def louvain(
    graph: CSRGraph,
    phase1_config: Phase1Config | None = None,
    round_theta: float = 1e-6,
    max_rounds: int = 20,
    phase1_runner: Optional[Phase1Runner] = None,
) -> LouvainResult:
    """Run the complete Louvain algorithm on ``graph``.

    Parameters
    ----------
    phase1_config:
        Configuration applied to every round's phase 1 (defaults to GALA's
        settings when called through :func:`repro.core.gala.gala`).
    round_theta:
        Stop when a full round improves modularity by less than this.
    max_rounds:
        Hard cap on the number of coarsening rounds.
    phase1_runner:
        Optional replacement for :func:`run_phase1`, called as
        ``phase1_runner(current, cfg, round_idx)``. Every runtime is
        bit-identical, so swapping runners per round changes execution,
        never the result.
    """
    cfg = phase1_config or Phase1Config()
    levels: list[LouvainLevel] = []
    current = graph
    best_q = -np.inf

    sess = obs.current()
    for round_idx in range(max_rounds):
        if sess is not None:
            sess.context["level"] = round_idx
        with obs.span(
            "louvain/level", level=round_idx, n=current.n, edges=current.num_edges
        ):
            p1 = (
                phase1_runner(current, cfg, round_idx)
                if phase1_runner is not None
                else run_phase1(current, cfg)
            )
            with obs.span("louvain/coarsen", n=current.n):
                coarse, mapping = coarsen_graph(current, p1.communities)
        levels.append(LouvainLevel(graph=current, phase1=p1, mapping=mapping))
        improved = p1.modularity - best_q
        best_q = max(best_q, p1.modularity)
        if improved < round_theta or coarse.n == current.n:
            break
        current = coarse
    if sess is not None:
        sess.context.pop("level", None)

    # Flatten the dendrogram onto the original vertices. The reported
    # modularity is recomputed on the flattened assignment so it is exact
    # for the returned communities by construction (phase 1 never returns
    # below its initial state, so this equals the best per-round value).
    communities = levels[-1].phase1.communities
    for lvl in reversed(levels[:-1]):
        communities = communities[lvl.mapping]
    from repro.core.modularity import modularity as q_of

    resolution = cfg.resolution if cfg is not None else 1.0
    return LouvainResult(
        communities=communities,
        modularity=float(q_of(graph, communities, resolution=resolution)),
        levels=levels,
    )
