"""Mutable per-iteration state of the BSP parallel Louvain algorithm.

This is the "richer information beyond mere vertex movements" that the BSP
model exposes (paper Section 3.3) and that the MG pruning strategy feeds on:

* ``comm[v]``           — community id of ``v`` (ids live in ``[0, n)``).
* ``d_comm[v]``         — ``d_{C[v]}(v)`` *excluding* self-loops: the weight
  between ``v`` and the other members of its community. Self-loop weight is
  invariant under moves, so it is added back only where modularity needs it.
* ``comm_strength[c]``  — ``D_V(C)``: summed weighted degree of members.
* ``comm_size[c]``      — member count (drives the singleton-swap guard).

``comm_strength`` and ``comm_size`` are indexed by community id; entries of
empty communities are zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph


@dataclass
class CommunityState:
    """State arrays for one graph during phase 1.

    ``resolution`` is the gamma at which this optimisation scores gains and
    modularity (1.0 = classic Newman modularity); it travels with the state
    so every kernel backend scores identically.
    """

    graph: CSRGraph
    comm: np.ndarray
    d_comm: np.ndarray
    comm_strength: np.ndarray
    comm_size: np.ndarray
    resolution: float = 1.0

    @classmethod
    def singletons(cls, graph: CSRGraph, resolution: float = 1.0) -> "CommunityState":
        """Initial state: every vertex is its own community.

        ``d_comm`` starts at zero because a singleton community contains no
        *other* members (self-loops are accounted separately).
        """
        n = graph.n
        return cls(
            graph=graph,
            comm=np.arange(n, dtype=np.int64),
            d_comm=np.zeros(n, dtype=np.float64),
            comm_strength=graph.strength.copy(),
            comm_size=np.ones(n, dtype=np.int64),
            resolution=resolution,
        )

    @classmethod
    def from_assignment(
        cls, graph: CSRGraph, communities: np.ndarray, resolution: float = 1.0
    ) -> "CommunityState":
        """State consistent with an arbitrary assignment (ids in [0, n))."""
        comm = np.asarray(communities, dtype=np.int64).copy()
        if len(comm) != graph.n:
            raise ValueError("assignment length must equal graph.n")
        state = cls(
            graph=graph,
            comm=comm,
            d_comm=np.zeros(graph.n, dtype=np.float64),
            comm_strength=np.bincount(comm, weights=graph.strength, minlength=graph.n),
            comm_size=np.bincount(comm, minlength=graph.n),
            resolution=resolution,
        )
        state.recompute_d_comm()
        return state

    # ------------------------------------------------------------------ #
    def recompute_d_comm(self, vertices: np.ndarray | None = None) -> None:
        """Recompute ``d_comm`` from scratch (the naive approach the paper's
        Section 3.5 identifies as a bottleneck).

        With ``vertices`` given, only those rows are recomputed — that is the
        moved-vertex half of the efficient updating scheme.
        """
        g = self.graph
        if vertices is None:
            row = g.row_ids
            same = self.comm[row] == self.comm[g.indices]
            self.d_comm[:] = 0.0
            if np.any(same):
                np.add.at(self.d_comm, row[same], g.weights[same])
        else:
            vertices = np.asarray(vertices)
            if len(vertices) == 0:
                return
            counts = g.degrees[vertices]
            eidx = _rows_edges(g, vertices, counts)
            row = np.repeat(vertices, counts)
            same = self.comm[row] == self.comm[g.indices[eidx]]
            self.d_comm[vertices] = 0.0
            if np.any(same):
                np.add.at(self.d_comm, row[same], g.weights[eidx][same])

    def refresh_community_aggregates(self) -> None:
        """Recompute ``comm_strength`` / ``comm_size`` from ``comm``."""
        self.comm_strength = np.bincount(
            self.comm, weights=self.graph.strength, minlength=self.graph.n
        )
        self.comm_size = np.bincount(self.comm, minlength=self.graph.n)

    # ------------------------------------------------------------------ #
    def internal_weights(self) -> np.ndarray:
        """``D_C(C)`` per community id, from the maintained state."""
        return np.bincount(
            self.comm,
            weights=self.d_comm + 2.0 * self.graph.self_weight,
            minlength=self.graph.n,
        )

    def modularity(self) -> float:
        """Modularity of the current assignment from maintained aggregates.

        O(n); used every iteration (Algorithm 1 lines 8-11). Consistency
        with the from-scratch :func:`repro.core.modularity.modularity` is a
        test invariant.
        """
        two_m = self.graph.two_m
        if two_m == 0.0:
            return 0.0
        internal = self.internal_weights()
        return float(
            (
                internal / two_m
                - self.resolution * (self.comm_strength / two_m) ** 2
            ).sum()
        )

    def min_community_strength(self) -> float:
        """``min_C D_V(C)`` over non-empty communities (the MG bound term)."""
        nonempty = self.comm_size > 0
        return float(self.comm_strength[nonempty].min()) if np.any(nonempty) else 0.0

    def copy(self) -> "CommunityState":
        return CommunityState(
            graph=self.graph,
            comm=self.comm.copy(),
            d_comm=self.d_comm.copy(),
            comm_strength=self.comm_strength.copy(),
            comm_size=self.comm_size.copy(),
            resolution=self.resolution,
        )


def _rows_edges(g: CSRGraph, vertices: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat adjacency indices covering every edge of ``vertices``."""
    from repro.utils.arrays import repeat_by_counts

    return repeat_by_counts(g.indptr[vertices], counts)
