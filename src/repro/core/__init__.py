"""GALA core: the parallel Louvain algorithm with modularity-gain pruning.

Public entry points:

* :func:`repro.core.gala.gala` — the full GALA pipeline (phase 1 + phase 2,
  multi-round, with MG pruning and delta weight updates on by default).
* :func:`repro.core.phase1.run_phase1` — one phase-1 optimisation of the
  BSP parallel Louvain algorithm (paper Algorithm 1), configurable pruning
  strategy / weight-update mode / kernel backend.
* :mod:`repro.core.engine` — the unified BSP loop every runtime (local,
  multi-GPU, distributed) is driven by: the :class:`Executor` protocol,
  :class:`ConvergenceTracker`, and the shared :class:`IterationTrace`
  record schema.
* :func:`repro.core.modularity.modularity` — Newman modularity (Eq. 1).
"""

from repro.core.modularity import modularity, modularity_gain_matrix
from repro.core.state import CommunityState
from repro.core.engine import (
    ConvergenceTracker,
    EngineConfig,
    EngineResult,
    Executor,
    IterationTrace,
    run_engine,
)
from repro.core.phase1 import (
    LocalExecutor,
    Phase1Config,
    Phase1Result,
    run_phase1,
)
from repro.core.louvain import LouvainResult, louvain
from repro.core.gala import gala, GalaConfig
from repro.core.leiden import leiden, LeidenResult, refine_partition, split_disconnected_communities
from repro.core.dendrogram import Dendrogram, dendrogram_from_graph

__all__ = [
    "modularity",
    "modularity_gain_matrix",
    "CommunityState",
    "ConvergenceTracker",
    "EngineConfig",
    "EngineResult",
    "Executor",
    "IterationTrace",
    "run_engine",
    "LocalExecutor",
    "Phase1Config",
    "Phase1Result",
    "run_phase1",
    "LouvainResult",
    "louvain",
    "gala",
    "GalaConfig",
    "leiden",
    "LeidenResult",
    "refine_partition",
    "split_disconnected_communities",
    "Dendrogram",
    "dendrogram_from_graph",
]
