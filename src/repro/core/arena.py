"""Zero-allocation buffer arena for the BSP engine hot loop.

The steady-state phase-1 iteration re-creates the same handful of
iteration-shaped arrays every sweep — frontier masks, gather buffers,
per-community accumulators, DecideResult storage. On laptop-scale graphs
the allocator churn is measurable; on the compiled hot path
(:mod:`repro.core.kernels.jit`) it would dominate, because the kernels
themselves are down to nanoseconds per edge.

:class:`BufferArena` is a keyed scratch allocator that preallocates each
buffer once (growing geometrically on the rare size increase), hands out
**views**, and counts its own behaviour so the win is provable per run:

* ``allocs``       — backing-buffer creations/growths. The engine-loop
  invariant is that this is *flat after iteration 2*: the first sweep
  sizes every buffer (active sets and movement frontiers only shrink
  afterwards), so the steady state performs zero heap allocations for
  every arena-backed array.
* ``bytes_reused`` — bytes served from existing backing buffers.
* ``hwm``          — high-water mark of total backing bytes.

These counters bridge into the observability layer as ``arena/allocs``,
``arena/bytes_reused`` and ``arena/hwm`` (see
:meth:`repro.obs.metrics.MetricsRegistry.bridge_arena`), and the engine
trace records the running ``allocs`` per iteration so the flatness
invariant is visible in any exported history.

Aliasing contract: views handed out under *different keys* never share
memory (each key owns a distinct backing buffer — a test invariant).
Re-requesting the *same* key returns the same memory; that is the point.
A view is therefore valid until the same key is requested again. Callers
that hand a buffer to a consumer which must survive one more iteration
(e.g. the movement frontier, read by the auto dispatcher on the *next*
sweep) double-buffer by alternating keys on :attr:`generation` parity.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

import numpy as np

Key = Hashable


class BufferArena:
    """Per-level scratch allocator handing out views of pooled buffers."""

    def __init__(self, name: str = "arena"):
        self.name = name
        self._buffers: Dict[Key, np.ndarray] = {}
        #: backing-buffer creations or growths (the "allocation" events)
        self.allocs = 0
        #: requests served entirely from an existing backing buffer
        self.reuses = 0
        #: bytes of those served-from-pool requests
        self.bytes_reused = 0
        #: total bytes currently backing the pool
        self.bytes_allocated = 0
        #: high-water mark of ``bytes_allocated``
        self.hwm = 0
        #: engine-iteration counter (bumped by :meth:`tick`); consumers use
        #: its parity to double-buffer keys that must survive one sweep
        self.generation = 0

    # ------------------------------------------------------------------ #
    def tick(self) -> None:
        """Mark the start of a new engine iteration (for key parity)."""
        self.generation += 1

    def request(
        self, key: Key, size: int, dtype: np.dtype | type = np.float64
    ) -> np.ndarray:
        """A 1-D view of length ``size`` backed by the pooled buffer of
        ``key``. Contents are unspecified (may hold stale data); use
        :meth:`zeros` when a cleared buffer is needed."""
        dtype = np.dtype(dtype)
        buf = self._buffers.get(key)
        if buf is not None and buf.dtype != dtype:
            raise TypeError(
                f"arena key {key!r} is {buf.dtype}, requested {dtype}; "
                f"use one dtype per key"
            )
        if buf is None or len(buf) < size:
            # Geometric growth keeps re-allocation O(log) in the worst
            # case; in the engine loop sizes only shrink after the first
            # sweep, so this branch goes quiet after iteration 2.
            cap = max(int(size), 1)
            if buf is not None:
                cap = max(cap, 2 * len(buf))
            new = np.empty(cap, dtype=dtype)
            if buf is not None:
                self.bytes_allocated -= buf.nbytes
            self._buffers[key] = new
            self.allocs += 1
            self.bytes_allocated += new.nbytes
            if self.bytes_allocated > self.hwm:
                self.hwm = self.bytes_allocated
            buf = new
        else:
            self.reuses += 1
            self.bytes_reused += size * dtype.itemsize
        return buf[:size]

    def zeros(
        self, key: Key, size: int, dtype: np.dtype | type = np.float64
    ) -> np.ndarray:
        """Like :meth:`request`, but the returned view is zero-filled."""
        view = self.request(key, size, dtype)
        view[:] = 0
        return view

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """Counter snapshot (the payload of the obs bridge)."""
        return {
            "allocs": self.allocs,
            "reuses": self.reuses,
            "bytes_reused": self.bytes_reused,
            "bytes_allocated": self.bytes_allocated,
            "hwm": self.hwm,
            "keys": len(self._buffers),
        }

    def keys(self) -> Tuple[Key, ...]:
        return tuple(self._buffers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BufferArena({self.name!r}, keys={len(self._buffers)}, "
            f"allocs={self.allocs}, hwm={self.hwm})"
        )
