"""Vectorised (NumPy) DecideAndMove — the reference kernel backend.

Implements lines 14-16 of the paper's Algorithm 1 for a whole active set at
once using segmented reductions:

1. gather all adjacency entries of the active vertices;
2. aggregate edge weights per ``(vertex, neighbour-community)`` pair (this
   is ``d_C(v)`` for every neighbouring ``C``) — see :func:`_aggregate_pairs`
   for the exactness convention every backend shares;
3. evaluate the modularity gain of every candidate pair (Eq. 2);
4. per-vertex segmented argmax picks the best target community, with ties
   broken toward the smaller community id (Grappolo's determinism rule);
5. apply the movement guards (strictly-positive improvement over staying,
   and the singleton-swap guard that prevents BSP oscillation).

Steps 3-5 live in :func:`_evaluate_pairs` and are shared verbatim by the
``incremental`` and ``bincount`` backends (:mod:`repro.core.kernels.
incremental`), which only differ in how they produce the pair table of
step 2. That sharing — plus the common summation convention — is what makes
the cross-backend bit-exactness contract hold by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.state import CommunityState
from repro.utils.arrays import repeat_by_counts, segment_argmax


@dataclass
class DecideResult:
    """Outcome of DecideAndMove over an active set.

    All arrays align with ``active_idx`` (the sorted active vertex ids).
    """

    active_idx: np.ndarray
    best_comm: np.ndarray  # best target community per active vertex
    best_gain: np.ndarray  # gain of moving there (-inf if no candidate)
    stay_gain: np.ndarray  # gain of remaining in the current community
    move: np.ndarray  # final movement decision (guards applied)

    def next_comm(self, comm: np.ndarray) -> np.ndarray:
        """Materialise the next-iteration assignment (BSP delayed update)."""
        nxt = comm.copy()
        movers = self.active_idx[self.move]
        nxt[movers] = self.best_comm[self.move]
        return nxt

    @property
    def num_moved(self) -> int:
        return int(self.move.sum())

    def restrict(self, active_idx: np.ndarray) -> "DecideResult":
        """Project this result onto a sorted subset of its active set.

        Every DecideAndMove quantity is row-local — a vertex's best target,
        gains and movement guards depend only on its own adjacency row and
        the shared community aggregates — so slicing a full-set result is
        bit-identical to running the kernel on the subset directly (a test
        invariant). The oracle path uses this to derive the pruned-set
        result from the full-set run instead of running the kernel twice.
        """
        active_idx = np.asarray(active_idx, dtype=np.int64)
        pos = np.searchsorted(self.active_idx, active_idx)
        if np.any(pos >= len(self.active_idx)) or not np.array_equal(
            self.active_idx[pos], active_idx
        ):
            raise ValueError("active_idx is not a subset of this result")
        return DecideResult(
            active_idx=active_idx,
            best_comm=self.best_comm[pos],
            best_gain=self.best_gain[pos],
            stay_gain=self.stay_gain[pos],
            move=self.move[pos],
        )


def _apply_guards(
    state: CommunityState,
    active_idx: np.ndarray,
    best_comm: np.ndarray,
    best_gain: np.ndarray,
    stay_gain: np.ndarray,
    valid: np.ndarray,
) -> np.ndarray:
    """Movement guards shared by every kernel backend.

    * move only on a strictly better gain than staying (equal-gain vertices
      stay put, which both matches Lemma 5's "no more gain" condition and
      prevents equal-gain oscillation);
    * Grappolo's singleton-swap guard: two singleton communities may only
      merge in the direction of the smaller community id, else the BSP
      update would swap them forever.
    """
    cur = state.comm[active_idx]
    move = valid & (best_gain > stay_gain)
    both_singleton = (state.comm_size[cur] == 1) & (
        state.comm_size[np.where(valid, best_comm, 0)] == 1
    )
    move &= ~(both_singleton & (best_comm > cur))
    return move


def _trivial_result(
    state: CommunityState, active_idx: np.ndarray, stay_gain: np.ndarray
) -> DecideResult:
    """Nobody-can-move result (edgeless graphs, isolated actives)."""
    cur = state.comm[active_idx]
    n_act = len(active_idx)
    return DecideResult(
        active_idx=active_idx,
        best_comm=cur.copy(),
        best_gain=np.full(n_act, -np.inf),
        stay_gain=stay_gain,
        move=np.zeros(n_act, dtype=bool),
    )


def _aggregate_pairs(
    state: CommunityState,
    active_idx: np.ndarray,
    counts: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``d_C(v)`` pair tables for the rows of ``active_idx`` (sorted ids).

    Returns ``(pair_c, d_vc, pair_counts, pair_rows)``: for each active row
    in order, its neighbouring community ids ascending and the summed edge
    weight into each, concatenated; ``pair_counts[i]`` pairs belong to
    ``active_idx[i]`` and ``pair_rows`` is the local row index of every
    pair (what ``np.repeat(arange, pair_counts)`` would rebuild — handed to
    :func:`_evaluate_pairs` so the hot path skips that expansion).

    Exactness convention (shared by every backend, documented in
    docs/algorithm.md): each ``(v, C)`` group's weights are summed
    **sequentially in adjacency order** (``np.bincount`` semantics). Any
    aggregation strategy that preserves this order — a stable sort plus
    per-group sum, a dense per-community scatter-add, or a cached copy of a
    previous identical aggregation — produces bit-identical ``d_vc``.

    Returned arrays may alias graph internals on the fast paths; callers
    must treat them as read-only.
    """
    g = state.graph
    comm = state.comm
    n_act = len(active_idx)
    if counts is None:
        counts = g.degrees[active_idx]
    total = int(counts.sum())
    if total == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            np.zeros(n_act, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    if n_act == g.n:
        # Full active set: the gather is the identity — use the adjacency
        # (and the cached row-id expansion) directly.
        u = g.indices
        w = g.weights
        row_local = g.row_ids
    else:
        eidx = repeat_by_counts(g.indptr[active_idx], counts)
        u = g.indices[eidx]
        w = g.weights[eidx]
        row_local = np.repeat(np.arange(n_act, dtype=np.int64), counts)
    cu = comm[u]
    if np.array_equal(cu, u):
        # Singleton fast path (every gathered neighbour is its own
        # community — true for iteration 0 of every level): adjacency rows
        # are already sorted by neighbour id with no duplicates, so they
        # ARE the pair table. No sort, no summation.
        return cu, w, np.asarray(counts, dtype=np.int64), row_local

    # Sort by the packed key (row, C) -> row*n + C with a stable sort —
    # equivalent to lexsort((cu, row_local)) but ~15x faster (single radix
    # pass); the stability keeps same-(v, C) weights in adjacency order,
    # which the cross-backend bit-exactness relies on. Guard the n*n key
    # overflow (only reachable beyond ~3e9 vertices).
    if g.n <= 3_000_000_000:
        key = row_local * np.int64(g.n) + cu
        order = np.argsort(key, kind="stable")
        kord = key[order]
        new_run = np.empty(total, dtype=bool)
        new_run[0] = True
        new_run[1:] = kord[1:] != kord[:-1]
    else:  # pragma: no cover - beyond any laptop-scale graph
        order = np.lexsort((cu, row_local))
        sv, sc = row_local[order], cu[order]
        new_run = np.empty(total, dtype=bool)
        new_run[0] = True
        new_run[1:] = (sv[1:] != sv[:-1]) | (sc[1:] != sc[:-1])
    pair_id = np.cumsum(new_run, dtype=np.int64) - 1
    d_vc = np.bincount(pair_id, weights=w[order])
    starts = order[np.flatnonzero(new_run)]
    pair_c = cu[starts]
    pair_rows = row_local[starts]
    pair_counts = np.bincount(pair_rows, minlength=n_act).astype(np.int64)
    return pair_c, d_vc, pair_counts, pair_rows


def _evaluate_pairs(
    state: CommunityState,
    active_idx: np.ndarray,
    pair_c: np.ndarray,
    d_vc: np.ndarray,
    pair_counts: np.ndarray,
    remove_self: bool,
    seg_of: np.ndarray | None = None,
) -> DecideResult:
    """Steps 3-5 of DecideAndMove from a pair table: gains, argmax, guards.

    Shared verbatim by every backend so that identical pair tables yield
    bit-identical :class:`DecideResult`\\ s. ``seg_of`` is the local row
    index of every pair; backends that already hold it (the sorted and
    dense aggregations) pass it to skip the ``np.repeat`` rebuild.
    """
    g = state.graph
    comm = state.comm
    strength = g.strength
    m = g.total_weight
    two_m = g.two_m
    gamma = state.resolution
    n_act = len(active_idx)

    cur = comm[active_idx]
    act_strength = strength[active_idx]
    cur_total = state.comm_strength[cur]
    if remove_self:
        cur_total = cur_total - act_strength
    # Default stay gain: no neighbours inside the current community
    # (overwritten below from the own-community pair where present).
    stay_gain = (0.0 - gamma * cur_total * act_strength / two_m) / m

    if len(pair_c) == 0:
        return _trivial_result(state, active_idx, stay_gain)

    # (3) candidate gains
    if seg_of is None:
        seg_of = np.repeat(np.arange(n_act, dtype=np.int64), pair_counts)
    pair_strength = act_strength[seg_of]
    pair_total = state.comm_strength[pair_c]
    is_own = pair_c == cur[seg_of]
    if remove_self:
        pair_total = np.where(is_own, pair_total - pair_strength, pair_total)
    gain = (d_vc - gamma * pair_total * pair_strength / two_m) / m

    own_pairs = np.flatnonzero(is_own)
    stay_gain[seg_of[own_pairs]] = gain[own_pairs]

    # (4) per-vertex argmax over *other* communities
    cand_gain = np.where(is_own, -np.inf, gain)
    offsets = np.concatenate([[0], np.cumsum(pair_counts)]).astype(np.int64)
    arg, valid = segment_argmax(cand_gain, offsets, seg_of=seg_of, check=False)
    best_comm = np.where(valid, pair_c[arg], cur)
    best_gain = np.where(valid, cand_gain[arg], -np.inf)
    # A vertex whose only neighbours are in its own community has no
    # candidate (its single pair is masked to -inf): treat as invalid.
    valid &= np.isfinite(best_gain)
    best_comm = np.where(valid, best_comm, cur)

    # (5) guards
    move = _apply_guards(state, active_idx, best_comm, best_gain, stay_gain, valid)
    return DecideResult(
        active_idx=active_idx,
        best_comm=best_comm,
        best_gain=best_gain,
        stay_gain=stay_gain,
        move=move,
    )


def decide_moves(
    state: CommunityState,
    active_idx: np.ndarray,
    remove_self: bool = True,
) -> DecideResult:
    """Run DecideAndMove for every vertex in ``active_idx`` (must be sorted).

    Parameters
    ----------
    state:
        Current BSP iteration state (consistent snapshot).
    active_idx:
        Sorted vertex ids to process.
    remove_self:
        When True (default, Grappolo/standard Louvain), a vertex's own
        strength is removed from its community's ``D_V`` when evaluating the
        gain of staying. When False, Eq. 2 is applied verbatim as printed in
        the paper.
    """
    g = state.graph
    active_idx = np.asarray(active_idx, dtype=np.int64)
    n_act = len(active_idx)

    if g.total_weight == 0.0 or n_act == 0:
        # Edgeless graph (or empty active set): nobody can move.
        return _trivial_result(state, active_idx, np.zeros(n_act))

    counts = g.degrees[active_idx]
    pair_c, d_vc, pair_counts, pair_rows = _aggregate_pairs(
        state, active_idx, counts
    )
    return _evaluate_pairs(
        state, active_idx, pair_c, d_vc, pair_counts, remove_self,
        seg_of=pair_rows,
    )
