"""Vectorised (NumPy) DecideAndMove — the reference kernel backend.

Implements lines 14-16 of the paper's Algorithm 1 for a whole active set at
once using segmented reductions:

1. gather all adjacency entries of the active vertices;
2. aggregate edge weights per ``(vertex, neighbour-community)`` pair via a
   lexsort + ``reduceat`` (this is ``d_C(v)`` for every neighbouring ``C``);
3. evaluate the modularity gain of every candidate pair (Eq. 2);
4. per-vertex segmented argmax picks the best target community, with ties
   broken toward the smaller community id (Grappolo's determinism rule);
5. apply the movement guards (strictly-positive improvement over staying,
   and the singleton-swap guard that prevents BSP oscillation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.state import CommunityState
from repro.utils.arrays import repeat_by_counts, segment_argmax


@dataclass
class DecideResult:
    """Outcome of DecideAndMove over an active set.

    All arrays align with ``active_idx`` (the sorted active vertex ids).
    """

    active_idx: np.ndarray
    best_comm: np.ndarray  # best target community per active vertex
    best_gain: np.ndarray  # gain of moving there (-inf if no candidate)
    stay_gain: np.ndarray  # gain of remaining in the current community
    move: np.ndarray  # final movement decision (guards applied)

    def next_comm(self, comm: np.ndarray) -> np.ndarray:
        """Materialise the next-iteration assignment (BSP delayed update)."""
        nxt = comm.copy()
        movers = self.active_idx[self.move]
        nxt[movers] = self.best_comm[self.move]
        return nxt

    @property
    def num_moved(self) -> int:
        return int(self.move.sum())


def _apply_guards(
    state: CommunityState,
    active_idx: np.ndarray,
    best_comm: np.ndarray,
    best_gain: np.ndarray,
    stay_gain: np.ndarray,
    valid: np.ndarray,
) -> np.ndarray:
    """Movement guards shared by every kernel backend.

    * move only on a strictly better gain than staying (equal-gain vertices
      stay put, which both matches Lemma 5's "no more gain" condition and
      prevents equal-gain oscillation);
    * Grappolo's singleton-swap guard: two singleton communities may only
      merge in the direction of the smaller community id, else the BSP
      update would swap them forever.
    """
    cur = state.comm[active_idx]
    move = valid & (best_gain > stay_gain)
    both_singleton = (state.comm_size[cur] == 1) & (
        state.comm_size[np.where(valid, best_comm, 0)] == 1
    )
    move &= ~(both_singleton & (best_comm > cur))
    return move


def decide_moves(
    state: CommunityState,
    active_idx: np.ndarray,
    remove_self: bool = True,
) -> DecideResult:
    """Run DecideAndMove for every vertex in ``active_idx`` (must be sorted).

    Parameters
    ----------
    state:
        Current BSP iteration state (consistent snapshot).
    active_idx:
        Sorted vertex ids to process.
    remove_self:
        When True (default, Grappolo/standard Louvain), a vertex's own
        strength is removed from its community's ``D_V`` when evaluating the
        gain of staying. When False, Eq. 2 is applied verbatim as printed in
        the paper.
    """
    g = state.graph
    comm = state.comm
    strength = g.strength
    m = g.total_weight
    two_m = g.two_m
    active_idx = np.asarray(active_idx, dtype=np.int64)
    n_act = len(active_idx)

    cur = comm[active_idx]
    if m == 0.0 or n_act == 0:
        # Edgeless graph (or empty active set): nobody can move.
        return DecideResult(
            active_idx=active_idx,
            best_comm=cur.copy(),
            best_gain=np.full(n_act, -np.inf),
            stay_gain=np.zeros(n_act),
            move=np.zeros(n_act, dtype=bool),
        )

    # Default stay gain: no neighbours inside the current community.
    act_strength = strength[active_idx]
    gamma = state.resolution
    cur_total = state.comm_strength[cur]
    if remove_self:
        cur_total = cur_total - act_strength
    stay_gain = (0.0 - gamma * cur_total * act_strength / two_m) / m

    counts = np.diff(g.indptr)[active_idx]
    if counts.sum() == 0:
        # Isolated vertices: nothing to decide.
        return DecideResult(
            active_idx=active_idx,
            best_comm=cur.copy(),
            best_gain=np.full(n_act, -np.inf),
            stay_gain=stay_gain,
            move=np.zeros(n_act, dtype=bool),
        )

    # (1) gather
    eidx = repeat_by_counts(g.indptr[active_idx], counts)
    v_edge = np.repeat(active_idx, counts)
    u = g.indices[eidx]
    w = g.weights[eidx]
    cu = comm[u]

    # (2) aggregate d_C(v) per (v, C) pair. Sorting by the packed key
    # (v, C) -> v*n + C with a stable sort is equivalent to
    # lexsort((cu, v_edge)) but ~15x faster (single radix pass); the
    # stability keeps same-(v, C) weights in adjacency order, which the
    # cross-backend bit-exactness relies on. Guard the n*n key overflow
    # (only reachable beyond ~3e9 vertices).
    if g.n <= 3_000_000_000:
        key = v_edge * np.int64(g.n) + cu
        order = np.argsort(key, kind="stable")
    else:  # pragma: no cover - beyond any laptop-scale graph
        order = np.lexsort((cu, v_edge))
    sv, sc, sw = v_edge[order], cu[order], w[order]
    new_run = np.empty(len(sv), dtype=bool)
    new_run[0] = True
    new_run[1:] = (sv[1:] != sv[:-1]) | (sc[1:] != sc[:-1])
    starts = np.flatnonzero(new_run)
    d_vc = np.add.reduceat(sw, starts)
    pair_v = sv[starts]
    pair_c = sc[starts]

    # (3) candidate gains
    pair_strength = strength[pair_v]
    pair_total = state.comm_strength[pair_c]
    is_own = pair_c == comm[pair_v]
    if remove_self:
        pair_total = np.where(is_own, pair_total - pair_strength, pair_total)
    gain = (d_vc - gamma * pair_total * pair_strength / two_m) / m

    # Stay gain from the own-community pair where present.
    # pair_v is sorted; map each pair to its active slot.
    slot = np.searchsorted(active_idx, pair_v)
    own_pairs = np.flatnonzero(is_own)
    stay_gain[slot[own_pairs]] = gain[own_pairs]

    # (4) per-vertex argmax over *other* communities
    cand_gain = np.where(is_own, -np.inf, gain)
    offsets = np.concatenate(
        [
            np.searchsorted(pair_v, active_idx, side="left"),
            [len(pair_v)],
        ]
    ).astype(np.int64)
    arg, valid = segment_argmax(cand_gain, offsets)
    best_comm = np.where(valid, pair_c[arg], cur)
    best_gain = np.where(valid, cand_gain[arg], -np.inf)
    # A vertex whose only neighbours are in its own community has no
    # candidate (its single pair is masked to -inf): treat as invalid.
    valid &= np.isfinite(best_gain)
    best_comm = np.where(valid, best_comm, cur)

    # (5) guards
    move = _apply_guards(state, active_idx, best_comm, best_gain, stay_gain, valid)
    return DecideResult(
        active_idx=active_idx,
        best_comm=best_comm,
        best_gain=best_gain,
        stay_gain=stay_gain,
        move=move,
    )
