"""Incremental DecideAndMove backends + workload-aware host dispatch.

The vectorised reference backend re-aggregates the full active adjacency
every BSP iteration, even though after iteration 2-3 most rows' pair tables
are unchanged: a vertex's ``(neighbour-community, d_C(v))`` table depends
only on the communities of its neighbours, so it is invalidated exactly
when a neighbour moves. This module extends the paper's Section 3.5 delta
principle from the community-weight arrays to the aggregation itself:

* :class:`PairCache` — persistent per-row pair tables with lazy
  invalidation: ``notify_moves`` only marks the movement frontier dirty;
  rows are re-aggregated when (and only when) they are both *active* and
  *dirty* at query time. The re-aggregated workload is therefore never
  larger than the full path's, and shrinks with the moved fraction.
* :class:`IncrementalKernel` — DecideAndMove through the cache.
* :class:`BincountKernel` — sort-free aggregation over densely relabeled
  community ids (a host-side stand-in for the paper's hash kernel): one
  ``np.bincount`` scatter-add into an ``n_active x k`` table replaces the
  O(E log E) sort. Wins when the active set and its community footprint
  are small.
* :class:`AutoKernel` — the workload-aware host dispatcher (mirroring the
  paper's Section 4 small/large split): per iteration it inspects the
  active fraction and the dirty (≈ moved-neighbourhood) fraction and picks
  the cheapest of the three paths, recording its choice and the aggregated
  edge count for ``IterationRecord`` / ``TimerRegistry``.

Bit-exactness contract: every backend produces pair tables under the shared
summation convention of :func:`repro.core.kernels.vectorized._aggregate_pairs`
(sequential, adjacency-ordered sums) and evaluates them with the shared
:func:`repro.core.kernels.vectorized._evaluate_pairs`, so all backends
return bit-identical :class:`DecideResult`\\ s — enforced by the
cross-backend equivalence tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels.vectorized import (
    DecideResult,
    _aggregate_pairs,
    _evaluate_pairs,
    _trivial_result,
)
from repro.core.state import CommunityState
from repro.core.weights import movement_frontier
from repro.utils.arrays import repeat_by_counts
from repro.utils.timer import TimerRegistry


class PairCache:
    """Per-row ``(neighbour-community, d_C(v))`` tables with lazy dirtying.

    Segments live in a growing append buffer addressed by per-row
    ``(start, count)`` pointers, so replacing a row's table is an append +
    pointer swing instead of an O(total) splice; the buffer is compacted
    once the garbage from superseded segments exceeds the live size.

    Every row starts *dirty* (never aggregated). ``store`` fills rows and
    cleans them; ``mark_dirty`` re-dirties an invalidation set. A row's
    cached table is valid precisely while none of its neighbours moved —
    the invariant the caller maintains via the movement frontier.
    """

    def __init__(self, n: int):
        self.n = n
        self.row_start = np.zeros(n, dtype=np.int64)
        self.row_count = np.zeros(n, dtype=np.int64)
        self.dirty = np.ones(n, dtype=bool)
        self.buf_c = np.empty(0, dtype=np.int64)
        self.buf_w = np.empty(0, dtype=np.float64)
        self.used = 0  # append cursor
        self.live = 0  # total size of current (non-superseded) segments
        self.seeded = False  # has any store happened yet?

    def _ensure_capacity(self, extra: int) -> None:
        need = self.used + extra
        if need <= len(self.buf_c):
            return
        cap = max(need, 2 * len(self.buf_c), 1024)
        buf_c = np.empty(cap, dtype=np.int64)
        buf_w = np.empty(cap, dtype=np.float64)
        buf_c[: self.used] = self.buf_c[: self.used]
        buf_w[: self.used] = self.buf_w[: self.used]
        self.buf_c, self.buf_w = buf_c, buf_w

    def _compact(self) -> None:
        """Drop superseded segments; pointers re-aim into a dense buffer."""
        src = repeat_by_counts(self.row_start, self.row_count)
        self.buf_c = self.buf_c[src]
        self.buf_w = self.buf_w[src]
        ends = np.cumsum(self.row_count)
        self.row_start = ends - self.row_count
        self.used = self.live = int(ends[-1]) if self.n else 0

    def store(
        self,
        rows: np.ndarray,
        pair_c: np.ndarray,
        d_vc: np.ndarray,
        pair_counts: np.ndarray,
    ) -> None:
        """Replace the tables of ``rows`` (their segments concatenated in
        ``rows`` order in ``pair_c``/``d_vc``) and mark them clean."""
        total = int(pair_counts.sum())
        self.live += total - int(self.row_count[rows].sum())
        self._ensure_capacity(total)
        self.buf_c[self.used : self.used + total] = pair_c
        self.buf_w[self.used : self.used + total] = d_vc
        ends = np.cumsum(pair_counts)
        self.row_start[rows] = self.used + ends - pair_counts
        self.row_count[rows] = pair_counts
        self.used += total
        self.dirty[rows] = False
        self.seeded = True
        if self.used > 2 * self.live + 1024:
            self._compact()

    def mark_dirty(self, mask: np.ndarray) -> None:
        self.dirty |= mask

    def gather(
        self, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated pair tables of ``rows`` (all must be clean)."""
        counts = self.row_count[rows]
        idx = repeat_by_counts(self.row_start[rows], counts)
        return self.buf_c[idx], self.buf_w[idx], counts


class _KernelBase:
    """Shared counter plumbing for the host kernel backends."""

    name = "base"

    def __init__(self) -> None:
        #: backend that actually ran on the last call (for IterationRecord)
        self.last_backend: str | None = None
        #: adjacency entries re-aggregated on the last call — the workload
        #: measure the incremental cache reduces
        self.last_aggregated_edges: int = 0
        self._timers: TimerRegistry | None = None

    def bind_timers(self, timers: TimerRegistry) -> None:
        """Attach a registry; per-path ``kernel_<name>`` spans get recorded."""
        self._timers = timers

    def reset(self, state: CommunityState) -> None:  # pragma: no cover
        """Start of a phase-1 run on ``state.graph`` (stateless by default)."""

    def notify_moves(
        self,
        state: CommunityState,
        prev_comm: np.ndarray,
        moved: np.ndarray,
        frontier: np.ndarray | None = None,
    ) -> None:  # pragma: no cover - stateless backends ignore moves
        """BSP apply step happened; ``frontier`` is the moved-neighbourhood
        mask when the weight updater already derived it."""


class VectorizedKernel(_KernelBase):
    """The reference full-aggregation path behind the backend protocol."""

    name = "vectorized"

    def __call__(
        self,
        state: CommunityState,
        active_idx: np.ndarray,
        remove_self: bool = True,
    ) -> DecideResult:
        active_idx = np.asarray(active_idx, dtype=np.int64)
        self.last_backend = self.name
        if state.graph.total_weight == 0.0 or len(active_idx) == 0:
            self.last_aggregated_edges = 0
            return _trivial_result(state, active_idx, np.zeros(len(active_idx)))
        counts = state.graph.degrees[active_idx]
        self.last_aggregated_edges = int(counts.sum())
        pair_c, d_vc, pair_counts, pair_rows = _aggregate_pairs(
            state, active_idx, counts
        )
        return _evaluate_pairs(
            state, active_idx, pair_c, d_vc, pair_counts, remove_self,
            seg_of=pair_rows,
        )


def _aggregate_pairs_dense(
    state: CommunityState, active_idx: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Sort-free pair aggregation via dense community relabeling.

    Ranks the communities present in the gathered neighbourhood with a
    monotone cumulative-sum LUT (order-preserving, so per-row community
    order matches the sorted path), then scatter-adds the edge weights into
    an ``n_active x k`` table with one ``np.bincount``. A parallel presence
    count keeps zero-weight pairs representable. ``np.bincount`` sums each
    slot sequentially in input (= adjacency) order — the shared exactness
    convention — so the output is bit-identical to the sorted path.
    """
    g = state.graph
    n_act = len(active_idx)
    total = int(counts.sum())
    if total == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            np.zeros(n_act, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    if n_act == g.n:
        u, w, row_local = g.indices, g.weights, g.row_ids
    else:
        eidx = repeat_by_counts(g.indptr[active_idx], counts)
        u = g.indices[eidx]
        w = g.weights[eidx]
        row_local = np.repeat(np.arange(n_act, dtype=np.int64), counts)
    cu = state.comm[u]

    present = np.zeros(g.n, dtype=bool)
    present[cu] = True
    rank = np.cumsum(present) - 1  # comm id -> dense rank, order-preserving
    k = int(rank[-1]) + 1
    slot = row_local * np.int64(k) + rank[cu]
    table = np.int64(n_act) * k
    d_dense = np.bincount(slot, weights=w, minlength=table)
    occupied = np.bincount(slot, minlength=table)
    nz = np.flatnonzero(occupied)  # ascending => rows, then comms, ascending
    present_ids = np.flatnonzero(present)
    pair_c = present_ids[nz % k]
    d_vc = d_dense[nz]
    pair_rows = nz // k
    pair_counts = np.bincount(pair_rows, minlength=n_act).astype(np.int64)
    return pair_c, d_vc, pair_counts, pair_rows


def dense_feasible(
    k_bound: int, n_active: int, active_edges: int, budget_factor: int = 64
) -> bool:
    """Is the ``n_active x k`` dense table affordable for this workload?

    ``k_bound`` bounds the distinct communities the gather can meet (the
    non-empty community count); the guard compares the worst-case table
    against a multiple of the work the sorted path would do anyway.
    """
    return n_active * k_bound <= max(
        budget_factor * (active_edges + 1), 1 << 16
    )


class BincountKernel(_KernelBase):
    """Sort-free DecideAndMove over densely relabeled community ids.

    Falls back to the sorted path (bit-identical by the shared summation
    convention) when the dense table would exceed the workload budget —
    e.g. a whole-graph active set over singleton communities, where
    ``n_active x k`` is ``n^2``.
    """

    name = "bincount"

    def __init__(self, budget_factor: int = 64) -> None:
        super().__init__()
        self.budget_factor = budget_factor

    def __call__(
        self,
        state: CommunityState,
        active_idx: np.ndarray,
        remove_self: bool = True,
    ) -> DecideResult:
        active_idx = np.asarray(active_idx, dtype=np.int64)
        self.last_backend = self.name
        if state.graph.total_weight == 0.0 or len(active_idx) == 0:
            self.last_aggregated_edges = 0
            return _trivial_result(state, active_idx, np.zeros(len(active_idx)))
        counts = state.graph.degrees[active_idx]
        self.last_aggregated_edges = int(counts.sum())
        if dense_feasible(
            int(np.count_nonzero(state.comm_size)),
            len(active_idx),
            self.last_aggregated_edges,
            self.budget_factor,
        ):
            pair_c, d_vc, pair_counts, pair_rows = _aggregate_pairs_dense(
                state, active_idx, counts
            )
        else:
            pair_c, d_vc, pair_counts, pair_rows = _aggregate_pairs(
                state, active_idx, counts
            )
        return _evaluate_pairs(
            state, active_idx, pair_c, d_vc, pair_counts, remove_self,
            seg_of=pair_rows,
        )


class IncrementalKernel(_KernelBase):
    """DecideAndMove through the persistent :class:`PairCache`.

    Only rows that are both active and dirty are re-aggregated; clean rows'
    tables are read back from the cache. ``last_aggregated_edges`` counts
    the adjacency entries of the re-aggregated rows only, which is the
    strictly-smaller workload the perf-smoke benchmark asserts.
    """

    name = "incremental"

    def __init__(self) -> None:
        super().__init__()
        self.cache: PairCache | None = None

    def reset(self, state: CommunityState) -> None:
        self.cache = PairCache(state.graph.n)

    def notify_moves(
        self,
        state: CommunityState,
        prev_comm: np.ndarray,
        moved: np.ndarray,
        frontier: np.ndarray | None = None,
    ) -> None:
        if self.cache is None:
            return
        if frontier is None:
            frontier = movement_frontier(state.graph, moved)
        self.cache.mark_dirty(frontier)

    def __call__(
        self,
        state: CommunityState,
        active_idx: np.ndarray,
        remove_self: bool = True,
    ) -> DecideResult:
        active_idx = np.asarray(active_idx, dtype=np.int64)
        self.last_backend = self.name
        if state.graph.total_weight == 0.0 or len(active_idx) == 0:
            self.last_aggregated_edges = 0
            return _trivial_result(state, active_idx, np.zeros(len(active_idx)))
        if self.cache is None or self.cache.n != state.graph.n:
            self.cache = PairCache(state.graph.n)
        cache = self.cache

        stale = active_idx[cache.dirty[active_idx]]
        self.last_aggregated_edges = int(state.graph.degrees[stale].sum())
        if len(stale):
            pair_c, d_vc, pair_counts, pair_rows = _aggregate_pairs(
                state, stale
            )
            cache.store(stale, pair_c, d_vc, pair_counts)
        if len(stale) == len(active_idx):
            # Nothing came from the cache: reuse the freshly built tables
            # instead of gathering them straight back out.
            return _evaluate_pairs(
                state, active_idx, pair_c, d_vc, pair_counts, remove_self,
                seg_of=pair_rows,
            )
        pair_c, d_vc, pair_counts = cache.gather(active_idx)
        return _evaluate_pairs(
            state, active_idx, pair_c, d_vc, pair_counts, remove_self
        )


class AutoKernel(_KernelBase):
    """Workload-aware host dispatcher over the three aggregation paths.

    Per iteration (paper Section 4 in spirit — pick the kernel whose cost
    model fits the workload), driven by one *staleness signal*: the
    fraction of the active set whose pair tables the cache cannot (or
    could not, if seeded now) serve.

    * warm cache: the signal is ``min(dirty∧active fraction, frontier
      estimate)`` — the second term lets the dispatcher *re-seed* a cache
      that went wholesale-stale once churn has died down.
    * cold cache: the signal is the last movement frontier restricted to
      this active set — exactly what the dirty∧active fraction would be
      had the cache been seeded last sweep (1.0 before any notification,
      i.e. iteration 0 never pays store overhead).
    * ``signal < dense_dirty_frac`` — the incremental path: re-aggregate
      only the active∧dirty rows, serve the rest from the cache. Note
      this wins even on *full* active sets (unpruned tail sweeps where
      few vertices move — the classic Louvain endgame).
    * otherwise full re-aggregation: the plain vectorized path when the
      active fraction is at least ``full_threshold``, else the sort-free
      bincount path when the dense table fits the budget (falling back to
      vectorized when it does not).

    The chosen path and its aggregated-edge count are exposed via
    ``last_backend`` / ``last_aggregated_edges``; when timers are bound,
    each call is recorded under ``kernel_<backend>``.
    """

    name = "auto"

    def __init__(
        self,
        full_threshold: float = 0.5,
        dense_dirty_frac: float = 0.9,
        dense_budget_factor: int = 64,
        use_jit: bool = True,
    ):
        super().__init__()
        self.full_threshold = full_threshold
        self.dense_dirty_frac = dense_dirty_frac
        self.dense_budget_factor = dense_budget_factor
        self.vectorized = VectorizedKernel()
        self.bincount = BincountKernel()
        self.incremental = IncrementalKernel()
        #: the compiled backend, once (and only once) its warm-up compile
        #: probe succeeded — probed lazily in :meth:`reset`, never at
        #: construction, so importing/instantiating never compiles
        self.jit = None
        #: one-off compile/warm-up seconds of the probed jit runtime
        self.compile_s = 0.0
        self._use_jit = use_jit
        self._jit_probed = False
        self._arena = None
        #: the rows the last BSP apply invalidated (None before the first
        #: move notification) — the cold-seed churn estimator reads this
        self._last_frontier: np.ndarray | None = None

    def bind_arena(self, arena) -> None:
        """Attach the executor's buffer arena (forwarded to the jit path)."""
        self._arena = arena
        if self.jit is not None:
            self.jit.bind_arena(arena)

    def reset(self, state: CommunityState) -> None:
        self.incremental.reset(state)
        self._last_frontier = None
        if self._use_jit and not self._jit_probed:
            self._jit_probed = True
            # Lazy import breaks the jit -> vectorized -> (this module)
            # cycle; get_runtime() memoizes, so only the first AutoKernel
            # in a process pays the compile probe.
            from repro.core.kernels.jit import JitKernel, get_runtime

            runtime = get_runtime()
            if runtime is not None and runtime.provider != "python":
                self.jit = JitKernel(runtime=runtime, arena=self._arena)
                self.compile_s = runtime.compile_s
        if self.jit is not None:
            self.jit.reset(state)

    def notify_moves(
        self,
        state: CommunityState,
        prev_comm: np.ndarray,
        moved: np.ndarray,
        frontier: np.ndarray | None = None,
    ) -> None:
        if frontier is None:
            frontier = movement_frontier(state.graph, moved)
        self._last_frontier = frontier
        self.incremental.notify_moves(state, prev_comm, moved, frontier)

    def _full_backend(
        self, state: CommunityState, active_idx: np.ndarray
    ) -> _KernelBase:
        """Full re-aggregation: sort-free when the dense table is cheap."""
        if dense_feasible(
            int(np.count_nonzero(state.comm_size)),
            len(active_idx),
            int(state.graph.degrees[active_idx].sum()),
            self.dense_budget_factor,
        ):
            return self.bincount
        return self.vectorized

    def _choose(
        self, state: CommunityState, active_idx: np.ndarray
    ) -> _KernelBase:
        n = state.graph.n
        n_act = len(active_idx)
        # A probe-verified compiled backend beats every NumPy path at any
        # workload shape (its per-edge cost undercuts even the incremental
        # cache's gather overhead), so it wins unconditionally — including
        # the empty trivial sweep, which it short-circuits identically.
        if self.jit is not None:
            return self.jit
        if n_act == 0:
            return self.vectorized
        # Staleness signal: what fraction of the active rows would need
        # re-aggregation on the incremental path (see the class docstring).
        # A strided subsample is plenty — the signal only steers dispatch,
        # every choice returns bit-identical results.
        probe = active_idx[:: max(n_act // 4096, 1)]
        if self._last_frontier is not None and len(self._last_frontier) == n:
            signal = float(self._last_frontier[probe].mean())
        else:
            signal = 1.0  # no BSP apply observed yet: nothing reusable
        cache = self.incremental.cache
        if cache is not None and cache.n == n and cache.seeded:
            signal = min(signal, float(cache.dirty[probe].mean()))
        if signal < self.dense_dirty_frac:
            return self.incremental
        if n_act >= self.full_threshold * n:
            return self.vectorized
        return self._full_backend(state, active_idx)

    def __call__(
        self,
        state: CommunityState,
        active_idx: np.ndarray,
        remove_self: bool = True,
    ) -> DecideResult:
        active_idx = np.asarray(active_idx, dtype=np.int64)
        backend = self._choose(state, active_idx)
        if self._timers is not None:
            with self._timers.measure(f"kernel_{backend.name}"):
                result = backend(state, active_idx, remove_self)
        else:
            result = backend(state, active_idx, remove_self)
        self.last_backend = backend.name
        self.last_aggregated_edges = backend.last_aggregated_edges
        return result


KERNELS = {
    "vectorized": VectorizedKernel,
    "bincount": BincountKernel,
    "incremental": IncrementalKernel,
    "auto": AutoKernel,
}


def make_kernel(spec: str) -> _KernelBase:
    """Instantiate a named host kernel backend.

    ``"jit"`` is resolved lazily (the compiled backend imports this
    module); an explicit request raises
    :class:`~repro.errors.KernelUnavailableError` when no compile
    provider works here, while ``"auto"`` only *prefers* jit after its
    warm-up probe succeeds and silently stays on the NumPy paths
    otherwise.
    """
    if spec == "jit":
        from repro.core.kernels.jit import JitKernel

        return JitKernel()
    try:
        return KERNELS[spec]()
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {spec!r}; expected one of "
            f"{sorted([*KERNELS, 'jit'])} or a callable"
        ) from None
