"""Workload-aware kernel dispatch (paper Section 4).

GALA assigns each vertex to the kernel whose memory tier fits its state:

* degree < warp size (32)  -> shuffle-based kernel (states fit the warp's
  registers, one neighbour per lane);
* degree >= warp size      -> hash-based kernel with the hierarchical
  shared/global hashtable (one block per vertex).

The dispatcher partitions every active set by degree, runs each kernel on
its share, and stitches the per-vertex results back together. Both halves
charge the same simulated device, so the combined profiler is the cost of
the whole workload-aware configuration (the "MM" bar of Figure 6).
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels.hash import HashKernel
from repro.core.kernels.shuffle import ShuffleKernel
from repro.core.kernels.vectorized import DecideResult, _apply_guards
from repro.core.state import CommunityState
from repro.gpusim.device import Device
from repro.obs import _session as obs


class DispatchKernel:
    """GALA's combined kernel: shuffle for small degrees, hash for large."""

    name = "dispatch"

    def __init__(
        self,
        device: Device | None = None,
        table_kind: str = "hierarchical",
        shared_buckets: int = 1024,
        block_size: int = 128,
        engine: str | None = None,
    ):
        self.device = device or Device()
        self.shuffle = ShuffleKernel(self.device, engine=engine)
        self.hash = HashKernel(
            self.device,
            table_kind=table_kind,
            shared_buckets=shared_buckets,
            block_size=block_size,
            engine=engine,
        )
        self.threshold = self.device.config.warp_size
        self.engine = self.shuffle.engine

    def __call__(
        self, state: CommunityState, active_idx: np.ndarray, remove_self: bool = True
    ) -> DecideResult:
        active_idx = np.asarray(active_idx, dtype=np.int64)
        degrees = state.graph.degrees[active_idx]
        small = degrees < self.threshold

        n_act = len(active_idx)
        best_comm = np.empty(n_act, dtype=np.int64)
        best_gain = np.empty(n_act, dtype=np.float64)
        stay_gain = np.empty(n_act, dtype=np.float64)

        for mask, kernel, kname in (
            (small, self.shuffle, "shuffle"),
            (~small, self.hash, "hash"),
        ):
            idx = active_idx[mask]
            if len(idx) == 0:
                continue
            with obs.span(
                "kernel/" + kname,
                vertices=len(idx),
                edges=int(degrees[mask].sum()),
                engine=self.engine,
            ):
                part = kernel(state, idx, remove_self)
            obs.inc(f"kernel/{kname}_vertices", len(idx))
            best_comm[mask] = part.best_comm
            best_gain[mask] = part.best_gain
            stay_gain[mask] = part.stay_gain

        valid = np.isfinite(best_gain)
        best_comm = np.where(valid, best_comm, state.comm[active_idx])
        move = _apply_guards(state, active_idx, best_comm, best_gain, stay_gain, valid)
        return DecideResult(
            active_idx=active_idx,
            best_comm=best_comm,
            best_gain=best_gain,
            stay_gain=stay_gain,
            move=move,
        )


def make_gpusim_kernel(
    device: Device | None = None, **kwargs
) -> DispatchKernel:
    """Factory used by :class:`repro.core.gala.GalaConfig` for the
    ``backend="gpusim"`` path."""
    return DispatchKernel(device, **kwargs)
