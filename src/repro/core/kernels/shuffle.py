"""Warp-level shuffle-based DecideAndMove kernel (paper Algorithm 2).

One warp handles one small-degree vertex: lane ``i`` loads neighbour
``u_i``'s community and edge weight into registers, ``__match_any_sync``
groups lanes by community, ``__reduce_add_sync`` produces ``d_C(v)`` per
group, each lane evaluates its community's modularity gain, and a final
``__reduce_max_sync`` elects the winner. All intermediate state lives in
registers — the fastest memory — which is the kernel's entire advantage
(Figure 9(a): 1.9x over a global-memory hashtable, 1.2x over shared).

Execution is functional: decisions are bit-identical to the vectorised
backend (tested); the cost model is charged for every simulated load
(adjacency rows coalesced, community/aggregate lookups scattered) and warp
primitive.

Two engines execute the same semantics:

* ``"batched"`` (default) — all active vertices of one launch decided as
  ``(n_warps, 32)`` structure-of-arrays lane matrices through
  :class:`~repro.gpusim.warp.WarpBatch`, in chunks that bound the
  intermediate ``(B, 32, 32)`` tensors. Decisions and every profiler
  counter are bit-exact with the scalar engine (tested) — the float
  reductions sum the same 32 contiguous lane registers and all cycle
  charges are integer-valued, so bulk accounting equals the per-vertex
  sums exactly.
* ``"scalar"`` — the original one-warp-at-a-time reference interpreter.

The only intended divergence: on an edgeless graph (``m == 0``) the
batched engine returns the canonical nobody-moves result (matching
``decide_moves``) where the scalar loop would divide by zero.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels.vectorized import (
    DecideResult,
    _apply_guards,
    _trivial_result,
)
from repro.core.state import CommunityState
from repro.errors import DeviceError
from repro.gpusim import resolve_engine
from repro.gpusim.costmodel import MemoryKind
from repro.gpusim.device import Device
from repro.gpusim.warp import WarpBatch, WarpContext
from repro.obs import _session as obs

_INT64_MAX = np.iinfo(np.int64).max


class ShuffleKernel:
    """Callable kernel backend: ``kernel(state, active_idx, remove_self)``."""

    name = "shuffle"

    #: vertices decided per batched step; bounds the (B, 32, 32) lane
    #: tensors at ~16 MB each
    chunk_vertices = 2048

    def __init__(self, device: Device | None = None, engine: str | None = None):
        self.device = device or Device()
        self.engine = resolve_engine(engine)

    # ------------------------------------------------------------------ #
    def decide_vertex(
        self, state: CommunityState, v: int, remove_self: bool
    ) -> tuple[int, float, float]:
        """One vertex on one warp; returns (best_comm, best_gain, stay_gain)."""
        g = state.graph
        cost = self.device.config.cost
        prof = self.device.profiler
        w = self.device.config.warp_size

        lo, hi = g.indptr[v], g.indptr[v + 1]
        deg = hi - lo
        if deg > w:
            raise DeviceError(
                f"shuffle kernel handles degree <= {w}, vertex {v} has {deg}"
            )
        cur = int(state.comm[v])
        strength_v = float(g.strength[v])
        m = g.total_weight
        two_m = g.two_m
        gamma = state.resolution
        cur_total = float(state.comm_strength[cur])
        if remove_self:
            cur_total -= strength_v
        stay_gain = (0.0 - gamma * cur_total * strength_v / two_m) / m

        if deg == 0 or m == 0.0:
            return cur, -np.inf, stay_gain

        active = np.zeros(w, dtype=bool)
        active[:deg] = True
        warp = WarpContext(self.device, active=active)

        # Lane registers: neighbour id, community, weight (lines 2-4).
        my_u = np.zeros(w, dtype=np.int64)
        my_c = np.full(w, -1, dtype=np.int64)
        my_w = np.zeros(w, dtype=np.float64)
        my_u[:deg] = g.indices[lo:hi]
        my_w[:deg] = g.weights[lo:hi]
        # Adjacency row: consecutive addresses -> coalesced transactions.
        prof.charge("decide_load", cost.access(MemoryKind.GLOBAL, deg, coalesced=True) * 2)
        # Community lookups are scattered gathers.
        my_c[:deg] = state.comm[my_u[:deg]]
        prof.charge("decide_load", cost.access(MemoryKind.GLOBAL, deg))

        # Lines 5-6: group lanes by community and sum weights per group.
        mask = warp.match_any_sync(my_c)
        d_c = warp.reduce_add_sync(mask, my_w)

        # Line 7: per-lane gain. D_V(C) lookups are scattered global loads,
        # one per *distinct* community (the leader lane broadcasts it).
        totals = np.zeros(w, dtype=np.float64)
        totals[:deg] = state.comm_strength[my_c[:deg]]
        leader = np.zeros(w, dtype=bool)
        seen: set[int] = set()
        for lane in range(deg):
            if int(my_c[lane]) not in seen:
                seen.add(int(my_c[lane]))
                leader[lane] = True
        prof.charge("decide_load", cost.access(MemoryKind.GLOBAL, int(leader.sum())))
        prof.charge("decide_alu", cost.alu(deg * 4))

        is_own = my_c == cur
        eff_totals = np.where(
            is_own & remove_self, totals - strength_v, totals
        )
        gains = (d_c - gamma * eff_totals * strength_v / two_m) / m

        # Stay gain from own-community lanes (if any neighbour is inside).
        own_lanes = np.flatnonzero(is_own[:deg])
        if len(own_lanes):
            stay_gain = float(gains[own_lanes[0]])

        # Line 8: warp max over *candidate* lanes.
        cand = np.where(is_own, -np.inf, gains)
        cand[deg:] = -np.inf
        best_gain = warp.reduce_max_sync(cand)
        if not np.isfinite(best_gain):
            return cur, -np.inf, stay_gain
        # Ties: smallest community id among maximal lanes (one more
        # reduction in hardware; ballot + min here).
        winners = np.flatnonzero(cand[:deg] == best_gain)
        warp.ballot_sync(cand == best_gain)
        best_comm = int(my_c[winners].min())
        return best_comm, float(best_gain), stay_gain

    # ------------------------------------------------------------------ #
    def _decide_warp_chunk(
        self,
        state: CommunityState,
        verts: np.ndarray,
        d: np.ndarray,
        cur_sel: np.ndarray,
        sv: np.ndarray,
        remove_self: bool,
        sel: np.ndarray,
        best_comm: np.ndarray,
        best_gain: np.ndarray,
        stay_gain: np.ndarray,
    ) -> None:
        """Decide one SoA chunk of deg>0 vertices, one warp per matrix row."""
        g = state.graph
        cost = self.device.config.cost
        prof = self.device.profiler
        w = self.device.config.warp_size
        m = g.total_weight
        two_m = g.two_m
        gamma = state.resolution
        n = len(verts)

        # Gather lane registers for all rows at once.
        lo = g.indptr[verts].astype(np.int64)
        total = int(d.sum())
        row_of = np.repeat(np.arange(n, dtype=np.int64), d)
        starts = np.concatenate([[0], np.cumsum(d)]).astype(np.int64)
        lane_of = np.arange(total, dtype=np.int64) - starts[row_of]
        eidx = lo[row_of] + lane_of
        my_c = np.full((n, w), -1, dtype=np.int64)
        my_w = np.zeros((n, w), dtype=np.float64)
        my_c[row_of, lane_of] = state.comm[g.indices[eidx]]
        my_w[row_of, lane_of] = g.weights[eidx]
        # Coalesced row loads (deg <= 32: one transaction per array per
        # vertex), then scattered C[u] gathers — same charges as the
        # scalar per-vertex ones, summed.
        prof.charge("decide_load", cost.access(MemoryKind.GLOBAL, n) * 2)
        prof.charge("decide_load", cost.access(MemoryKind.GLOBAL, total))

        active = np.arange(w, dtype=np.int64)[None, :] < d[:, None]
        warp = WarpBatch(self.device, active)
        mask = warp.match_any_sync(my_c)
        d_c = warp.reduce_add_sync(mask, my_w)

        totals = np.zeros((n, w), dtype=np.float64)
        totals[active] = state.comm_strength[my_c[active]]
        # Leader lanes: first active lane of each distinct community
        # (active lanes are a prefix, so "a lower lane holds my value"
        # is exactly the scalar seen-set test).
        prior = np.tril(np.ones((w, w), dtype=bool), -1)
        dup = (
            (my_c[:, :, None] == my_c[:, None, :]) & prior[None, :, :]
        ).any(axis=2)
        leader = active & ~dup
        prof.charge(
            "decide_load", cost.access(MemoryKind.GLOBAL, int(leader.sum()))
        )
        prof.charge("decide_alu", cost.alu(total * 4))

        is_own = my_c == cur_sel[:, None]
        eff_totals = np.where(is_own & remove_self, totals - sv[:, None], totals)
        gains = (d_c - gamma * eff_totals * sv[:, None] / two_m) / m

        has_own = is_own.any(axis=1)
        first_own = np.argmax(is_own, axis=1)
        stay_gain[sel[has_own]] = gains[has_own, first_own[has_own]]

        cand = np.where(is_own, -np.inf, gains)
        cand[~active] = -np.inf
        best = warp.reduce_max_sync(cand)
        finite = np.isfinite(best)
        if np.any(finite):
            # the scalar path ballots only when a finite winner exists
            sub = WarpBatch(self.device, active[finite])
            sub.ballot_sync(cand[finite] == best[finite][:, None])
            winner = cand[finite] == best[finite][:, None]
            bc = np.where(winner, my_c[finite], _INT64_MAX).min(axis=1)
            best_comm[sel[finite]] = bc
            best_gain[sel[finite]] = best[finite]

    def _call_batched(
        self, state: CommunityState, active_idx: np.ndarray, remove_self: bool
    ) -> DecideResult:
        g = state.graph
        prof = self.device.profiler
        w = self.device.config.warp_size
        n_act = len(active_idx)
        if g.total_weight == 0.0:
            return _trivial_result(state, active_idx, np.zeros(n_act))
        deg = g.degrees[active_idx].astype(np.int64)
        over = np.flatnonzero(deg > w)
        if len(over):
            i = int(over[0])
            raise DeviceError(
                f"shuffle kernel handles degree <= {w}, vertex "
                f"{int(active_idx[i])} has {int(deg[i])}"
            )
        m = g.total_weight
        two_m = g.two_m
        gamma = state.resolution
        cur = state.comm[active_idx].astype(np.int64)
        strength_v = g.strength[active_idx].astype(np.float64)
        cur_total = state.comm_strength[cur].astype(np.float64)
        if remove_self:
            cur_total = cur_total - strength_v
        stay_gain = (0.0 - gamma * cur_total * strength_v / two_m) / m
        best_comm = cur.copy()
        best_gain = np.full(n_act, -np.inf)

        work = np.flatnonzero(deg > 0)
        for start in range(0, len(work), self.chunk_vertices):
            sub = work[start:start + self.chunk_vertices]
            with obs.span("kernel/shuffle_chunk", vertices=len(sub)):
                self._decide_warp_chunk(
                    state,
                    active_idx[sub],
                    deg[sub],
                    cur[sub],
                    strength_v[sub],
                    remove_self,
                    sub,
                    best_comm,
                    best_gain,
                    stay_gain,
                )
        prof.count("shuffle_vertices", n_act)
        valid = np.isfinite(best_gain)
        best_comm = np.where(valid, best_comm, cur)
        move = _apply_guards(state, active_idx, best_comm, best_gain, stay_gain, valid)
        return DecideResult(
            active_idx=active_idx,
            best_comm=best_comm,
            best_gain=best_gain,
            stay_gain=stay_gain,
            move=move,
        )

    # ------------------------------------------------------------------ #
    def __call__(
        self, state: CommunityState, active_idx: np.ndarray, remove_self: bool = True
    ) -> DecideResult:
        active_idx = np.asarray(active_idx, dtype=np.int64)
        if self.engine == "batched":
            return self._call_batched(state, active_idx, remove_self)
        n_act = len(active_idx)
        best_comm = np.empty(n_act, dtype=np.int64)
        best_gain = np.empty(n_act, dtype=np.float64)
        stay_gain = np.empty(n_act, dtype=np.float64)
        for i, v in enumerate(active_idx):
            bc, bg, sg = self.decide_vertex(state, int(v), remove_self)
            best_comm[i], best_gain[i], stay_gain[i] = bc, bg, sg
        self.device.profiler.count("shuffle_vertices", n_act)
        valid = np.isfinite(best_gain)
        best_comm = np.where(valid, best_comm, state.comm[active_idx])
        move = _apply_guards(state, active_idx, best_comm, best_gain, stay_gain, valid)
        return DecideResult(
            active_idx=active_idx,
            best_comm=best_comm,
            best_gain=best_gain,
            stay_gain=stay_gain,
            move=move,
        )
