"""Warp-level shuffle-based DecideAndMove kernel (paper Algorithm 2).

One warp handles one small-degree vertex: lane ``i`` loads neighbour
``u_i``'s community and edge weight into registers, ``__match_any_sync``
groups lanes by community, ``__reduce_add_sync`` produces ``d_C(v)`` per
group, each lane evaluates its community's modularity gain, and a final
``__reduce_max_sync`` elects the winner. All intermediate state lives in
registers — the fastest memory — which is the kernel's entire advantage
(Figure 9(a): 1.9x over a global-memory hashtable, 1.2x over shared).

Execution is functional: decisions are bit-identical to the vectorised
backend (tested); the cost model is charged for every simulated load
(adjacency rows coalesced, community/aggregate lookups scattered) and warp
primitive.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels.vectorized import DecideResult, _apply_guards
from repro.core.state import CommunityState
from repro.errors import DeviceError
from repro.gpusim.costmodel import MemoryKind
from repro.gpusim.device import Device
from repro.gpusim.warp import WarpContext


class ShuffleKernel:
    """Callable kernel backend: ``kernel(state, active_idx, remove_self)``."""

    name = "shuffle"

    def __init__(self, device: Device | None = None):
        self.device = device or Device()

    # ------------------------------------------------------------------ #
    def decide_vertex(
        self, state: CommunityState, v: int, remove_self: bool
    ) -> tuple[int, float, float]:
        """One vertex on one warp; returns (best_comm, best_gain, stay_gain)."""
        g = state.graph
        cost = self.device.config.cost
        prof = self.device.profiler
        w = self.device.config.warp_size

        lo, hi = g.indptr[v], g.indptr[v + 1]
        deg = hi - lo
        if deg > w:
            raise DeviceError(
                f"shuffle kernel handles degree <= {w}, vertex {v} has {deg}"
            )
        cur = int(state.comm[v])
        strength_v = float(g.strength[v])
        m = g.total_weight
        two_m = g.two_m
        gamma = state.resolution
        cur_total = float(state.comm_strength[cur])
        if remove_self:
            cur_total -= strength_v
        stay_gain = (0.0 - gamma * cur_total * strength_v / two_m) / m

        if deg == 0 or m == 0.0:
            return cur, -np.inf, stay_gain

        active = np.zeros(w, dtype=bool)
        active[:deg] = True
        warp = WarpContext(self.device, active=active)

        # Lane registers: neighbour id, community, weight (lines 2-4).
        my_u = np.zeros(w, dtype=np.int64)
        my_c = np.full(w, -1, dtype=np.int64)
        my_w = np.zeros(w, dtype=np.float64)
        my_u[:deg] = g.indices[lo:hi]
        my_w[:deg] = g.weights[lo:hi]
        # Adjacency row: consecutive addresses -> coalesced transactions.
        prof.charge("decide_load", cost.access(MemoryKind.GLOBAL, deg, coalesced=True) * 2)
        # Community lookups are scattered gathers.
        my_c[:deg] = state.comm[my_u[:deg]]
        prof.charge("decide_load", cost.access(MemoryKind.GLOBAL, deg))

        # Lines 5-6: group lanes by community and sum weights per group.
        mask = warp.match_any_sync(my_c)
        d_c = warp.reduce_add_sync(mask, my_w)

        # Line 7: per-lane gain. D_V(C) lookups are scattered global loads,
        # one per *distinct* community (the leader lane broadcasts it).
        totals = np.zeros(w, dtype=np.float64)
        totals[:deg] = state.comm_strength[my_c[:deg]]
        leader = np.zeros(w, dtype=bool)
        seen: set[int] = set()
        for lane in range(deg):
            if int(my_c[lane]) not in seen:
                seen.add(int(my_c[lane]))
                leader[lane] = True
        prof.charge("decide_load", cost.access(MemoryKind.GLOBAL, int(leader.sum())))
        prof.charge("decide_alu", cost.alu(deg * 4))

        is_own = my_c == cur
        eff_totals = np.where(
            is_own & remove_self, totals - strength_v, totals
        )
        gains = (d_c - gamma * eff_totals * strength_v / two_m) / m

        # Stay gain from own-community lanes (if any neighbour is inside).
        own_lanes = np.flatnonzero(is_own[:deg])
        if len(own_lanes):
            stay_gain = float(gains[own_lanes[0]])

        # Line 8: warp max over *candidate* lanes.
        cand = np.where(is_own, -np.inf, gains)
        cand[deg:] = -np.inf
        best_gain = warp.reduce_max_sync(cand)
        if not np.isfinite(best_gain):
            return cur, -np.inf, stay_gain
        # Ties: smallest community id among maximal lanes (one more
        # reduction in hardware; ballot + min here).
        winners = np.flatnonzero(cand[:deg] == best_gain)
        warp.ballot_sync(cand == best_gain)
        best_comm = int(my_c[winners].min())
        return best_comm, float(best_gain), stay_gain

    # ------------------------------------------------------------------ #
    def __call__(
        self, state: CommunityState, active_idx: np.ndarray, remove_self: bool = True
    ) -> DecideResult:
        active_idx = np.asarray(active_idx, dtype=np.int64)
        n_act = len(active_idx)
        best_comm = np.empty(n_act, dtype=np.int64)
        best_gain = np.empty(n_act, dtype=np.float64)
        stay_gain = np.empty(n_act, dtype=np.float64)
        for i, v in enumerate(active_idx):
            bc, bg, sg = self.decide_vertex(state, int(v), remove_self)
            best_comm[i], best_gain[i], stay_gain[i] = bc, bg, sg
        self.device.profiler.count("shuffle_vertices", n_act)
        valid = np.isfinite(best_gain)
        best_comm = np.where(valid, best_comm, state.comm[active_idx])
        move = _apply_guards(state, active_idx, best_comm, best_gain, stay_gain, valid)
        return DecideResult(
            active_idx=active_idx,
            best_comm=best_comm,
            best_gain=best_gain,
            stay_gain=stay_gain,
            move=move,
        )
