"""DecideAndMove kernel backends.

* :mod:`vectorized` — pure NumPy segmented-reduction backend; the default
  and the reference for correctness. Used for all algorithm-level results
  and wall-clock benchmarks.
* :mod:`shuffle` — warp-level shuffle-based kernel (paper Algorithm 2) on
  the simulated GPU; charges register/warp-primitive costs.
* :mod:`hash` — block-level hash-based kernel (paper Algorithm 3) on the
  simulated GPU; charges shared/global hashtable probe costs.
* :mod:`dispatch` — GALA's workload-aware dispatcher: degree < 32 vertices
  to the shuffle kernel, larger to the hash kernel.

Every backend implements the same contract: given a
:class:`~repro.core.state.CommunityState` and an active vertex set, return
a :class:`~repro.core.kernels.vectorized.DecideResult` with identical
community decisions (tested across backends).
"""

from repro.core.kernels.vectorized import DecideResult, decide_moves

__all__ = ["DecideResult", "decide_moves"]
