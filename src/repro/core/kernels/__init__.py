"""DecideAndMove kernel backends.

* :mod:`vectorized` — pure NumPy segmented-reduction backend; the default
  and the reference for correctness. Used for all algorithm-level results
  and wall-clock benchmarks.
* :mod:`incremental` — the host-side performance backends: the persistent
  pair-table cache (``incremental``), the sort-free dense-relabel path
  (``bincount``), and the workload-aware dispatcher (``auto``) that picks
  between them and the full path per iteration.
* :mod:`shuffle` — warp-level shuffle-based kernel (paper Algorithm 2) on
  the simulated GPU; charges register/warp-primitive costs.
* :mod:`hash` — block-level hash-based kernel (paper Algorithm 3) on the
  simulated GPU; charges shared/global hashtable probe costs.
* :mod:`dispatch` — GALA's workload-aware dispatcher: degree < 32 vertices
  to the shuffle kernel, larger to the hash kernel.

Every backend implements the same contract: given a
:class:`~repro.core.state.CommunityState` and an active vertex set, return
a :class:`~repro.core.kernels.vectorized.DecideResult` with identical
community decisions. The host backends (``vectorized``/``incremental``/
``bincount``/``auto``) are held to the stricter bit-exactness contract
documented in :mod:`repro.core.kernels.incremental`.
"""

from repro.core.kernels.incremental import (
    AutoKernel,
    BincountKernel,
    IncrementalKernel,
    PairCache,
    VectorizedKernel,
    make_kernel,
)
from repro.core.kernels.vectorized import DecideResult, decide_moves

__all__ = [
    "AutoKernel",
    "BincountKernel",
    "DecideResult",
    "IncrementalKernel",
    "PairCache",
    "VectorizedKernel",
    "decide_moves",
    "make_kernel",
]
