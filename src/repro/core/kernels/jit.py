"""Compiled DecideAndMove + delta-update hot path (the ``jit`` backend).

The NumPy backends stream every step through vectorised temporaries; this
module compiles the per-vertex decide loop and the Section 3.5 delta
weight update to native code, writing straight into arena-owned buffers —
the steady-state iteration then performs zero heap allocations (see
:mod:`repro.core.arena`).

Two compile **providers**, probed in order at first use:

* ``numba`` — the optional ``repro[jit]`` extra; the loop functions below
  are compiled with ``numba.njit(cache=True, fastmath=False)``.
* ``cc``    — a bundled C translation of the same loops, compiled once
  with the system C compiler into a cached shared library and called via
  :mod:`ctypes`. No extra dependency beyond a working ``cc``.

A third provider, ``python``, runs the identical loop functions
interpreted — far too slow for real graphs, but it lets the bit-exactness
matrix validate the kernel *semantics* on machines with no compiler at
all (it is never selected automatically).

Bit-exactness contract: the loops replicate the reference backend's
arithmetic exactly — per-``(v, C)`` weights are accumulated sequentially
in adjacency order (the shared summation convention of
:func:`repro.core.kernels.vectorized._aggregate_pairs`), gains are
evaluated with the same operation order Eq. 2 is coded with in
:func:`~repro.core.kernels.vectorized._evaluate_pairs`, ties break toward
the smaller community id, and the movement guards are verbatim. The C
build disables FP contraction (``-ffp-contract=off``) and numba compiles
with ``fastmath=False``, so every provider is IEEE-ordered and the
compiled results are bit-identical to ``vectorized`` — enforced by the
cross-backend matrix tests and by a compile-probe smoke comparison before
a provider is ever trusted.

Provider selection honours ``REPRO_JIT_PROVIDER`` (``auto``/``numba``/
``cc``/``python``/``off``). :func:`get_runtime` probes and memoizes;
:func:`require_runtime` raises the friendly
:class:`~repro.errors.KernelUnavailableError` instead of returning None.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.arena import BufferArena
from repro.core.kernels.vectorized import DecideResult, _trivial_result
from repro.core.state import CommunityState
from repro.errors import KernelUnavailableError

NEG_INF = float("-inf")


# --------------------------------------------------------------------- #
# the loop functions (interpreted / numba-compiled; the C source mirrors
# them statement for statement)
# --------------------------------------------------------------------- #
def _decide_loop(
    active_idx,
    indptr,
    indices,
    weights,
    comm,
    strength,
    comm_strength,
    comm_size,
    gamma,
    m,
    two_m,
    remove_self,
    acc_w,
    acc_stamp,
    acc_comms,
    stamp,
    best_comm,
    best_gain,
    stay_gain,
    move,
):
    """DecideAndMove for ``active_idx``; writes the four output arrays.

    ``acc_w``/``acc_stamp`` form a stamp-versioned per-community
    accumulator (O(1) reset per vertex); ``acc_comms`` lists the
    communities touched by the current vertex in first-encounter order.
    Returns the advanced stamp so the scratch stays valid across calls.
    """
    for i in range(active_idx.shape[0]):
        v = active_idx[i]
        cur = comm[v]
        s_v = strength[v]
        stamp += 1
        k = 0
        for e in range(indptr[v], indptr[v + 1]):
            c = comm[indices[e]]
            w = weights[e]
            if acc_stamp[c] == stamp:
                acc_w[c] += w
            else:
                acc_stamp[c] = stamp
                acc_w[c] = w
                acc_comms[k] = c
                k += 1
        cur_total = comm_strength[cur]
        if remove_self:
            cur_total = cur_total - s_v
        sg = (0.0 - gamma * cur_total * s_v / two_m) / m
        bc = cur
        bg = NEG_INF
        found = False
        for j in range(k):
            c = acc_comms[j]
            tot = comm_strength[c]
            if remove_self and c == cur:
                tot = tot - s_v
            g = (acc_w[c] - gamma * tot * s_v / two_m) / m
            if c == cur:
                sg = g
            elif (not found) or g > bg or (g == bg and c < bc):
                found = True
                bg = g
                bc = c
        if not found:
            bc = cur
            bg = NEG_INF
        mv = found and bg > sg
        if mv and comm_size[cur] == 1 and comm_size[bc] == 1 and bc > cur:
            mv = False
        best_comm[i] = bc
        best_gain[i] = bg
        stay_gain[i] = sg
        move[i] = mv
    return stamp


def _delta_loop(indptr, indices, weights, comm, prev_comm, moved, d_comm, frontier):
    """Section 3.5 delta update over the movers' rows; fills ``frontier``.

    Moved and unmoved vertices receive contributions to disjoint
    ``d_comm`` entries, so fusing the two halves into one mover-major,
    adjacency-ordered pass preserves the reference path's per-element
    summation order exactly.
    """
    n = moved.shape[0]
    for v in range(n):
        if moved[v]:
            d_comm[v] = 0.0
    for u in range(n):
        if not moved[u]:
            continue
        cu = comm[u]
        pu = prev_comm[u]
        for e in range(indptr[u], indptr[u + 1]):
            v = indices[e]
            w = weights[e]
            frontier[v] = True
            cv = comm[v]
            joined = cu == cv
            if joined:
                d_comm[u] += w
            if not moved[v]:
                left = pu == cv
                if joined != left:
                    if joined:
                        d_comm[v] += w
                    else:
                        d_comm[v] -= w


def _aggregates_loop(comm, strength, comm_strength, comm_size):
    """``comm_strength``/``comm_size`` rebuild into caller-owned buffers
    (``np.bincount`` summation order, so bit-identical to the reference)."""
    n = comm.shape[0]
    for c in range(n):
        comm_strength[c] = 0.0
        comm_size[c] = 0
    for v in range(n):
        c = comm[v]
        comm_strength[c] += strength[v]
        comm_size[c] += 1


# --------------------------------------------------------------------- #
# the C translation (provider "cc")
# --------------------------------------------------------------------- #
#: mirrors the loop functions above statement for statement; compiled with
#: -ffp-contract=off so the float arithmetic is IEEE-ordered like NumPy's
_C_SOURCE = r"""
#include <stdint.h>
#include <math.h>

int64_t repro_decide(
    int64_t n_act, const int64_t *active_idx,
    const int64_t *indptr, const int64_t *indices, const double *weights,
    const int64_t *comm, const double *strength,
    const double *comm_strength, const int64_t *comm_size,
    double gamma_, double m, double two_m, int64_t remove_self,
    double *acc_w, int64_t *acc_stamp, int64_t *acc_comms, int64_t stamp,
    int64_t *best_comm, double *best_gain, double *stay_gain, uint8_t *move)
{
    for (int64_t i = 0; i < n_act; i++) {
        int64_t v = active_idx[i];
        int64_t cur = comm[v];
        double s_v = strength[v];
        stamp += 1;
        int64_t k = 0;
        for (int64_t e = indptr[v]; e < indptr[v + 1]; e++) {
            int64_t c = comm[indices[e]];
            double w = weights[e];
            if (acc_stamp[c] == stamp) {
                acc_w[c] += w;
            } else {
                acc_stamp[c] = stamp;
                acc_w[c] = w;
                acc_comms[k++] = c;
            }
        }
        double cur_total = comm_strength[cur];
        if (remove_self) cur_total = cur_total - s_v;
        double sg = (0.0 - gamma_ * cur_total * s_v / two_m) / m;
        int64_t bc = cur;
        double bg = -INFINITY;
        int found = 0;
        for (int64_t j = 0; j < k; j++) {
            int64_t c = acc_comms[j];
            double tot = comm_strength[c];
            if (remove_self && c == cur) tot = tot - s_v;
            double g = (acc_w[c] - gamma_ * tot * s_v / two_m) / m;
            if (c == cur) {
                sg = g;
            } else if (!found || g > bg || (g == bg && c < bc)) {
                found = 1;
                bg = g;
                bc = c;
            }
        }
        if (!found) { bc = cur; bg = -INFINITY; }
        int mv = found && bg > sg;
        if (mv && comm_size[cur] == 1 && comm_size[bc] == 1 && bc > cur)
            mv = 0;
        best_comm[i] = bc;
        best_gain[i] = bg;
        stay_gain[i] = sg;
        move[i] = (uint8_t) mv;
    }
    return stamp;
}

void repro_delta(
    int64_t n,
    const int64_t *indptr, const int64_t *indices, const double *weights,
    const int64_t *comm, const int64_t *prev_comm, const uint8_t *moved,
    double *d_comm, uint8_t *frontier)
{
    for (int64_t v = 0; v < n; v++)
        if (moved[v]) d_comm[v] = 0.0;
    for (int64_t u = 0; u < n; u++) {
        if (!moved[u]) continue;
        int64_t cu = comm[u];
        int64_t pu = prev_comm[u];
        for (int64_t e = indptr[u]; e < indptr[u + 1]; e++) {
            int64_t v = indices[e];
            double w = weights[e];
            frontier[v] = 1;
            int64_t cv = comm[v];
            int joined = (cu == cv);
            if (joined) d_comm[u] += w;
            if (!moved[v]) {
                int left = (pu == cv);
                if (joined != left) {
                    if (joined) d_comm[v] += w;
                    else d_comm[v] -= w;
                }
            }
        }
    }
}

void repro_aggregates(
    int64_t n, const int64_t *comm, const double *strength,
    double *comm_strength, int64_t *comm_size)
{
    for (int64_t c = 0; c < n; c++) {
        comm_strength[c] = 0.0;
        comm_size[c] = 0;
    }
    for (int64_t v = 0; v < n; v++) {
        int64_t c = comm[v];
        comm_strength[c] += strength[v];
        comm_size[c] += 1;
    }
}
"""

_CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off"]


def _cache_dir() -> str:
    return os.environ.get(
        "REPRO_JIT_CACHE",
        os.path.join(os.path.expanduser("~"), ".cache", "repro-jit"),
    )


def _compile_c_library() -> ctypes.CDLL:
    """Compile (or reuse) the cached shared library for provider ``cc``."""
    cc = os.environ.get("CC", "cc")
    tag = hashlib.sha256(
        (_C_SOURCE + " ".join(_CFLAGS) + cc).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = os.path.join(cache, f"reprojit_{tag}.so")
    if not os.path.exists(lib_path):
        os.makedirs(cache, exist_ok=True)
        src_path = os.path.join(cache, f"reprojit_{tag}.c")
        with open(src_path, "w") as fh:
            fh.write(_C_SOURCE)
        # build to a temp name + atomic rename so concurrent processes
        # never load a half-written library
        fd, tmp = tempfile.mkstemp(dir=cache, suffix=".so")
        os.close(fd)
        try:
            subprocess.run(
                [cc, *_CFLAGS, "-o", tmp, src_path],
                check=True,
                capture_output=True,
            )
            os.replace(tmp, lib_path)
        finally:
            if os.path.exists(tmp):  # compile failed before the rename
                os.unlink(tmp)
    lib = ctypes.CDLL(lib_path)

    ndp = np.ctypeslib.ndpointer
    i64 = dict(dtype=np.int64, ndim=1, flags="C_CONTIGUOUS")
    f64 = dict(dtype=np.float64, ndim=1, flags="C_CONTIGUOUS")
    b8 = dict(dtype=np.bool_, ndim=1, flags="C_CONTIGUOUS")
    c_i64 = ctypes.c_int64
    c_f64 = ctypes.c_double

    lib.repro_decide.restype = c_i64
    lib.repro_decide.argtypes = [
        c_i64, ndp(**i64),                       # n_act, active_idx
        ndp(**i64), ndp(**i64), ndp(**f64),      # indptr, indices, weights
        ndp(**i64), ndp(**f64),                  # comm, strength
        ndp(**f64), ndp(**i64),                  # comm_strength, comm_size
        c_f64, c_f64, c_f64, c_i64,              # gamma, m, two_m, remove_self
        ndp(**f64), ndp(**i64), ndp(**i64), c_i64,  # acc_w/stamp/comms, stamp
        ndp(**i64), ndp(**f64), ndp(**f64), ndp(**b8),  # outputs
    ]
    lib.repro_delta.restype = None
    lib.repro_delta.argtypes = [
        c_i64,
        ndp(**i64), ndp(**i64), ndp(**f64),
        ndp(**i64), ndp(**i64), ndp(**b8),
        ndp(**f64), ndp(**b8),
    ]
    lib.repro_aggregates.restype = None
    lib.repro_aggregates.argtypes = [
        c_i64, ndp(**i64), ndp(**f64), ndp(**f64), ndp(**i64)
    ]
    return lib


# --------------------------------------------------------------------- #
# runtimes
# --------------------------------------------------------------------- #
@dataclass
class JitRuntime:
    """One compiled (or interpreted) implementation of the three loops.

    ``decide``/``delta``/``aggregates`` share the loop functions' NumPy
    signatures regardless of provider; ``compile_s`` is the one-off
    compile/warm-up cost the probe measured (0.0 for cache hits and the
    interpreted provider) — surfaced in traces and manifests.
    """

    provider: str
    compile_s: float
    decide: Callable
    delta: Callable
    aggregates: Callable


def _python_runtime() -> JitRuntime:
    return JitRuntime(
        provider="python",
        compile_s=0.0,
        decide=_decide_loop,
        delta=_delta_loop,
        aggregates=_aggregates_loop,
    )


def _numba_runtime() -> JitRuntime:
    import numba  # raises ImportError when the [jit] extra is absent

    opts = dict(cache=True, fastmath=False, nogil=True)
    return JitRuntime(
        provider="numba",
        compile_s=0.0,  # probe fills in the measured warm-up time
        decide=numba.njit(**opts)(_decide_loop),
        delta=numba.njit(**opts)(_delta_loop),
        aggregates=numba.njit(**opts)(_aggregates_loop),
    )


def _cc_runtime() -> JitRuntime:
    lib = _compile_c_library()

    def decide(active_idx, indptr, indices, weights, comm, strength,
               comm_strength, comm_size, gamma, m, two_m, remove_self,
               acc_w, acc_stamp, acc_comms, stamp,
               best_comm, best_gain, stay_gain, move):
        return lib.repro_decide(
            len(active_idx), active_idx, indptr, indices, weights,
            comm, strength, comm_strength, comm_size,
            gamma, m, two_m, remove_self,
            acc_w, acc_stamp, acc_comms, stamp,
            best_comm, best_gain, stay_gain, move,
        )

    def delta(indptr, indices, weights, comm, prev_comm, moved, d_comm,
              frontier):
        lib.repro_delta(
            len(moved), indptr, indices, weights, comm, prev_comm, moved,
            d_comm, frontier,
        )

    def aggregates(comm, strength, comm_strength, comm_size):
        lib.repro_aggregates(len(comm), comm, strength, comm_strength,
                             comm_size)

    return JitRuntime(
        provider="cc", compile_s=0.0, decide=decide, delta=delta,
        aggregates=aggregates,
    )


# --------------------------------------------------------------------- #
# compile probe
# --------------------------------------------------------------------- #
def _smoke_fixture():
    """A 4-vertex weighted fixture exercising every decide branch: an own
    -community pair, a tie, a singleton pair, and an isolated vertex."""
    indptr = np.array([0, 2, 4, 6, 6], dtype=np.int64)
    indices = np.array([1, 2, 0, 2, 0, 1], dtype=np.int64)
    weights = np.array([1.0, 2.0, 1.0, 3.0, 2.0, 3.0])
    comm = np.array([0, 1, 1, 3], dtype=np.int64)
    strength = np.array([3.0, 4.0, 5.0, 0.0])
    comm_strength = np.array([3.0, 9.0, 0.0, 0.0])
    comm_size = np.array([1, 2, 0, 1], dtype=np.int64)
    return indptr, indices, weights, comm, strength, comm_strength, comm_size


def _smoke_compare(rt: JitRuntime) -> None:
    """Run the candidate runtime against the interpreted reference on the
    smoke fixture; raises on any bit difference (a provider producing
    different floats must never be selected)."""
    ref = _python_runtime()
    indptr, indices, weights, comm, strength, cs, csize = _smoke_fixture()
    n = len(comm)
    active = np.arange(n, dtype=np.int64)
    outs = {}
    for name, r in (("ref", ref), ("cand", rt)):
        acc_w = np.zeros(n)
        acc_stamp = np.zeros(n, dtype=np.int64)
        acc_comms = np.zeros(n, dtype=np.int64)
        bc = np.zeros(n, dtype=np.int64)
        bg = np.zeros(n)
        sg = np.zeros(n)
        mv = np.zeros(n, dtype=np.bool_)
        for remove_self in (1, 0):
            r.decide(active, indptr, indices, weights, comm, strength,
                     cs, csize, 1.0, 3.0, 6.0, remove_self,
                     acc_w, acc_stamp, acc_comms, 0, bc, bg, sg, mv)
        d_comm = np.zeros(n)
        frontier = np.zeros(n, dtype=np.bool_)
        moved = np.array([True, False, False, False])
        prev = np.array([2, 1, 1, 3], dtype=np.int64)
        r.delta(indptr, indices, weights, comm, prev, moved, d_comm, frontier)
        agg_s = np.zeros(n)
        agg_n = np.zeros(n, dtype=np.int64)
        r.aggregates(comm, strength, agg_s, agg_n)
        outs[name] = (bc.copy(), bg.copy(), sg.copy(), mv.copy(),
                      d_comm.copy(), frontier.copy(), agg_s.copy(),
                      agg_n.copy())
    for a, b in zip(outs["ref"], outs["cand"]):
        if not np.array_equal(a, b):
            raise RuntimeError(
                f"jit provider {rt.provider!r} failed the bit-exactness "
                f"smoke probe"
            )


_PROVIDERS = {
    "numba": _numba_runtime,
    "cc": _cc_runtime,
    "python": _python_runtime,
}
_AUTO_ORDER = ("numba", "cc")
_cache: dict = {}


def _reset_runtime_cache() -> None:
    """Forget probed runtimes (test hook — providers re-probe on next use)."""
    _cache.clear()


def _probe(provider: str) -> Optional[JitRuntime]:
    """Build + smoke-check one provider; None when it cannot run here."""
    if provider in _cache:
        return _cache[provider]
    rt: Optional[JitRuntime] = None
    t0 = time.perf_counter()
    try:
        rt = _PROVIDERS[provider]()
        _smoke_compare(rt)  # also forces numba's lazy compile
    except Exception:
        rt = None
    if rt is not None:
        rt.compile_s = time.perf_counter() - t0
    _cache[provider] = rt
    return rt


def get_runtime(provider: Optional[str] = None) -> Optional[JitRuntime]:
    """The memoized jit runtime, or None when no provider works.

    ``provider`` defaults to ``REPRO_JIT_PROVIDER`` (then ``"auto"``).
    ``"auto"`` tries ``numba`` then ``cc`` and never returns the
    interpreted provider; ``"off"``/``"none"`` disables the backend.
    Every selected runtime has passed the warm-up compile probe — a full
    bit-exactness smoke comparison against the interpreted reference —
    which is what licenses the ``auto`` dispatcher to route through it.
    """
    if provider is None:
        provider = os.environ.get("REPRO_JIT_PROVIDER", "auto") or "auto"
    provider = provider.lower()
    if provider in ("off", "none"):
        return None
    if provider == "auto":
        for name in _AUTO_ORDER:
            rt = _probe(name)
            if rt is not None:
                return rt
        return None
    if provider not in _PROVIDERS:
        raise ValueError(
            f"unknown jit provider {provider!r}; expected one of "
            f"{sorted(_PROVIDERS)} or 'auto'/'off'"
        )
    return _probe(provider)


def require_runtime(provider: Optional[str] = None) -> JitRuntime:
    """Like :func:`get_runtime` but raises the friendly install error."""
    rt = get_runtime(provider)
    if rt is None:
        raise KernelUnavailableError(
            "the 'jit' kernel backend has no working compile provider on "
            "this machine: numba is not installed and no system C compiler "
            "was found (or the probe failed). Install the optional extra "
            "(pip install 'repro[jit]') or make `cc` available, optionally "
            "pinning a provider with REPRO_JIT_PROVIDER=numba|cc. The "
            "NumPy backends (kernel='auto'/'vectorized'/...) run everywhere "
            "and produce bit-identical results."
        )
    return rt


# --------------------------------------------------------------------- #
# the kernel backend
# --------------------------------------------------------------------- #
class JitKernel:
    """Compiled DecideAndMove behind the host kernel-backend protocol.

    Scratch (the stamp-versioned per-community accumulator) and the
    DecideResult output arrays live in the bound :class:`BufferArena`, so
    steady-state calls allocate nothing. The returned
    :class:`DecideResult` views those buffers and is valid until the next
    call — the engine consumes it immediately; callers that keep results
    across calls must copy.
    """

    name = "jit"

    def __init__(
        self,
        provider: Optional[str] = None,
        runtime: Optional[JitRuntime] = None,
        arena: Optional[BufferArena] = None,
    ):
        self.runtime = runtime if runtime is not None else require_runtime(provider)
        self.arena = arena if arena is not None else BufferArena("jit")
        self.last_backend: Optional[str] = None
        self.last_aggregated_edges: int = 0
        self.compile_s = self.runtime.compile_s
        self._timers = None
        self._n = -1
        self._stamp = 0

    # backend-protocol plumbing (duck-typed, like the NumPy backends)
    def bind_timers(self, timers) -> None:
        self._timers = timers

    def bind_arena(self, arena: BufferArena) -> None:
        self.arena = arena
        self._n = -1

    def reset(self, state: CommunityState) -> None:
        self._n = -1

    def notify_moves(self, state, prev_comm, moved, frontier=None) -> None:
        """Stateless across sweeps — nothing to invalidate."""

    def _prepare_scratch(self, graph) -> None:
        n = graph.n
        a = self.arena
        self._acc_w = a.request(("jit", "acc_w"), n, np.float64)
        self._acc_stamp = a.zeros(("jit", "acc_stamp"), n, np.int64)
        max_deg = int(graph.degrees.max()) if n else 0
        self._acc_comms = a.request(("jit", "acc_comms"), max(max_deg, 1),
                                    np.int64)
        self._stamp = 0
        self._n = n

    def __call__(
        self,
        state: CommunityState,
        active_idx: np.ndarray,
        remove_self: bool = True,
    ) -> DecideResult:
        g = state.graph
        active_idx = np.asarray(active_idx, dtype=np.int64)
        self.last_backend = self.name
        n_act = len(active_idx)
        if g.total_weight == 0.0 or n_act == 0:
            self.last_aggregated_edges = 0
            return _trivial_result(state, active_idx, np.zeros(n_act))
        if self._n != g.n:
            self._prepare_scratch(g)
        self.last_aggregated_edges = int(g.degrees[active_idx].sum())

        a = self.arena
        best_comm = a.request(("jit", "best_comm"), n_act, np.int64)
        best_gain = a.request(("jit", "best_gain"), n_act, np.float64)
        stay_gain = a.request(("jit", "stay_gain"), n_act, np.float64)
        move = a.request(("jit", "move"), n_act, np.bool_)

        self._stamp = self.runtime.decide(
            np.ascontiguousarray(active_idx),
            g.indptr, g.indices, g.weights,
            state.comm, g.strength,
            np.ascontiguousarray(state.comm_strength, dtype=np.float64),
            np.ascontiguousarray(state.comm_size, dtype=np.int64),
            float(state.resolution), float(g.total_weight), float(g.two_m),
            1 if remove_self else 0,
            self._acc_w, self._acc_stamp, self._acc_comms, self._stamp,
            best_comm, best_gain, stay_gain, move,
        )
        return DecideResult(
            active_idx=active_idx,
            best_comm=best_comm,
            best_gain=best_gain,
            stay_gain=stay_gain,
            move=move,
        )
