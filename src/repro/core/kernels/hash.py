"""Block-level hash-based DecideAndMove kernel (paper Algorithm 3).

One thread block handles one large-degree vertex. Threads stream the
adjacency row in block-sized strides; each thread find-or-inserts its
neighbour's community into the per-block hashtable (atomicCAS to claim a
bucket, atomicAdd to accumulate ``d_C(v)``), loading ``D_V(C)`` on first
insert. A final reduction over the table entries elects the best community.

The hashtable design is pluggable (``global`` / ``unified`` /
``hierarchical`` — Section 4.2); the cost difference between them is the
whole point of Figure 9(b), and the shared-memory maintenance/access rates
they report drive Figure 4.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels.vectorized import DecideResult, _apply_guards
from repro.core.state import CommunityState
from repro.gpusim.costmodel import MemoryKind, shared_bank_conflict_factor
from repro.gpusim.device import Device
from repro.gpusim.hashtable import make_table
from repro.gpusim.hashtable.base import SimHashTable


def _next_pow2(x: int) -> int:
    return 1 << max(int(x) - 1, 0).bit_length()


class HashKernel:
    """Callable kernel backend using a per-block simulated hashtable."""

    name = "hash"

    def __init__(
        self,
        device: Device | None = None,
        table_kind: str = "hierarchical",
        shared_buckets: int = 1024,
        block_size: int = 128,
        load_factor: float = 0.5,
        fixed_global_buckets: int | None = None,
    ):
        """``fixed_global_buckets`` preallocates the global region at a
        fixed size (e.g. sized for the graph's maximum degree, as a real
        implementation must when blocks are assigned to vertices
        dynamically) instead of per-vertex sizing. This is what makes the
        unified design's shared fraction ``s/(s+g)`` small on skewed
        graphs — the effect Figure 4 measures."""
        self.device = device or Device()
        self.device.config.validate_block(block_size)
        self.table_kind = table_kind
        self.shared_buckets = min(
            shared_buckets, self.device.config.max_shared_buckets()
        )
        self.block_size = block_size
        self.load_factor = load_factor
        self.fixed_global_buckets = fixed_global_buckets
        #: per-iteration Figure 4 statistics appended by flush_rates()
        self.rate_log: list[dict] = []
        self._iter_maintained = [0, 0]  # [shared, total]
        self._iter_accessed = [0, 0]

    # ------------------------------------------------------------------ #
    def _make_table(self, degree: int) -> SimHashTable:
        if self.fixed_global_buckets is not None:
            global_buckets = max(
                self.fixed_global_buckets,
                _next_pow2(max(int(degree / self.load_factor), 4)),
            )
        else:
            global_buckets = _next_pow2(max(int(degree / self.load_factor), 4))
        return make_table(
            self.table_kind, self.device, self.shared_buckets, global_buckets
        )

    def decide_vertex(
        self, state: CommunityState, v: int, remove_self: bool
    ) -> tuple[int, float, float]:
        """One vertex on one block; returns (best_comm, best_gain, stay_gain)."""
        g = state.graph
        cost = self.device.config.cost
        prof = self.device.profiler
        lo, hi = g.indptr[v], g.indptr[v + 1]
        deg = hi - lo
        cur = int(state.comm[v])
        strength_v = float(g.strength[v])
        m = g.total_weight
        two_m = g.two_m
        gamma = state.resolution
        cur_total = float(state.comm_strength[cur])
        if remove_self:
            cur_total -= strength_v
        stay_gain = (0.0 - gamma * cur_total * strength_v / two_m) / m
        if deg == 0 or m == 0.0:
            return cur, -np.inf, stay_gain

        table = self._make_table(deg)
        nbrs = g.indices[lo:hi]
        ws = g.weights[lo:hi]
        comms = state.comm[nbrs]

        # Strided streaming (Algorithm 3 line 4): each chunk is one
        # simultaneous block step.
        for start in range(0, deg, self.block_size):
            chunk = slice(start, min(start + self.block_size, deg))
            n_chunk = chunk.stop - chunk.start
            # coalesced row loads (indices + weights), scattered C[u] loads
            prof.charge(
                "decide_load",
                cost.access(MemoryKind.GLOBAL, n_chunk, coalesced=True) * 2,
            )
            prof.charge("decide_load", cost.access(MemoryKind.GLOBAL, n_chunk))
            # Bank conflicts: the chunk's lanes hit their shared-memory
            # buckets simultaneously; distinct addresses in one bank
            # serialise (same-address lanes broadcast). Charged once per
            # warp-step of the chunk.
            if table.s > 0:
                from repro.gpusim.hashtable.base import hash0

                warp_size = self.device.config.warp_size
                shared_addr = np.array(
                    [hash0(int(c), table.s) for c in comms[chunk]],
                    dtype=np.int64,
                )
                for w_start in range(0, n_chunk, warp_size):
                    factor = shared_bank_conflict_factor(
                        shared_addr[w_start:w_start + warp_size]
                    )
                    if factor > 1:
                        prof.charge(
                            "bank_conflicts",
                            cost.access(MemoryKind.SHARED, factor - 1),
                        )
                        prof.count("bank_conflict_steps")
            before = table.num_entries
            for c, wgt in zip(comms[chunk], ws[chunk]):
                table.accumulate(int(c), float(wgt))
            # D_V(C) loaded once per fresh insert (line 9)
            fresh = table.num_entries - before
            if fresh:
                prof.charge("decide_load", cost.access(MemoryKind.GLOBAL, fresh))

        # Gain evaluation over the table entries (lines 11-14): one value
        # read per entry from wherever it resides.
        keys, sums = table.items()
        prof.charge(
            "decide_alu", cost.alu(len(keys) * 4)
        )
        prof.charge(
            "hashtable",
            cost.access(MemoryKind.SHARED, table.maintained_shared)
            + cost.access(MemoryKind.GLOBAL, table.maintained_global),
        )
        totals = state.comm_strength[keys]
        is_own = keys == cur
        eff_totals = np.where(is_own & remove_self, totals - strength_v, totals)
        gains = (sums - gamma * eff_totals * strength_v / two_m) / m

        own = np.flatnonzero(is_own)
        if len(own):
            stay_gain = float(gains[own[0]])
        cand = np.where(is_own, -np.inf, gains)
        best = float(cand.max())
        if not np.isfinite(best):
            self._log_table(table)
            return cur, -np.inf, stay_gain
        best_comm = int(keys[cand == best].min())
        self._log_table(table)
        return best_comm, best, stay_gain

    # ------------------------------------------------------------------ #
    def _log_table(self, table: SimHashTable) -> None:
        self._iter_maintained[0] += table.maintained_shared
        self._iter_maintained[1] += table.num_entries
        self._iter_accessed[0] += table.accesses_shared
        self._iter_accessed[1] += table.accesses_shared + table.accesses_global

    def flush_rates(self) -> dict:
        """Pop the maintenance/access rates accumulated since last flush
        (one call per iteration gives the Figure 4 series)."""
        ms, mt = self._iter_maintained
        as_, at = self._iter_accessed
        entry = {
            "maintenance_rate": ms / mt if mt else 0.0,
            "access_rate": as_ / at if at else 0.0,
        }
        self.rate_log.append(entry)
        self._iter_maintained = [0, 0]
        self._iter_accessed = [0, 0]
        return entry

    # ------------------------------------------------------------------ #
    def __call__(
        self, state: CommunityState, active_idx: np.ndarray, remove_self: bool = True
    ) -> DecideResult:
        active_idx = np.asarray(active_idx, dtype=np.int64)
        n_act = len(active_idx)
        best_comm = np.empty(n_act, dtype=np.int64)
        best_gain = np.empty(n_act, dtype=np.float64)
        stay_gain = np.empty(n_act, dtype=np.float64)
        for i, v in enumerate(active_idx):
            bc, bg, sg = self.decide_vertex(state, int(v), remove_self)
            best_comm[i], best_gain[i], stay_gain[i] = bc, bg, sg
        self.device.profiler.count("hash_vertices", n_act)
        valid = np.isfinite(best_gain)
        best_comm = np.where(valid, best_comm, state.comm[active_idx])
        move = _apply_guards(state, active_idx, best_comm, best_gain, stay_gain, valid)
        return DecideResult(
            active_idx=active_idx,
            best_comm=best_comm,
            best_gain=best_gain,
            stay_gain=stay_gain,
            move=move,
        )
