"""Block-level hash-based DecideAndMove kernel (paper Algorithm 3).

One thread block handles one large-degree vertex. Threads stream the
adjacency row in block-sized strides; each thread find-or-inserts its
neighbour's community into the per-block hashtable (atomicCAS to claim a
bucket, atomicAdd to accumulate ``d_C(v)``), loading ``D_V(C)`` on first
insert. A final reduction over the table entries elects the best community.

The hashtable design is pluggable (``global`` / ``unified`` /
``hierarchical`` — Section 4.2); the cost difference between them is the
whole point of Figure 9(b), and the shared-memory maintenance/access rates
they report drive Figure 4.

Two engines execute the same semantics:

* ``"batched"`` (default) — all active vertices of one launch are grouped
  by table geometry and decided through
  :class:`~repro.gpusim.hashtable.batched.BatchedTables`, which replays
  every per-vertex table's find-or-insert protocol in vectorised probe
  rounds. Bucket layouts, probe/conflict counts, Figure 4 rates and every
  profiler counter are bit-exact with the scalar engine (tested).
* ``"scalar"`` — the original one-block-at-a-time reference interpreter.

The only intended divergence: on an edgeless graph (``m == 0``) the
batched engine returns the canonical nobody-moves result (matching
``decide_moves``) where the scalar loop would divide by zero.
"""

from __future__ import annotations

import numpy as np

from repro import analysis
from repro.core.kernels.vectorized import (
    DecideResult,
    _apply_guards,
    _trivial_result,
)
from repro.core.state import CommunityState
from repro.gpusim import resolve_engine
from repro.gpusim.costmodel import MemoryKind, shared_bank_conflict_factor
from repro.gpusim.device import Device
from repro.gpusim.hashtable import make_table
from repro.gpusim.hashtable.base import SimHashTable, hash0_vec
from repro.gpusim.hashtable.batched import BatchedTables
from repro.obs import _session as obs

_INT64_MAX = np.iinfo(np.int64).max
_BANKS = 32  # shared_bank_conflict_factor's default bank count


def _next_pow2(x: int) -> int:
    return 1 << max(int(x) - 1, 0).bit_length()


class HashKernel:
    """Callable kernel backend using a per-block simulated hashtable."""

    name = "hash"

    def __init__(
        self,
        device: Device | None = None,
        table_kind: str = "hierarchical",
        shared_buckets: int = 1024,
        block_size: int = 128,
        load_factor: float = 0.5,
        fixed_global_buckets: int | None = None,
        engine: str | None = None,
    ):
        """``fixed_global_buckets`` preallocates the global region at a
        fixed size (e.g. sized for the graph's maximum degree, as a real
        implementation must when blocks are assigned to vertices
        dynamically) instead of per-vertex sizing. This is what makes the
        unified design's shared fraction ``s/(s+g)`` small on skewed
        graphs — the effect Figure 4 measures."""
        self.device = device or Device()
        self.device.config.validate_block(block_size)
        self.table_kind = table_kind
        self.shared_buckets = min(
            shared_buckets, self.device.config.max_shared_buckets()
        )
        self.block_size = block_size
        self.load_factor = load_factor
        self.fixed_global_buckets = fixed_global_buckets
        self.engine = resolve_engine(engine)
        #: per-iteration Figure 4 statistics appended by flush_rates()
        self.rate_log: list[dict] = []
        self._iter_maintained = [0, 0]  # [shared, total]
        self._iter_accessed = [0, 0]

    # ------------------------------------------------------------------ #
    def _global_buckets_for(self, degree: int) -> int:
        sized = _next_pow2(max(int(degree / self.load_factor), 4))
        if self.fixed_global_buckets is not None:
            return max(self.fixed_global_buckets, sized)
        return sized

    def _make_table(self, degree: int) -> SimHashTable:
        return make_table(
            self.table_kind,
            self.device,
            self.shared_buckets,
            self._global_buckets_for(degree),
        )

    def _block_sync(self, san) -> None:
        """Simulated ``__syncthreads()`` between the accumulate phase and
        the gain-evaluation reads.

        Closes the racecheck epoch (the accumulate phase's atomics become
        ordered before the reads) and checks full-block barrier
        participation. This is the seam the mutation tests no-op to prove
        a skipped barrier is flagged: without the epoch flush, the gain
        phase's plain reads land in the same epoch as the atomic writes —
        a read-write hazard.
        """
        if san is None:
            return
        if san.config.racecheck:
            san.race.barrier(kernel=self.name)
        if san.config.synccheck:
            san.sync.barrier(
                np.ones(self.block_size, dtype=bool), kernel=self.name
            )

    def decide_vertex(
        self, state: CommunityState, v: int, remove_self: bool
    ) -> tuple[int, float, float]:
        """One vertex on one block; returns (best_comm, best_gain, stay_gain)."""
        g = state.graph
        cost = self.device.config.cost
        prof = self.device.profiler
        lo, hi = g.indptr[v], g.indptr[v + 1]
        deg = hi - lo
        cur = int(state.comm[v])
        strength_v = float(g.strength[v])
        m = g.total_weight
        two_m = g.two_m
        gamma = state.resolution
        cur_total = float(state.comm_strength[cur])
        if remove_self:
            cur_total -= strength_v
        stay_gain = (0.0 - gamma * cur_total * strength_v / two_m) / m
        if deg == 0 or m == 0.0:
            return cur, -np.inf, stay_gain

        table = self._make_table(deg)
        nbrs = g.indices[lo:hi]
        ws = g.weights[lo:hi]
        comms = state.comm[nbrs]

        # Strided streaming (Algorithm 3 line 4): each chunk is one
        # simultaneous block step.
        for start in range(0, deg, self.block_size):
            chunk = slice(start, min(start + self.block_size, deg))
            n_chunk = chunk.stop - chunk.start
            # coalesced row loads (indices + weights), scattered C[u] loads
            prof.charge(
                "decide_load",
                cost.access(MemoryKind.GLOBAL, n_chunk, coalesced=True) * 2,
            )
            prof.charge("decide_load", cost.access(MemoryKind.GLOBAL, n_chunk))
            # Bank conflicts: the chunk's lanes hit their shared-memory
            # buckets simultaneously; distinct addresses in one bank
            # serialise (same-address lanes broadcast). Charged once per
            # warp-step of the chunk.
            if table.s > 0:
                from repro.gpusim.hashtable.base import hash0

                warp_size = self.device.config.warp_size
                shared_addr = np.array(
                    [hash0(int(c), table.s) for c in comms[chunk]],
                    dtype=np.int64,
                )
                for w_start in range(0, n_chunk, warp_size):
                    factor = shared_bank_conflict_factor(
                        shared_addr[w_start:w_start + warp_size]
                    )
                    if factor > 1:
                        prof.charge(
                            "bank_conflicts",
                            cost.access(MemoryKind.SHARED, factor - 1),
                        )
                        prof.count("bank_conflict_steps")
            before = table.num_entries
            for j, (c, wgt) in enumerate(zip(comms[chunk], ws[chunk])):
                table.san_lane = j  # lane-in-block for sanitizer findings
                table.accumulate(int(c), float(wgt))
            # D_V(C) loaded once per fresh insert (line 9)
            fresh = table.num_entries - before
            if fresh:
                prof.charge("decide_load", cost.access(MemoryKind.GLOBAL, fresh))

        # __syncthreads(): the accumulate atomics must be ordered before
        # the gain-evaluation reads of the table memory.
        san = analysis.current()
        self._block_sync(san)

        # Gain evaluation over the table entries (lines 11-14): one value
        # read per entry from wherever it resides.
        keys, sums = table.items()
        if san is not None and san.config.racecheck:
            san.race.end_launch(kernel=self.name)
        prof.charge(
            "decide_alu", cost.alu(len(keys) * 4)
        )
        prof.charge(
            "hashtable",
            cost.access(MemoryKind.SHARED, table.maintained_shared)
            + cost.access(MemoryKind.GLOBAL, table.maintained_global),
        )
        totals = state.comm_strength[keys]
        is_own = keys == cur
        eff_totals = np.where(is_own & remove_self, totals - strength_v, totals)
        gains = (sums - gamma * eff_totals * strength_v / two_m) / m

        own = np.flatnonzero(is_own)
        if len(own):
            stay_gain = float(gains[own[0]])
        cand = np.where(is_own, -np.inf, gains)
        best = float(cand.max())
        if not np.isfinite(best):
            self._log_table(table)
            return cur, -np.inf, stay_gain
        best_comm = int(keys[cand == best].min())
        self._log_table(table)
        return best_comm, best, stay_gain

    # ------------------------------------------------------------------ #
    def _decide_block_group(
        self,
        state: CommunityState,
        verts: np.ndarray,
        d: np.ndarray,
        cur_sel: np.ndarray,
        sv: np.ndarray,
        global_buckets: int,
        remove_self: bool,
        sel: np.ndarray,
        best_comm: np.ndarray,
        best_gain: np.ndarray,
        stay_gain: np.ndarray,
    ) -> None:
        """Decide one same-geometry group of deg>0 vertices, one simulated
        block (= one table) per vertex."""
        g = state.graph
        cost = self.device.config.cost
        prof = self.device.profiler
        wsz = self.device.config.warp_size
        bs = self.block_size
        m = g.total_weight
        two_m = g.two_m
        gamma = state.resolution
        n = len(verts)

        lo = g.indptr[verts].astype(np.int64)
        total = int(d.sum())
        row_of = np.repeat(np.arange(n, dtype=np.int64), d)
        starts = np.concatenate([[0], np.cumsum(d)]).astype(np.int64)
        pos = np.arange(total, dtype=np.int64) - starts[row_of]
        eidx = lo[row_of] + pos
        comms = state.comm[g.indices[eidx]].astype(np.int64)
        ws = g.weights[eidx].astype(np.float64)

        # Row streaming loads, summed over every vertex's block-sized
        # chunks: coalesced (indices + weights) transactions, then
        # scattered C[u] gathers — identical totals to the scalar chunks.
        full_steps = -(-bs // wsz)  # warp transactions per full chunk
        n_full = d // bs
        rem = d - n_full * bs
        trans = n_full * full_steps + -(-rem // wsz)
        prof.charge(
            "decide_load", cost.access(MemoryKind.GLOBAL, int(trans.sum())) * 2
        )
        prof.charge("decide_load", cost.access(MemoryKind.GLOBAL, total))

        tables = BatchedTables(
            self.table_kind, self.device, self.shared_buckets, global_buckets, n
        )

        # Bank conflicts, vectorised over every warp-step of every chunk:
        # the conflict factor is a pure function of the chunk's shared
        # bucket addresses (independent of table state), so all steps can
        # be judged at once via unique (step, address) -> bank counting.
        if tables.s > 0:
            sub = (pos % bs) // wsz
            max_chunks = int(n_full.max()) + 1
            step = (row_of * max_chunks + pos // bs) * full_steps + sub
            addr = hash0_vec(comms, tables.s)
            uniq = np.unique(step * tables.s + addr)
            step_u = uniq // tables.s
            bank = (uniq - step_u * tables.s) % _BANKS
            uniq2, cnt2 = np.unique(step_u * _BANKS + bank, return_counts=True)
            st2 = uniq2 // _BANKS
            seg_start = np.flatnonzero(
                np.concatenate([[True], st2[1:] != st2[:-1]])
            )
            factor = np.maximum.reduceat(cnt2, seg_start)
            conflicted = factor > 1
            if np.any(conflicted):
                prof.charge(
                    "bank_conflicts",
                    cost.access(MemoryKind.SHARED, int((factor - 1).sum())),
                )
                prof.count("bank_conflict_steps", int(conflicted.sum()))

        # Find-or-insert the whole neighbourhood stream (Algorithm 3
        # lines 6-10); the batched tables replay each vertex's sequential
        # protocol and charge identical probe/atomic totals.
        san = analysis.current()
        runs = tables.accumulate_stream(
            row_of, comms, ws,
            lanes=(pos % bs) if san is not None else None,
        )
        # D_V(C) loaded once per fresh insert (line 9); the tables start
        # empty, so every distinct (vertex, community) run is one insert.
        if len(runs):
            prof.charge(
                "decide_load", cost.access(MemoryKind.GLOBAL, len(runs))
            )

        # __syncthreads() before the gain-phase reads (same seam as the
        # scalar engine — the mutation tests no-op it on both).
        self._block_sync(san)
        if san is not None:
            tables.san_read_entries(san)
            if san.config.racecheck:
                san.race.end_launch(kernel=self.name)

        # Gain evaluation (lines 11-14) over per-table entry runs.
        prof.charge("decide_alu", cost.alu(len(runs) * 4))
        prof.charge(
            "hashtable",
            cost.access(MemoryKind.SHARED, int(tables.maintained_shared.sum()))
            + cost.access(MemoryKind.GLOBAL, int(tables.maintained_global.sum())),
        )
        seg = runs.table  # ascending; every table has >= 1 run (deg > 0)
        keys = runs.key
        totals = state.comm_strength[keys]
        is_own = keys == cur_sel[seg]
        eff_totals = np.where(is_own & remove_self, totals - sv[seg], totals)
        gains = (runs.value - gamma * eff_totals * sv[seg] / two_m) / m

        own = np.flatnonzero(is_own)  # at most one own entry per table
        stay_gain[sel[seg[own]]] = gains[own]

        cand = np.where(is_own, -np.inf, gains)
        offs = np.flatnonzero(np.concatenate([[True], seg[1:] != seg[:-1]]))
        best = np.maximum.reduceat(cand, offs)
        finite = np.isfinite(best)
        bc = np.minimum.reduceat(
            np.where(cand == best[seg], keys, _INT64_MAX), offs
        )
        best_comm[sel[finite]] = bc[finite]
        best_gain[sel[finite]] = best[finite]

        self._iter_maintained[0] += int(tables.maintained_shared.sum())
        self._iter_maintained[1] += int(tables.num_entries.sum())
        self._iter_accessed[0] += int(tables.accesses_shared.sum())
        self._iter_accessed[1] += int(
            (tables.accesses_shared + tables.accesses_global).sum()
        )

    def _call_batched(
        self, state: CommunityState, active_idx: np.ndarray, remove_self: bool
    ) -> DecideResult:
        g = state.graph
        prof = self.device.profiler
        n_act = len(active_idx)
        if g.total_weight == 0.0:
            return _trivial_result(state, active_idx, np.zeros(n_act))
        m = g.total_weight
        two_m = g.two_m
        gamma = state.resolution
        deg = g.degrees[active_idx].astype(np.int64)
        cur = state.comm[active_idx].astype(np.int64)
        strength_v = g.strength[active_idx].astype(np.float64)
        cur_total = state.comm_strength[cur].astype(np.float64)
        if remove_self:
            cur_total = cur_total - strength_v
        stay_gain = (0.0 - gamma * cur_total * strength_v / two_m) / m
        best_comm = cur.copy()
        best_gain = np.full(n_act, -np.inf)

        work = np.flatnonzero(deg > 0)
        if len(work):
            # one simulated table geometry per distinct degree-derived size
            uniq_deg, inv = np.unique(deg[work], return_inverse=True)
            gb = np.array(
                [self._global_buckets_for(int(dv)) for dv in uniq_deg],
                dtype=np.int64,
            )[inv]
            for val in np.unique(gb):
                sub = work[gb == val]
                with obs.span(
                    "kernel/hash_group", vertices=len(sub), global_buckets=int(val)
                ):
                    self._decide_block_group(
                        state,
                        active_idx[sub],
                        deg[sub],
                        cur[sub],
                        strength_v[sub],
                        int(val),
                        remove_self,
                        sub,
                        best_comm,
                        best_gain,
                        stay_gain,
                    )
        prof.count("hash_vertices", n_act)
        valid = np.isfinite(best_gain)
        best_comm = np.where(valid, best_comm, cur)
        move = _apply_guards(state, active_idx, best_comm, best_gain, stay_gain, valid)
        return DecideResult(
            active_idx=active_idx,
            best_comm=best_comm,
            best_gain=best_gain,
            stay_gain=stay_gain,
            move=move,
        )

    # ------------------------------------------------------------------ #
    def _log_table(self, table: SimHashTable) -> None:
        self._iter_maintained[0] += table.maintained_shared
        self._iter_maintained[1] += table.num_entries
        self._iter_accessed[0] += table.accesses_shared
        self._iter_accessed[1] += table.accesses_shared + table.accesses_global

    def flush_rates(self) -> dict:
        """Pop the maintenance/access rates accumulated since last flush
        (one call per iteration gives the Figure 4 series)."""
        ms, mt = self._iter_maintained
        as_, at = self._iter_accessed
        entry = {
            "maintenance_rate": ms / mt if mt else 0.0,
            "access_rate": as_ / at if at else 0.0,
        }
        self.rate_log.append(entry)
        self._iter_maintained = [0, 0]
        self._iter_accessed = [0, 0]
        return entry

    # ------------------------------------------------------------------ #
    def __call__(
        self, state: CommunityState, active_idx: np.ndarray, remove_self: bool = True
    ) -> DecideResult:
        active_idx = np.asarray(active_idx, dtype=np.int64)
        if self.engine == "batched":
            return self._call_batched(state, active_idx, remove_self)
        n_act = len(active_idx)
        best_comm = np.empty(n_act, dtype=np.int64)
        best_gain = np.empty(n_act, dtype=np.float64)
        stay_gain = np.empty(n_act, dtype=np.float64)
        for i, v in enumerate(active_idx):
            bc, bg, sg = self.decide_vertex(state, int(v), remove_self)
            best_comm[i], best_gain[i], stay_gain[i] = bc, bg, sg
        self.device.profiler.count("hash_vertices", n_act)
        valid = np.isfinite(best_gain)
        best_comm = np.where(valid, best_comm, state.comm[active_idx])
        move = _apply_guards(state, active_idx, best_comm, best_gain, stay_gain, valid)
        return DecideResult(
            active_idx=active_idx,
            best_comm=best_comm,
            best_gain=best_gain,
            stay_gain=stay_gain,
            move=move,
        )
