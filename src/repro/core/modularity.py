"""Modularity (paper Eq. 1) and modularity-gain (Eq. 2) computations.

Conventions match :class:`repro.graph.csr.CSRGraph`: ``2|E|`` equals the sum
of weighted degrees, self-loops count twice towards both the degree and the
internal community weight ``D_C(C)``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.utils.arrays import ordered_sum

#: modularity values feed the cross-backend exactness matrix — float
#: reductions here must keep a pinned order (lint rule float-accumulation)
__bitexact__ = True


def community_internal_weights(
    graph: CSRGraph, communities: np.ndarray, minlength: int | None = None
) -> np.ndarray:
    """``D_C(C)`` per community id: internal edge weight, each edge twice.

    ``D_C(C) = sum_{v in C} d_C(v)`` — every intra-community non-loop edge
    contributes its weight from both endpoints, and each self-loop
    contributes ``2 w``.
    """
    communities = np.asarray(communities)
    k = minlength if minlength is not None else int(communities.max()) + 1 if len(communities) else 0
    row = np.repeat(np.arange(graph.n), np.diff(graph.indptr))
    intra = communities[row] == communities[graph.indices]
    internal = np.zeros(k, dtype=np.float64)
    if np.any(intra):
        np.add.at(internal, communities[row[intra]], graph.weights[intra])
    np.add.at(internal, communities, 2.0 * graph.self_weight)
    return internal


def community_total_strengths(
    graph: CSRGraph, communities: np.ndarray, minlength: int | None = None
) -> np.ndarray:
    """``D_V(C)`` per community id: summed weighted degree of members."""
    communities = np.asarray(communities)
    k = minlength if minlength is not None else int(communities.max()) + 1 if len(communities) else 0
    return np.bincount(communities, weights=graph.strength, minlength=k)


def modularity(
    graph: CSRGraph, communities: np.ndarray, resolution: float = 1.0
) -> float:
    """Newman modularity ``Q`` of a community assignment (paper Eq. 1).

    ``Q = sum_C [ D_C(C) / 2|E| - gamma (D_V(C) / 2|E|)^2 ]``.

    ``resolution`` is the Reichardt-Bornholdt / CPM-style ``gamma`` the
    paper's introduction points to for escaping the resolution limit
    ([4, 30]): ``gamma > 1`` favours more, smaller communities;
    ``gamma < 1`` fewer, larger ones; ``gamma = 1`` is Eq. 1 verbatim.
    """
    two_m = graph.two_m
    if two_m == 0.0:
        return 0.0
    internal = community_internal_weights(graph, communities)
    totals = community_total_strengths(graph, communities, minlength=len(internal))
    return ordered_sum(internal / two_m - resolution * (totals / two_m) ** 2)


def modularity_gain(
    graph: CSRGraph,
    d_c_v: float,
    strength_v: float,
    community_strength: float,
) -> float:
    """Gain ``ΔQ_{v→C}`` of placing ``v`` into community ``C`` (Eq. 2).

    Parameters
    ----------
    d_c_v:
        ``d_C(v)`` — weight between ``v`` and the members of ``C``.
    strength_v:
        ``d(v)`` — weighted degree of ``v``.
    community_strength:
        ``D_V(C)`` — total strength of ``C`` **not counting v** (callers
        must subtract ``d(v)`` first when ``v`` is currently a member).
    """
    m = graph.total_weight
    return (d_c_v - community_strength * strength_v / (2.0 * m)) / m


def modularity_gain_matrix(
    graph: CSRGraph,
    communities: np.ndarray,
    remove_self: bool = True,
    resolution: float = 1.0,
):
    """Dense reference: gain of moving each vertex to each *neighbouring*
    community, as a dict ``{v: {community_id: gain}}``.

    Quadratic bookkeeping; intended for unit tests and tiny examples only.
    The vectorised engine must agree with this on every graph (tested).
    """
    comm = np.asarray(communities)
    strength = graph.strength
    totals = community_total_strengths(graph, comm)
    m = graph.total_weight
    out: dict[int, dict[int, float]] = {}
    for v in range(graph.n):
        nbrs = graph.neighbors(v)
        ws = graph.neighbor_weights(v)
        d_by_comm: dict[int, float] = {}
        for u, w in zip(nbrs, ws):
            d_by_comm[int(comm[u])] = d_by_comm.get(int(comm[u]), 0.0) + float(w)
        cv = int(comm[v])
        d_by_comm.setdefault(cv, 0.0)
        gains: dict[int, float] = {}
        for c, d in d_by_comm.items():
            total = totals[c]
            if c == cv and remove_self:
                total = total - strength[v]
            gains[c] = (d - resolution * total * strength[v] / (2.0 * m)) / m
        out[v] = gains
    return out
