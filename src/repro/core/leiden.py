"""Leiden-style refinement (Traag, Waltman & Van Eck 2019 — the paper's
reference [54] and the origin of the RM pruning strategy).

Louvain's known defect is *badly connected communities*: phase 2 can glue
vertex sets together whose induced subgraph is disconnected (or connected
only through a vertex that later moves away). Leiden inserts a
**refinement phase** between local moving and contraction:

1. within each phase-1 community, restart from singletons;
2. merge each still-singleton vertex into a refined subcommunity of its
   phase-1 community, considering only *well-connected* candidates, and
   only merges with non-negative modularity gain;
3. contract the **refined** partition, but seed the next level's local
   moving with the *phase-1* communities (so the coarse level starts from
   the aggregated view of the unrefined partition).

The refinement guarantees every community in the final partition is
internally connected (tested), while matching or exceeding Louvain's
modularity in practice.

This implementation keeps GALA's machinery: the same gain arithmetic
(resolution-aware), the same coarsening, and the MG-pruned engine for the
local-moving phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.modularity import modularity
from repro.core.phase1 import Phase1Config, run_phase1
from repro.graph.coarsen import coarsen_graph
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, as_generator


def refine_partition(
    graph: CSRGraph,
    communities: np.ndarray,
    resolution: float = 1.0,
    seed: SeedLike = 0,
    randomness: float = 0.0,
) -> np.ndarray:
    """One Leiden refinement pass.

    Returns a refined assignment in which every refined community is a
    subset of one input community. With ``randomness > 0``, merge targets
    are sampled among the positive-gain candidates with probability
    proportional to ``exp(gain / randomness)`` (the theta parameter of the
    Leiden paper); with 0 the best candidate is taken deterministically.
    """
    communities = np.asarray(communities, dtype=np.int64)
    rng = as_generator(seed)
    n = graph.n
    m = graph.total_weight
    if m == 0.0:
        return np.arange(n, dtype=np.int64)
    two_m = graph.two_m
    strength = graph.strength

    refined = np.arange(n, dtype=np.int64)
    ref_strength = strength.copy()  # D_V per refined community
    ref_size = np.ones(n, dtype=np.int64)
    comm_strength = np.bincount(communities, weights=strength, minlength=n)

    # Well-connectedness of a vertex within its community C (Leiden):
    # weight from v into C \ {v} must be at least
    # gamma * d(v) * (D_V(C) - d(v)) / 2m.
    row = np.repeat(np.arange(n), np.diff(graph.indptr))
    same_comm = communities[row] == communities[graph.indices]
    d_own = np.zeros(n)
    if same_comm.any():
        np.add.at(d_own, row[same_comm], graph.weights[same_comm])
    threshold = (
        resolution * strength * (comm_strength[communities] - strength) / two_m
    )
    well_connected = d_own >= threshold - 1e-12

    order = rng.permutation(n)
    for v in order:
        if ref_size[refined[v]] != 1 or not well_connected[v]:
            # only still-singleton, well-connected vertices may merge
            continue
        cv = communities[v]
        lo, hi = graph.indptr[v], graph.indptr[v + 1]
        nbrs = graph.indices[lo:hi]
        ws = graph.weights[lo:hi]
        inside = communities[nbrs] == cv
        if not inside.any():
            continue
        # weight from v to each refined subcommunity within cv
        targets: dict[int, float] = {}
        for u, w in zip(nbrs[inside], ws[inside]):
            r = int(refined[u])
            targets[r] = targets.get(r, 0.0) + float(w)
        own = int(refined[v])
        targets.pop(own, None)
        if not targets:
            continue
        sv = strength[v]
        cands: list[tuple[int, float]] = []
        for r, d in targets.items():
            # gain of merging singleton {v} into refined community r
            gain = (d - resolution * ref_strength[r] * sv / two_m) / m
            if gain >= 0.0:
                cands.append((r, gain))
        if not cands:
            continue
        if randomness > 0.0:
            gains = np.array([g for _, g in cands])
            logits = gains / randomness
            probs = np.exp(logits - logits.max())
            probs /= probs.sum()
            choice = int(rng.choice(len(cands), p=probs))
        else:
            # deterministic: best gain, ties toward the smaller target id
            best = max(g for _, g in cands)
            choice = min(
                (i for i, (r, g) in enumerate(cands) if g == best),
                key=lambda i: cands[i][0],
            )
        target, _ = cands[choice]
        ref_strength[target] += ref_strength[own]
        ref_size[target] += ref_size[own]
        ref_strength[own] = 0.0
        ref_size[own] = 0
        refined[v] = target
    return refined


@dataclass
class LeidenResult:
    """Result of the Leiden pipeline."""

    communities: np.ndarray
    modularity: float
    num_levels: int
    #: modularity after each level
    level_modularity: list[float] = field(default_factory=list)


def leiden(
    graph: CSRGraph,
    resolution: float = 1.0,
    theta: float = 1e-6,
    max_rounds: int = 20,
    seed: SeedLike = 0,
    randomness: float = 0.0,
    phase1_config: Phase1Config | None = None,
) -> LeidenResult:
    """Full Leiden: local moving (MG-pruned GALA engine) + refinement +
    contraction on the refined partition."""
    rng = as_generator(seed)
    base_cfg = phase1_config or Phase1Config(pruning="mg", kernel="auto")
    current = graph
    #: current-level seed assignment for local moving (None = singletons)
    seed_comm: np.ndarray | None = None
    #: composition of mappings from the original graph to `current`
    to_current: np.ndarray | None = None
    best_flat = np.arange(graph.n, dtype=np.int64)
    best_q = -np.inf
    level_q: list[float] = []

    for _ in range(max_rounds):
        cfg = Phase1Config(
            pruning=base_cfg.pruning,
            weight_update=base_cfg.weight_update,
            remove_self=base_cfg.remove_self,
            resolution=resolution,
            theta=theta,
            patience=base_cfg.patience,
            max_iterations=base_cfg.max_iterations,
            seed=int(rng.integers(0, 2**31 - 1)),
            kernel=base_cfg.kernel,
        )
        p1 = run_phase1(current, cfg, initial_communities=seed_comm)
        refined = refine_partition(
            current, p1.communities, resolution=resolution,
            seed=rng, randomness=randomness,
        )
        coarse, mapping = coarsen_graph(current, refined)

        # flatten the *local-moving* partition to the original vertices
        flat = p1.communities
        if to_current is not None:
            flat = flat[to_current]
        q = modularity(graph, flat, resolution=resolution)
        level_q.append(q)
        if q > best_q:
            best_q = q
            best_flat = flat

        if coarse.n == current.n or (len(level_q) > 1 and q <= level_q[-2] + theta):
            break
        # seed the coarse level with the phase-1 communities: refined
        # subcommunity r belongs to the phase-1 community of its members
        rep = np.zeros(coarse.n, dtype=np.int64)
        rep[mapping] = p1.communities  # any member's community (consistent)
        # compact the ids into [0, coarse.n) so state arrays stay n-sized
        _, seed_comm = np.unique(rep, return_inverse=True)
        seed_comm = seed_comm.astype(np.int64)
        to_current = mapping if to_current is None else mapping[to_current]
        current = coarse

    # Final step: split any disconnected community into its components —
    # never decreases modularity and makes the connectivity guarantee hold
    # on the *reported* partition, not just per refinement level.
    final = split_disconnected_communities(graph, best_flat)
    final_q = modularity(graph, final, resolution=resolution)
    return LeidenResult(
        communities=final,
        modularity=float(final_q),
        num_levels=len(level_q),
        level_modularity=level_q,
    )


def community_connectivity(graph: CSRGraph, communities: np.ndarray) -> np.ndarray:
    """For each community id, whether its induced subgraph is connected.

    Singleton communities count as connected. The Leiden guarantee tested
    in ``tests/core/test_leiden.py``.
    """
    import scipy.sparse as sp
    from scipy.sparse.csgraph import connected_components as cc

    communities = np.asarray(communities)
    ids = np.unique(communities)
    connected = np.ones(len(ids), dtype=bool)
    row = np.repeat(np.arange(graph.n), np.diff(graph.indptr))
    intra = communities[row] == communities[graph.indices]
    for k, c in enumerate(ids):
        members = np.flatnonzero(communities == c)
        if len(members) <= 1:
            continue
        local = {v: i for i, v in enumerate(members)}
        mask = intra & (communities[row] == c)
        rr = row[mask]
        uu = graph.indices[mask]
        mat = sp.coo_matrix(
            (
                np.ones(len(rr)),
                ([local[v] for v in rr], [local[u] for u in uu]),
            ),
            shape=(len(members), len(members)),
        )
        ncomp, _ = cc(mat, directed=False)
        connected[k] = ncomp == 1
    return connected


def split_disconnected_communities(
    graph: CSRGraph, communities: np.ndarray
) -> np.ndarray:
    """Split every disconnected community into its connected components.

    This never decreases modularity: the internal weight of each part is
    unchanged (there are no edges between components of a community), while
    the null-model penalty ``sum (D_V/2m)^2`` strictly decreases whenever a
    community actually splits. Applied as Leiden's final step, it turns the
    refinement phase's per-level connectivity into a guarantee on the
    *reported* partition.
    """
    import scipy.sparse as sp
    from scipy.sparse.csgraph import connected_components as cc

    communities = np.asarray(communities, dtype=np.int64)
    n = graph.n
    row = np.repeat(np.arange(n), np.diff(graph.indptr))
    intra = communities[row] == communities[graph.indices]
    mat = sp.coo_matrix(
        (np.ones(int(intra.sum())), (row[intra], graph.indices[intra])),
        shape=(n, n),
    )
    # components of the graph restricted to intra-community edges: each
    # component is, by construction, a connected subset of one community
    _, labels = cc(mat, directed=False)
    _, compact = np.unique(labels, return_inverse=True)
    return compact.astype(np.int64)
