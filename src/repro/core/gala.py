"""GALA — the top-level public API of this reproduction.

``gala(graph)`` runs the paper's full system with its defaults: modularity
gain-based pruning (MG), delta community-weight updates, Grappolo's
convergence heuristics, and multi-round hierarchy construction. Feature
flags expose every ablation the paper evaluates (Figure 6: baseline vs
+MG vs +MG+MM), and ``backend="gpusim"`` routes DecideAndMove through the
simulated GPU with workload-aware kernel dispatch (Section 4) so the memory
-management experiments can measure simulated cycles.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Optional, Union

from repro.core.louvain import LouvainResult, louvain
from repro.core.phase1 import Phase1Config, Phase1Result, run_phase1
from repro.graph.csr import CSRGraph


@dataclass
class GalaConfig:
    """Feature flags of the GALA pipeline.

    The defaults are the paper's full system. Turning ``pruning`` to
    ``"none"`` and ``weight_update`` to ``"recompute"`` yields the Figure 6
    baseline; adding MG alone is the middle bar.
    """

    #: pruning strategy (``mg`` = paper default; see repro.core.pruning)
    pruning: str = "mg"
    #: community-weight update scheme (``delta`` = paper Section 3.5)
    weight_update: str = "delta"
    #: DecideAndMove backend: ``"vectorized"`` (pure NumPy) or
    #: ``"gpusim"`` (simulated GPU with workload-aware kernel dispatch)
    backend: str = "vectorized"
    #: host kernel for the vectorized backend: ``"auto"`` (workload-aware
    #: dispatch over the compiled / full / incremental-cache / sort-free
    #: paths, the default — the compiled jit path is used automatically
    #: once its warm-up probe passes), or ``"vectorized"`` /
    #: ``"incremental"`` / ``"bincount"`` / ``"jit"`` to pin one path.
    #: All choices are bit-identical; see
    #: :mod:`repro.core.kernels.incremental` and
    #: :mod:`repro.core.kernels.jit`.
    kernel: str = "auto"
    #: execution engine for the ``"gpusim"`` backend: ``"batched"``
    #: (structure-of-arrays, the default) or ``"scalar"`` (one vertex per
    #: Python iteration — the bit-exact reference). ``None`` defers to the
    #: ``REPRO_GPUSIM_ENGINE`` environment variable.
    gpusim_engine: Optional[str] = None
    #: phase-1 runtime: ``"local"`` (single process, the default) or
    #: ``"multiprocess"`` (one worker process per rank over shared memory;
    #: see :mod:`repro.multiprocess.runtime`). Multiprocess applies to the
    #: first round only — coarsened levels are tiny and run locally. Every
    #: runtime is bit-identical for every rank count.
    runtime: str = "local"
    #: rank count for the ``"multiprocess"`` runtime
    ranks: int = 2
    #: gain convention (True = Grappolo/standard; see DESIGN.md)
    remove_self: bool = True
    #: resolution gamma (1.0 = classic modularity; >1 favours smaller
    #: communities, <1 larger ones)
    resolution: float = 1.0
    #: phase-1 modularity threshold (paper: 1e-6)
    theta: float = 1e-6
    #: consecutive below-theta iterations tolerated (see Phase1Config)
    patience: int = 3
    #: stop multi-round refinement below this per-round improvement
    round_theta: float = 1e-6
    max_iterations: int = 500
    max_rounds: int = 20
    seed: int = 0
    #: only run phase 1 of the first round (the paper's measurement target:
    #: "the first phase in the initial round dominates the overall
    #: computation")
    phase1_only: bool = False
    #: sanitizer mode: ``None`` defers to the ``REPRO_SANITIZE``
    #: environment variable, ``"off"``/``False`` disables, ``"fast"``
    #: enables racecheck/memcheck/synccheck + the CSR audit, ``"strict"``
    #: adds the per-iteration weight-conservation and Lemma-5 audits
    #: (see :mod:`repro.analysis` and docs/sanitizers.md)
    sanitize: Union[str, bool, None] = None

    #: fields that select *how* a run executes, not *what* it computes.
    #: Every backend/kernel/engine combination is bit-identical (the
    #: cross-backend exactness matrix from PRs 1/2/6 pins this), and the
    #: sanitizers observe without perturbing, so two configs differing
    #: only here produce the same assignment — the result cache must
    #: treat them as the same key.
    EXECUTION_FIELDS = frozenset(
        {"backend", "kernel", "gpusim_engine", "sanitize", "runtime", "ranks"}
    )

    #: fields that select *what* a run computes — exactly the fields
    #: serialized by :meth:`cache_key`. Every dataclass field must be
    #: listed here, in :data:`EXECUTION_FIELDS`, or be ``seed`` (keyed
    #: separately by the result cache); the ``config-classification``
    #: lint rule and a runtime guard in :meth:`cache_key` both enforce
    #: the classification, so a new field cannot silently leak into (or
    #: stay out of) cache keys without a deliberate decision.
    SEMANTIC_FIELDS = frozenset(
        {
            "pruning",
            "weight_update",
            "remove_self",
            "resolution",
            "theta",
            "patience",
            "round_theta",
            "max_iterations",
            "max_rounds",
            "phase1_only",
        }
    )

    def cache_key(self) -> str:
        """Canonical serialization of the *semantic* configuration.

        The key is a JSON object with sorted field names and every
        default expanded, covering exactly the fields that can change the
        detection result: two ``GalaConfig`` instances produce the same
        key iff a deterministic run must produce the same assignment on
        the same graph and seed. ``seed`` is excluded — the serving
        layer's result cache keys on ``(fingerprint, cache_key, seed)``
        so a seed sweep reads as one config — and so are the
        execution-only fields (:data:`EXECUTION_FIELDS`), which select a
        backend but not an answer.

        Round-trips through :meth:`from_cache_key`.
        """
        unclassified = {
            f.name
            for f in dataclasses.fields(self)
            if f.name not in self.SEMANTIC_FIELDS
            and f.name not in self.EXECUTION_FIELDS
            and f.name != "seed"
        }
        if unclassified:
            raise TypeError(
                "GalaConfig fields missing a cache-key classification "
                f"(add to SEMANTIC_FIELDS or EXECUTION_FIELDS): "
                f"{sorted(unclassified)}"
            )
        fields = {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name not in self.EXECUTION_FIELDS and f.name != "seed"
        }
        return json.dumps(fields, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_cache_key(cls, key: str) -> "GalaConfig":
        """Rebuild a config from :meth:`cache_key` output.

        Execution-only fields and ``seed`` come back at their defaults
        (the key deliberately does not carry them); everything semantic
        round-trips exactly: ``GalaConfig.from_cache_key(c.cache_key())
        .cache_key() == c.cache_key()`` for any ``c``.
        """
        fields = json.loads(key)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(fields) - known
        if unknown:
            raise ValueError(f"cache key carries unknown fields: {sorted(unknown)}")
        return cls(**fields)

    def phase1_config(self) -> Phase1Config:
        kernel: Union[str, object] = self.kernel
        if self.backend == "gpusim":
            from repro.core.kernels.dispatch import make_gpusim_kernel

            kernel = make_gpusim_kernel(engine=self.gpusim_engine)
        elif self.backend != "vectorized":
            raise ValueError(
                f"unknown backend {self.backend!r}; expected 'vectorized' or 'gpusim'"
            )
        return Phase1Config(
            pruning=self.pruning,
            weight_update=self.weight_update,
            remove_self=self.remove_self,
            resolution=self.resolution,
            theta=self.theta,
            patience=self.patience,
            max_iterations=self.max_iterations,
            seed=self.seed,
            kernel=kernel,
        )


def gala(
    graph: CSRGraph,
    config: GalaConfig | None = None,
) -> Union[LouvainResult, Phase1Result]:
    """Detect communities in ``graph`` with GALA.

    Returns a :class:`~repro.core.louvain.LouvainResult` (or a
    :class:`~repro.core.phase1.Phase1Result` when ``config.phase1_only``).

    Example
    -------
    >>> from repro.graph.generators import ring_of_cliques
    >>> from repro.core import gala
    >>> result = gala(ring_of_cliques(8, 6))
    >>> result.num_communities
    8
    """
    cfg = config or GalaConfig()
    from repro import analysis

    # Sanitizer activation: config wins, then REPRO_SANITIZE. An already
    # active session (a caller's ``analysis.sanitized(...)`` block) is
    # reused so its log accumulates across runs.
    san = analysis.current()
    mode = analysis.resolve_sanitize(cfg.sanitize)
    if mode is not None and san is None:
        with analysis.sanitized(mode) as own:
            return _run_gala(graph, cfg, own)
    return _run_gala(graph, cfg, san)


def _multiprocess_runner(cfg: GalaConfig):
    """Phase-1 runner routing round 0 through the multiprocess runtime.

    Only the first round sees the original (large) graph; coarsened levels
    are orders of magnitude smaller, where worker startup would dominate,
    so they stay on the local path. Both paths are bit-identical.
    """
    from repro.core.phase1 import run_phase1 as run_local
    from repro.multiprocess import MultiprocessConfig, run_multiprocess_phase1

    mp_cfg = MultiprocessConfig(
        num_ranks=cfg.ranks,
        pruning=cfg.pruning,
        weight_update=cfg.weight_update,
        remove_self=cfg.remove_self,
        resolution=cfg.resolution,
        theta=cfg.theta,
        patience=cfg.patience,
        max_iterations=cfg.max_iterations,
        seed=cfg.seed,
    )

    def runner(graph: CSRGraph, p1cfg: Phase1Config, round_idx: int):
        if round_idx == 0:
            return run_multiprocess_phase1(graph, mp_cfg)
        return run_local(graph, p1cfg)

    return runner, mp_cfg


def _run_gala(
    graph: CSRGraph, cfg: GalaConfig, san
) -> Union[LouvainResult, Phase1Result]:
    if cfg.runtime not in ("local", "multiprocess"):
        raise ValueError(
            f"unknown runtime {cfg.runtime!r}; expected 'local' or 'multiprocess'"
        )
    if cfg.runtime == "multiprocess" and cfg.backend != "vectorized":
        raise ValueError(
            "runtime='multiprocess' requires backend='vectorized' "
            f"(got {cfg.backend!r}); rank workers run the NumPy kernel"
        )
    p1cfg = cfg.phase1_config()
    if cfg.runtime == "multiprocess":
        runner, mp_cfg = _multiprocess_runner(cfg)
        if cfg.phase1_only:
            from repro.multiprocess import run_multiprocess_phase1

            result = run_multiprocess_phase1(graph, mp_cfg)
        else:
            result = louvain(
                graph,
                phase1_config=p1cfg,
                round_theta=cfg.round_theta,
                max_rounds=cfg.max_rounds,
                phase1_runner=runner,
            )
    elif cfg.phase1_only:
        result = run_phase1(graph, p1cfg)
    else:
        result = louvain(
            graph,
            phase1_config=p1cfg,
            round_theta=cfg.round_theta,
            max_rounds=cfg.max_rounds,
        )

    # Every GALA result carries a run manifest: config, seed, graph
    # fingerprint, environment, per-level breakdown — plus the metrics
    # summary when an observability session is active and the sanitizer
    # report when the run was sanitized. `repro report` renders and
    # diffs these.
    from repro import obs

    sess = obs.current()
    result.manifest = obs.build_manifest(
        result,
        graph,
        config=cfg,
        metrics=sess.summary() if sess is not None else None,
        runtime="gala",
        sanitizer=san.report() if san is not None else None,
    )
    return result
