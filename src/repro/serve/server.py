"""The asyncio detection server: registry + cache + runner, one loop.

Request lifecycle (``detect``)::

    parse → registry lookup → result-cache lookup ──hit──→ reply (no engine)
                                   │miss
                                   ▼
                       admission control (bounded by max_pending)
                          │admitted              │over budget / draining
                          ▼                      ▼
                    runner (subprocess pool)   shed: 503, immediately
                          │
                          ▼
                    cache store → reply

The event loop only ever parses JSON, walks dictionaries, and ships
bytes; every engine run happens behind the
:class:`~repro.serve.pool.DetectionRunner` seam in a subprocess. That is
what keeps intake responsive at overload: a full pool means new work is
*shed* with a ``503`` in microseconds, not queued into an unbounded
backlog — clients with a retry policy get honest backpressure, and the
server's memory stays flat at any offered load.

Determinism makes the cache exact: a hit is the bit-identical assignment
the engine would recompute, so repeated-graph traffic (the common case
for interactive workloads) costs one engine run ever. Hit/miss/eviction
counters and request latency histograms live in a
:class:`~repro.obs.metrics.MetricsRegistry`; :meth:`DetectionServer.manifest`
snapshots them into a :class:`~repro.obs.manifest.RunManifest` on drain
so ``repro report`` renders a serving session like any other run.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.collector import TraceCollector, build_request_trace, make_span
from repro.obs.exposition import render_prometheus
from repro.obs.live import (
    SlidingWindowHistogram,
    SloMonitor,
    WindowedCounter,
    parse_slo_spec,
)
from repro.obs.manifest import RunManifest, _config_dict
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.serve.cache import CachedResult, ResultCache
from repro.serve.pool import (
    DetectionFailed,
    DetectionRunner,
    DetectionTimeout,
    InlineRunner,
    WorkerPool,
)
from repro.serve.protocol import (
    DEFAULT_LINE_LIMIT,
    KNOWN_OPS,
    ProtocolError,
    decode,
    detect_response,
    encode,
    error_response,
    graph_from_payload,
    parse_detect_config,
    parse_optional_number,
    require_fingerprint,
)
from repro.serve.registry import GraphRegistry


@dataclass
class ServeConfig:
    """Knobs of one serving session (all byte/second budgets explicit)."""

    host: str = "127.0.0.1"
    #: 0 = pick an ephemeral port (reported by :meth:`DetectionServer.start`)
    port: int = 0
    #: subprocess workers — the engine-run concurrency
    workers: int = 2
    #: ``"subprocess"`` (production) or ``"inline"`` (tests/smoke; see
    #: :class:`~repro.serve.pool.InlineRunner` for why it can't serve traffic)
    runner: str = "subprocess"
    #: result-cache byte budget (stored assignments)
    cache_bytes: int = 64 << 20
    #: graph-registry byte budget (None = unbounded)
    registry_bytes: Optional[int] = None
    #: admission bound: engine runs in flight (busy workers + waiting);
    #: beyond it, detect requests are shed with a 503
    max_pending: int = 32
    #: per-request engine timeout (None = no limit); requests may lower
    #: it per-call with ``timeout_s``
    request_timeout_s: Optional[float] = 120.0
    #: graceful-drain budget: in-flight runs get this long to finish
    #: before they are cancelled (and their workers killed)
    drain_timeout_s: float = 10.0
    #: per-worker graph LRU size (see pool docstring)
    worker_graph_cache: int = 8
    #: stream-reader per-line cap (uploads are one JSON line)
    line_limit: int = DEFAULT_LINE_LIMIT
    #: multiprocessing start method for the pool
    mp_context: str = "spawn"
    #: bind an HTTP listener on this port for ``GET /metrics`` +
    #: ``GET /healthz`` (None = no listener; 0 = ephemeral). The JSONL
    #: ``metrics`` op works either way.
    metrics_port: Optional[int] = None
    #: write one merged cross-process Chrome trace per engine-running
    #: detect request into this directory (None = tracing off)
    trace_dir: Optional[str] = None
    #: retention cap on written request traces (oldest unlinked first)
    trace_keep: int = 256
    #: SLO spec, e.g. ``"p99_ms=250,error_rate=0.01"`` (None = no SLO
    #: monitor; ``/healthz`` then only reflects draining)
    slo: Optional[str] = None
    #: rolling window for the SLO evaluator and the live p50/p95/p99
    slo_window_s: float = 60.0
    #: server-side execution defaults applied to detect configs that
    #: don't set them (execution fields never change cache keys)
    default_runtime: Optional[str] = None
    default_ranks: Optional[int] = None


class DetectionServer:
    """Long-running detection-as-a-service endpoint."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        runner: Optional[DetectionRunner] = None,
    ):
        self.config = config or ServeConfig()
        cfg = self.config
        if cfg.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.registry = GraphRegistry(max_bytes=cfg.registry_bytes)
        self.cache = ResultCache(max_bytes=cfg.cache_bytes)
        if runner is not None:
            self.runner = runner
        elif cfg.runner == "inline":
            self.runner = InlineRunner()
        elif cfg.runner == "subprocess":
            self.runner = WorkerPool(
                workers=cfg.workers,
                mp_context=cfg.mp_context,
                worker_graph_cache=cfg.worker_graph_cache,
            )
        else:
            raise ValueError(
                f"unknown runner {cfg.runner!r}; expected 'subprocess' or 'inline'"
            )
        self.metrics = MetricsRegistry()
        m = self.metrics
        self._c_requests = m.counter("serve/requests_total")
        self._c_hits = m.counter("serve/cache_hits")
        self._c_misses = m.counter("serve/cache_misses")
        self._c_shed = m.counter("serve/shed_total")
        self._c_timeouts = m.counter("serve/timeouts")
        self._c_errors = m.counter("serve/errors")
        self._c_uploads = m.counter("serve/uploads")
        self._g_inflight = m.gauge("serve/inflight")
        self._h_latency = m.histogram("serve/latency_ms")
        self._h_hit = m.histogram("serve/hit_latency_ms")
        self._h_miss = m.histogram("serve/miss_latency_ms")

        # ---- live telemetry: always-on windows, opt-in SLO/traces ---- #
        # sliding-window latency + request/error counters feed the
        # metrics op, the /metrics exposition, and the SLO evaluator;
        # their fixed log-spaced buckets merge exactly across processes
        self._live_latency = SlidingWindowHistogram(window_s=cfg.slo_window_s)
        self._w_requests = WindowedCounter(window_s=cfg.slo_window_s)
        self._w_errors = WindowedCounter(window_s=cfg.slo_window_s)
        self._c_slo_violations = m.counter("serve/slo_violations")
        self._slo: Optional[SloMonitor] = None
        if cfg.slo:
            self._slo = SloMonitor(
                parse_slo_spec(cfg.slo, window_s=cfg.slo_window_s),
                self._live_latency,
                self._w_requests,
                self._w_errors,
                on_violation=self._on_slo_violation,
            )
        self._trace_collector: Optional[TraceCollector] = (
            TraceCollector(cfg.trace_dir, keep=cfg.trace_keep)
            if cfg.trace_dir
            else None
        )
        self._config_defaults: Dict[str, Any] = {}
        if cfg.default_runtime:
            self._config_defaults["runtime"] = cfg.default_runtime
        if cfg.default_ranks:
            self._config_defaults["ranks"] = int(cfg.default_ranks)
        self._request_seq = 0
        self._http = None  # TelemetryHTTPServer when metrics_port is set
        self.metrics_port: Optional[int] = None

        self._inflight = 0
        self._draining = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._started_monotonic: Optional[float] = None
        self._drained_clean: Optional[bool] = None
        self.port: Optional[int] = None

    def _on_slo_violation(self, event: Dict[str, Any]) -> None:
        """Transition into violation: structured log line + counter."""
        self._c_slo_violations.add(1)
        logging.getLogger("repro.serve").warning(
            "slo_violation %s", json.dumps(event, sort_keys=True)
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> Tuple[str, int]:
        """Boot the runner and bind the socket; returns (host, port)."""
        await self.runner.start()
        cfg = self.config
        self._server = await asyncio.start_server(
            self._on_connection, cfg.host, cfg.port, limit=cfg.line_limit
        )
        sock = self._server.sockets[0]
        self.port = sock.getsockname()[1]
        self._started_monotonic = time.monotonic()
        if cfg.metrics_port is not None:
            from repro.serve.http import TelemetryHTTPServer

            self._http = TelemetryHTTPServer(
                self, host=cfg.host, port=cfg.metrics_port
            )
            self.metrics_port = await self._http.start()
        return cfg.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def drain(self) -> bool:
        """Graceful shutdown: stop accepting, let in-flight runs finish
        (up to ``drain_timeout_s``), cancel stragglers, stop the pool.
        Returns True when every in-flight request completed in budget."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.config.drain_timeout_s
        while self._inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        clean = self._inflight == 0
        if not clean:
            for task in list(self._conn_tasks):
                task.cancel()
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        await self.runner.stop()
        # stopped last: a drain in progress is exactly when you want the
        # metrics endpoint to still answer
        if self._http is not None:
            await self._http.stop()
            self._http = None
        self._drained_clean = clean
        return clean

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # line exceeded the reader limit: refuse and hang up
                    writer.write(encode(error_response(
                        "bad_request", "request line exceeds server limit"
                    )))
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self._handle_line(line)
                writer.write(encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            # close without awaiting: the transport flushes and closes on
            # the loop, and a handler that lingers in wait_closed() shows
            # up as teardown noise when the loop shuts down
            writer.close()

    async def _handle_line(self, line: bytes) -> Dict[str, Any]:
        t0 = time.perf_counter()
        self._c_requests.add(1)
        self._w_requests.add(1)
        response = await self._dispatch_line(line, t0)
        latency_ms = (time.perf_counter() - t0) * 1000.0
        self._h_latency.observe(latency_ms)
        self._live_latency.observe(latency_ms)
        # the SLO's error rate counts 5xx replies — internal failures,
        # timeouts, and shed load (backpressure is a health signal too)
        if not response.get("ok", False) and int(response.get("status", 500)) >= 500:
            self._w_errors.add(1)
        if self._slo is not None:
            self._slo.evaluate()
        return response

    async def _dispatch_line(self, line: bytes, t0: float) -> Dict[str, Any]:
        try:
            message = decode(line)
            op = message.get("op")
            if op == "detect":
                return await self._detect(message, t0)
            if op == "ping":
                return self._ping()
            if op == "upload":
                return self._upload(message)
            if op == "stats":
                return self._stats()
            if op == "metrics":
                return self._metrics_op(message)
            if op == "graphs":
                return {"ok": True, "graphs": self.registry.entries()}
            if op == "evict":
                return self._evict(message)
            raise ProtocolError(
                "bad_request", f"unknown op {op!r}; expected one of {KNOWN_OPS}"
            )
        except ProtocolError as exc:
            self._c_errors.add(1)
            return error_response(exc.code, str(exc))
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - a reply, not a crash
            self._c_errors.add(1)
            return error_response("internal", f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #
    def _ping(self) -> Dict[str, Any]:
        """Liveness probe, now carrying enough for a monitoring poll:
        uptime, version, and the cumulative request counters."""
        import repro

        uptime = (
            time.monotonic() - self._started_monotonic
            if self._started_monotonic is not None
            else 0.0
        )
        return {
            "ok": True,
            "op": "ping",
            "draining": self._draining,
            "uptime_s": uptime,
            "version": repro.__version__,
            "requests_total": int(self._c_requests.value),
            "cache_hits": int(self._c_hits.value),
            "cache_misses": int(self._c_misses.value),
            "shed_total": int(self._c_shed.value),
            "errors": int(self._c_errors.value),
        }

    def _metrics_op(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Live telemetry over the JSONL protocol: the same numbers the
        HTTP ``/metrics`` endpoint exports, plus a dashboard summary."""
        reply: Dict[str, Any] = {"ok": True, "summary": self.metrics_summary()}
        if bool(message.get("exposition", True)):
            reply["exposition"] = self.render_metrics_text()
        return reply

    def _upload(self, message: Dict[str, Any]) -> Dict[str, Any]:
        graph = graph_from_payload(message)
        fingerprint = self.registry.put(graph)
        self._c_uploads.add(1)
        return {
            "ok": True,
            "fingerprint": fingerprint,
            "name": graph.name,
            "n": int(graph.n),
            "num_edges": int(graph.num_edges),
        }

    def _evict(self, message: Dict[str, Any]) -> Dict[str, Any]:
        fingerprint = require_fingerprint(message)
        evicted = self.registry.evict(fingerprint)
        dropped = self.cache.evict_graph(fingerprint)
        return {"ok": True, "evicted": evicted, "results_dropped": dropped}

    def _stats(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "serve": self.metrics.snapshot(),
            "cache": self.cache.stats(),
            "registry": self.registry.stats(),
            "pool": self.runner.stats(),
            "inflight": self._inflight,
            "draining": self._draining,
        }

    async def _detect(self, message: Dict[str, Any], t0: float) -> Dict[str, Any]:
        fingerprint = require_fingerprint(message)
        config = parse_detect_config(message, defaults=self._config_defaults)
        include_assignment = bool(message.get("include_assignment", False))
        self._request_seq += 1
        request_id = f"req-{self._request_seq:06d}"
        graph = self.registry.get(fingerprint)
        if graph is None:
            return error_response(
                "not_found", f"no graph with fingerprint {fingerprint[:16]}…"
            )
        use_cache = not bool(message.get("no_cache", False))
        key = ResultCache.key(fingerprint, config)
        if use_cache:
            hit = self.cache.get(key)
            if hit is not None:
                self._c_hits.add(1)
                self._h_hit.observe((time.perf_counter() - t0) * 1000.0)
                response = detect_response(
                    True, hit, include_assignment, fingerprint
                )
                response["request_id"] = request_id
                return response
            self._c_misses.add(1)

        # ---- admission control: bounded engine backlog ---------------- #
        if self._draining:
            return error_response("draining", "server is draining")
        if self._inflight >= self.config.max_pending:
            self._c_shed.add(1)
            return error_response(
                "overloaded",
                f"engine backlog full ({self._inflight} in flight)",
                retry=True,
            )
        timeout = parse_optional_number(
            message, "timeout_s", self.config.request_timeout_s
        )
        tracing = self._trace_collector is not None
        trace_id = uuid.uuid4().hex[:16] if tracing else None
        self._inflight += 1
        self._g_inflight.set(self._inflight)
        # collect_spans is only passed when tracing is armed, so runner
        # stubs written against the pre-telemetry signature keep working
        # untraced — the disabled path stays invisible end to end
        run_kwargs = {"collect_spans": True} if tracing else {}
        try:
            t_dispatch = time.perf_counter()
            raw = await self.runner.run(
                graph, config, timeout=timeout, **run_kwargs
            )
            t_done = time.perf_counter()
        except DetectionTimeout as exc:
            self._c_timeouts.add(1)
            return error_response("timeout", str(exc))
        except DetectionFailed as exc:
            self._c_errors.add(1)
            return error_response("internal", str(exc))
        finally:
            self._inflight -= 1
            self._g_inflight.set(self._inflight)

        telemetry = raw.pop("telemetry", None) if isinstance(raw, dict) else None
        result = CachedResult.from_result(raw)
        if use_cache:
            self.cache.put(key, result)
        self._h_miss.observe((time.perf_counter() - t0) * 1000.0)
        response = detect_response(False, result, include_assignment, fingerprint)
        response["request_id"] = request_id
        if tracing and trace_id is not None:
            trace_path = self._write_request_trace(
                request_id, trace_id, t0, t_dispatch, t_done, telemetry, fingerprint
            )
            response["trace_id"] = trace_id
            if trace_path is not None:
                response["trace_path"] = trace_path
        return response

    def _write_request_trace(
        self,
        request_id: str,
        trace_id: str,
        t0: float,
        t_dispatch: float,
        t_done: float,
        telemetry: Optional[Dict[str, Any]],
        fingerprint: str,
    ) -> Optional[str]:
        """Merge server + worker (+rank) spans into one Chrome trace.

        Everything here is already in the *server's* perf_counter domain:
        the pool shifted the worker's spans by the handshake-bounded clock
        offset before handing them up (see ``WorkerPool._server_domain_telemetry``).
        The per-request tracer's epoch is pinned to ``t0`` so the
        ``serve/request`` span starts at ts=0 and every child nests inside.
        """
        assert self._trace_collector is not None
        tracer = Tracer(process_name="serve")
        tracer._t0 = t0
        spans: List[Dict[str, Any]] = [
            make_span(
                "serve/request",
                t0,
                time.perf_counter(),
                pid=0,
                args={"request_id": request_id, "fingerprint": fingerprint[:16]},
            ),
            make_span("serve/pool.dispatch", t_dispatch, t_done, pid=0),
        ]
        tracer.ingest(spans, labels={0: "serve"})
        if telemetry:
            tracer.ingest(
                telemetry.get("spans") or [],
                labels=telemetry.get("labels") or {},
            )
        chrome = build_request_trace(tracer, trace_id, request_id)
        try:
            return self._trace_collector.write(self._request_seq, trace_id, chrome)
        except OSError as exc:  # tracing must never fail the request
            logging.getLogger("repro.serve").warning(
                "trace write failed for %s: %s", request_id, exc
            )
            return None

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def bridge_metrics(self) -> None:
        """Fold the cache/registry/pool counters into the registry as
        gauges (cumulative values, sim-profiler bridge semantics)."""
        self.metrics.bridge_result_cache(self.cache)
        for name, value in self.registry.stats().items():
            self.metrics.gauge(f"serve/registry/{name}").set(value)
        pool = self.runner.stats()
        for name in ("workers", "respawns", "idle", "runs"):
            if name in pool:
                self.metrics.gauge(f"serve/pool/{name}").set(pool[name])
        # worker-side telemetry folded from every reply (satellite: the
        # pool accumulates these even for requests that aren't traced)
        for name, value in (pool.get("worker_totals") or {}).items():
            self.metrics.gauge(f"serve/worker/{name}").set(value)
        for backend, count in (pool.get("kernel_backends") or {}).items():
            self.metrics.gauge(f"serve/worker/kernel/{backend}").set(count)

    def health(self) -> Tuple[bool, Dict[str, Any]]:
        """The ``/healthz`` answer: healthy iff not draining and (when an
        SLO is configured) the rolling window meets its targets."""
        status: Dict[str, Any] = {"draining": self._draining}
        healthy = not self._draining
        if self._slo is not None:
            slo_status = self._slo.evaluate()
            status["slo"] = slo_status
            healthy = healthy and bool(slo_status["healthy"])
        status["healthy"] = healthy
        return healthy, status

    def metrics_summary(self) -> Dict[str, Any]:
        """The dashboard-facing summary (``repro top`` renders this)."""
        window = self._live_latency.window().snapshot()
        cache = self.cache.stats()
        pool = self.runner.stats()
        uptime = (
            time.monotonic() - self._started_monotonic
            if self._started_monotonic is not None
            else 0.0
        )
        summary: Dict[str, Any] = {
            "uptime_s": uptime,
            "draining": self._draining,
            "requests_total": int(self._c_requests.value),
            "req_per_s": self._w_requests.rate_per_s(),
            "window_requests": int(self._w_requests.window_total()),
            "window_errors": int(self._w_errors.window_total()),
            "window_p50_ms": window["p50"],
            "window_p95_ms": window["p95"],
            "window_p99_ms": window["p99"],
            "cache_hit_rate": cache["hit_rate"],
            "shed_total": int(self._c_shed.value),
            "inflight": self._inflight,
            "backlog_limit": self.config.max_pending,
            "workers": pool.get("workers", 0),
            "worker_restarts": pool.get("respawns", 0),
            "traces_written": (
                self._trace_collector.written if self._trace_collector else 0
            ),
        }
        if self._slo is not None:
            summary["slo"] = self._slo.evaluate()
        return summary

    def render_metrics_text(self) -> str:
        """The Prometheus text exposition of the whole session."""
        self.bridge_metrics()
        snapshot = self.metrics.snapshot()
        counters = {
            name: float(value) for name, value in snapshot["counters"].items()
        }
        gauges = {
            name: float(value) for name, value in snapshot["gauges"].items()
        }
        uptime = (
            time.monotonic() - self._started_monotonic
            if self._started_monotonic is not None
            else 0.0
        )
        window = self._live_latency.window()
        n_window = self._w_requests.window_total()
        n_errors = self._w_errors.window_total()
        gauges.update(
            {
                "serve/uptime_s": uptime,
                "serve/req_per_s": self._w_requests.rate_per_s(),
                "serve/window_requests": n_window,
                "serve/window_errors": n_errors,
                "serve/window_error_rate": (
                    n_errors / n_window if n_window else 0.0
                ),
                "serve/window_p50_ms": window.quantile(0.50),
                "serve/window_p95_ms": window.quantile(0.95),
                "serve/window_p99_ms": window.quantile(0.99),
                "serve/backlog_depth": float(self._inflight),
                "serve/healthy": float(self.health()[0]),
            }
        )
        labeled: Dict[str, Any] = {}
        pool = self.runner.stats()
        halo = pool.get("rank_halo_bytes") or {}
        if halo:
            labeled["serve/rank_halo_bytes"] = [
                ({"rank": rank}, float(bytes_)) for rank, bytes_ in sorted(halo.items())
            ]
        return render_prometheus(
            counters=counters,
            gauges=gauges,
            histograms={"serve/request_latency_ms": self._live_latency.cumulative},
            labeled_gauges=labeled,
            help_text={
                "serve/request_latency_ms": (
                    "request latency (ms), fixed log-spaced buckets"
                ),
                "serve/requests_total": "requests received since boot",
                "serve/healthy": "1 when /healthz would answer 200",
            },
        )

    def manifest(self, command: str = "serve") -> RunManifest:
        """Snapshot the session as a :class:`RunManifest` (written on
        drain by the CLI; renders via ``repro report``)."""
        self.bridge_metrics()
        cache = self.cache.stats()
        snapshot = self.metrics.snapshot()
        latency = snapshot["histograms"].get("serve/latency_ms", {})
        hit_lat = snapshot["histograms"].get("serve/hit_latency_ms", {})
        miss_lat = snapshot["histograms"].get("serve/miss_latency_ms", {})
        uptime = (
            time.monotonic() - self._started_monotonic
            if self._started_monotonic is not None
            else 0.0
        )
        manifest = RunManifest(
            command=command,
            runtime="serve",
            config=_config_dict(self.config),
            metrics=snapshot,
        )
        manifest.result = {
            "requests": int(self._c_requests.value),
            "cache_hits": int(cache["hits"]),
            "cache_misses": int(cache["misses"]),
            "cache_hit_rate": cache["hit_rate"],
            "shed": int(self._c_shed.value),
            "timeouts": int(self._c_timeouts.value),
            "errors": int(self._c_errors.value),
            "latency_p50_ms": latency.get("p50", 0.0),
            "latency_p99_ms": latency.get("p99", 0.0),
            "hit_latency_p50_ms": hit_lat.get("p50", 0.0),
            "miss_latency_p50_ms": miss_lat.get("p50", 0.0),
            "uptime_s": uptime,
            "drained_clean": self._drained_clean,
        }
        # the live bucket histogram's cumulative percentiles: the same
        # numbers /metrics exports, so a scrape taken during the session
        # and the drain manifest agree exactly
        live = self._live_latency.cumulative
        manifest.result["live"] = {
            "requests": live.count,
            "p50_ms": live.quantile(0.50),
            "p95_ms": live.quantile(0.95),
            "p99_ms": live.quantile(0.99),
        }
        if self._slo is not None:
            manifest.result["slo"] = self._slo.report()
        if self._trace_collector is not None:
            manifest.result["traces_written"] = self._trace_collector.written
        return manifest
