"""The asyncio detection server: registry + cache + runner, one loop.

Request lifecycle (``detect``)::

    parse → registry lookup → result-cache lookup ──hit──→ reply (no engine)
                                   │miss
                                   ▼
                       admission control (bounded by max_pending)
                          │admitted              │over budget / draining
                          ▼                      ▼
                    runner (subprocess pool)   shed: 503, immediately
                          │
                          ▼
                    cache store → reply

The event loop only ever parses JSON, walks dictionaries, and ships
bytes; every engine run happens behind the
:class:`~repro.serve.pool.DetectionRunner` seam in a subprocess. That is
what keeps intake responsive at overload: a full pool means new work is
*shed* with a ``503`` in microseconds, not queued into an unbounded
backlog — clients with a retry policy get honest backpressure, and the
server's memory stays flat at any offered load.

Determinism makes the cache exact: a hit is the bit-identical assignment
the engine would recompute, so repeated-graph traffic (the common case
for interactive workloads) costs one engine run ever. Hit/miss/eviction
counters and request latency histograms live in a
:class:`~repro.obs.metrics.MetricsRegistry`; :meth:`DetectionServer.manifest`
snapshots them into a :class:`~repro.obs.manifest.RunManifest` on drain
so ``repro report`` renders a serving session like any other run.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.obs.manifest import RunManifest, _config_dict
from repro.obs.metrics import MetricsRegistry
from repro.serve.cache import CachedResult, ResultCache
from repro.serve.pool import (
    DetectionFailed,
    DetectionRunner,
    DetectionTimeout,
    InlineRunner,
    WorkerPool,
)
from repro.serve.protocol import (
    DEFAULT_LINE_LIMIT,
    KNOWN_OPS,
    ProtocolError,
    decode,
    detect_response,
    encode,
    error_response,
    graph_from_payload,
    parse_detect_config,
    parse_optional_number,
    require_fingerprint,
)
from repro.serve.registry import GraphRegistry


@dataclass
class ServeConfig:
    """Knobs of one serving session (all byte/second budgets explicit)."""

    host: str = "127.0.0.1"
    #: 0 = pick an ephemeral port (reported by :meth:`DetectionServer.start`)
    port: int = 0
    #: subprocess workers — the engine-run concurrency
    workers: int = 2
    #: ``"subprocess"`` (production) or ``"inline"`` (tests/smoke; see
    #: :class:`~repro.serve.pool.InlineRunner` for why it can't serve traffic)
    runner: str = "subprocess"
    #: result-cache byte budget (stored assignments)
    cache_bytes: int = 64 << 20
    #: graph-registry byte budget (None = unbounded)
    registry_bytes: Optional[int] = None
    #: admission bound: engine runs in flight (busy workers + waiting);
    #: beyond it, detect requests are shed with a 503
    max_pending: int = 32
    #: per-request engine timeout (None = no limit); requests may lower
    #: it per-call with ``timeout_s``
    request_timeout_s: Optional[float] = 120.0
    #: graceful-drain budget: in-flight runs get this long to finish
    #: before they are cancelled (and their workers killed)
    drain_timeout_s: float = 10.0
    #: per-worker graph LRU size (see pool docstring)
    worker_graph_cache: int = 8
    #: stream-reader per-line cap (uploads are one JSON line)
    line_limit: int = DEFAULT_LINE_LIMIT
    #: multiprocessing start method for the pool
    mp_context: str = "spawn"


class DetectionServer:
    """Long-running detection-as-a-service endpoint."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        runner: Optional[DetectionRunner] = None,
    ):
        self.config = config or ServeConfig()
        cfg = self.config
        if cfg.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.registry = GraphRegistry(max_bytes=cfg.registry_bytes)
        self.cache = ResultCache(max_bytes=cfg.cache_bytes)
        if runner is not None:
            self.runner = runner
        elif cfg.runner == "inline":
            self.runner = InlineRunner()
        elif cfg.runner == "subprocess":
            self.runner = WorkerPool(
                workers=cfg.workers,
                mp_context=cfg.mp_context,
                worker_graph_cache=cfg.worker_graph_cache,
            )
        else:
            raise ValueError(
                f"unknown runner {cfg.runner!r}; expected 'subprocess' or 'inline'"
            )
        self.metrics = MetricsRegistry()
        m = self.metrics
        self._c_requests = m.counter("serve/requests_total")
        self._c_hits = m.counter("serve/cache_hits")
        self._c_misses = m.counter("serve/cache_misses")
        self._c_shed = m.counter("serve/shed_total")
        self._c_timeouts = m.counter("serve/timeouts")
        self._c_errors = m.counter("serve/errors")
        self._c_uploads = m.counter("serve/uploads")
        self._g_inflight = m.gauge("serve/inflight")
        self._h_latency = m.histogram("serve/latency_ms")
        self._h_hit = m.histogram("serve/hit_latency_ms")
        self._h_miss = m.histogram("serve/miss_latency_ms")

        self._inflight = 0
        self._draining = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._started_monotonic: Optional[float] = None
        self._drained_clean: Optional[bool] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> Tuple[str, int]:
        """Boot the runner and bind the socket; returns (host, port)."""
        await self.runner.start()
        cfg = self.config
        self._server = await asyncio.start_server(
            self._on_connection, cfg.host, cfg.port, limit=cfg.line_limit
        )
        sock = self._server.sockets[0]
        self.port = sock.getsockname()[1]
        self._started_monotonic = time.monotonic()
        return cfg.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def drain(self) -> bool:
        """Graceful shutdown: stop accepting, let in-flight runs finish
        (up to ``drain_timeout_s``), cancel stragglers, stop the pool.
        Returns True when every in-flight request completed in budget."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.config.drain_timeout_s
        while self._inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        clean = self._inflight == 0
        if not clean:
            for task in list(self._conn_tasks):
                task.cancel()
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        await self.runner.stop()
        self._drained_clean = clean
        return clean

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # line exceeded the reader limit: refuse and hang up
                    writer.write(encode(error_response(
                        "bad_request", "request line exceeds server limit"
                    )))
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self._handle_line(line)
                writer.write(encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            # close without awaiting: the transport flushes and closes on
            # the loop, and a handler that lingers in wait_closed() shows
            # up as teardown noise when the loop shuts down
            writer.close()

    async def _handle_line(self, line: bytes) -> Dict[str, Any]:
        t0 = time.perf_counter()
        self._c_requests.add(1)
        try:
            message = decode(line)
            op = message.get("op")
            if op == "detect":
                return await self._detect(message, t0)
            if op == "ping":
                return {"ok": True, "op": "ping", "draining": self._draining}
            if op == "upload":
                return self._upload(message)
            if op == "stats":
                return self._stats()
            if op == "graphs":
                return {"ok": True, "graphs": self.registry.entries()}
            if op == "evict":
                return self._evict(message)
            raise ProtocolError(
                "bad_request", f"unknown op {op!r}; expected one of {KNOWN_OPS}"
            )
        except ProtocolError as exc:
            self._c_errors.add(1)
            return error_response(exc.code, str(exc))
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - a reply, not a crash
            self._c_errors.add(1)
            return error_response("internal", f"{type(exc).__name__}: {exc}")
        finally:
            self._h_latency.observe((time.perf_counter() - t0) * 1000.0)

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #
    def _upload(self, message: Dict[str, Any]) -> Dict[str, Any]:
        graph = graph_from_payload(message)
        fingerprint = self.registry.put(graph)
        self._c_uploads.add(1)
        return {
            "ok": True,
            "fingerprint": fingerprint,
            "name": graph.name,
            "n": int(graph.n),
            "num_edges": int(graph.num_edges),
        }

    def _evict(self, message: Dict[str, Any]) -> Dict[str, Any]:
        fingerprint = require_fingerprint(message)
        evicted = self.registry.evict(fingerprint)
        dropped = self.cache.evict_graph(fingerprint)
        return {"ok": True, "evicted": evicted, "results_dropped": dropped}

    def _stats(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "serve": self.metrics.snapshot(),
            "cache": self.cache.stats(),
            "registry": self.registry.stats(),
            "pool": self.runner.stats(),
            "inflight": self._inflight,
            "draining": self._draining,
        }

    async def _detect(self, message: Dict[str, Any], t0: float) -> Dict[str, Any]:
        fingerprint = require_fingerprint(message)
        config = parse_detect_config(message)
        include_assignment = bool(message.get("include_assignment", False))
        graph = self.registry.get(fingerprint)
        if graph is None:
            return error_response(
                "not_found", f"no graph with fingerprint {fingerprint[:16]}…"
            )
        use_cache = not bool(message.get("no_cache", False))
        key = ResultCache.key(fingerprint, config)
        if use_cache:
            hit = self.cache.get(key)
            if hit is not None:
                self._c_hits.add(1)
                self._h_hit.observe((time.perf_counter() - t0) * 1000.0)
                return detect_response(
                    True, hit, include_assignment, fingerprint
                )
            self._c_misses.add(1)

        # ---- admission control: bounded engine backlog ---------------- #
        if self._draining:
            return error_response("draining", "server is draining")
        if self._inflight >= self.config.max_pending:
            self._c_shed.add(1)
            return error_response(
                "overloaded",
                f"engine backlog full ({self._inflight} in flight)",
                retry=True,
            )
        timeout = parse_optional_number(
            message, "timeout_s", self.config.request_timeout_s
        )
        self._inflight += 1
        self._g_inflight.set(self._inflight)
        try:
            raw = await self.runner.run(graph, config, timeout=timeout)
        except DetectionTimeout as exc:
            self._c_timeouts.add(1)
            return error_response("timeout", str(exc))
        except DetectionFailed as exc:
            self._c_errors.add(1)
            return error_response("internal", str(exc))
        finally:
            self._inflight -= 1
            self._g_inflight.set(self._inflight)

        result = CachedResult.from_result(raw)
        if use_cache:
            self.cache.put(key, result)
        self._h_miss.observe((time.perf_counter() - t0) * 1000.0)
        return detect_response(False, result, include_assignment, fingerprint)

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def bridge_metrics(self) -> None:
        """Fold the cache/registry/pool counters into the registry as
        gauges (cumulative values, sim-profiler bridge semantics)."""
        self.metrics.bridge_result_cache(self.cache)
        for name, value in self.registry.stats().items():
            self.metrics.gauge(f"serve/registry/{name}").set(value)
        pool = self.runner.stats()
        for name in ("workers", "respawns", "idle", "runs"):
            if name in pool:
                self.metrics.gauge(f"serve/pool/{name}").set(pool[name])

    def manifest(self, command: str = "serve") -> RunManifest:
        """Snapshot the session as a :class:`RunManifest` (written on
        drain by the CLI; renders via ``repro report``)."""
        self.bridge_metrics()
        cache = self.cache.stats()
        snapshot = self.metrics.snapshot()
        latency = snapshot["histograms"].get("serve/latency_ms", {})
        hit_lat = snapshot["histograms"].get("serve/hit_latency_ms", {})
        miss_lat = snapshot["histograms"].get("serve/miss_latency_ms", {})
        uptime = (
            time.monotonic() - self._started_monotonic
            if self._started_monotonic is not None
            else 0.0
        )
        manifest = RunManifest(
            command=command,
            runtime="serve",
            config=_config_dict(self.config),
            metrics=snapshot,
        )
        manifest.result = {
            "requests": int(self._c_requests.value),
            "cache_hits": int(cache["hits"]),
            "cache_misses": int(cache["misses"]),
            "cache_hit_rate": cache["hit_rate"],
            "shed": int(self._c_shed.value),
            "timeouts": int(self._c_timeouts.value),
            "errors": int(self._c_errors.value),
            "latency_p50_ms": latency.get("p50", 0.0),
            "latency_p99_ms": latency.get("p99", 0.0),
            "hit_latency_p50_ms": hit_lat.get("p50", 0.0),
            "miss_latency_p50_ms": miss_lat.get("p50", 0.0),
            "uptime_s": uptime,
            "drained_clean": self._drained_clean,
        }
        return manifest
