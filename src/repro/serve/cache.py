"""Deterministic LRU result cache for detection requests.

Every run in this repo is deterministic per (graph fingerprint, semantic
config, seed) — the cross-backend bit-exactness matrix pins it — so a
detection result is a pure function of its cache key and can be served
from memory, bit-identical, without touching an engine. That property is
the economic core of the serving layer: hot repeated graphs cost one
engine run ever.

The cache is LRU under a byte budget (assignments dominate, so the
budget counts the stored arrays) with exact hit/miss/eviction counters.
:meth:`repro.obs.metrics.MetricsRegistry.bridge_result_cache` mirrors the
counters into an observability snapshot so ``repro report`` renders them
next to the engine numbers.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

#: cache key: (graph fingerprint, GalaConfig.cache_key(), seed)
CacheKey = Tuple[str, str, int]


def assignment_sha256(communities: np.ndarray) -> str:
    """Digest of an assignment array — the bit-identity witness the
    protocol returns even when the caller skips the full assignment."""
    return hashlib.sha256(
        np.ascontiguousarray(communities, dtype=np.int64).tobytes()
    ).hexdigest()


@dataclass
class CachedResult:
    """The serveable subset of a detection result.

    ``communities`` is stored as a read-only int64 array: a cache hit
    hands out the same buffer to every caller, so nobody may scribble on
    it — bit-identity across hits is the whole point.
    """

    communities: np.ndarray
    modularity: float
    num_levels: int
    iterations: int
    assignment_sha256: str = field(default="")

    def __post_init__(self):
        arr = np.ascontiguousarray(self.communities, dtype=np.int64)
        arr.setflags(write=False)
        self.communities = arr
        if not self.assignment_sha256:
            self.assignment_sha256 = assignment_sha256(arr)

    @property
    def num_communities(self) -> int:
        return len(np.unique(self.communities))

    @property
    def nbytes(self) -> int:
        return int(self.communities.nbytes)

    @classmethod
    def from_result(cls, result) -> "CachedResult":
        """Build from any result shape (``LouvainResult``,
        ``EngineResult``/``Phase1Result``, or a worker's plain dict)."""
        if isinstance(result, dict):
            return cls(
                communities=np.asarray(result["communities"], dtype=np.int64),
                modularity=float(result["modularity"]),
                num_levels=int(result.get("num_levels", 1)),
                iterations=int(result.get("iterations", 0)),
            )
        levels = getattr(result, "levels", None)
        if levels is not None:
            iterations = sum(len(lvl.phase1.history) for lvl in levels)
            num_levels = len(levels)
        else:
            iterations = int(getattr(result, "num_iterations", 0))
            num_levels = 1
        return cls(
            communities=result.communities,
            modularity=float(result.modularity),
            num_levels=num_levels,
            iterations=iterations,
        )


class ResultCache:
    """Byte-budgeted LRU map from :data:`CacheKey` to :class:`CachedResult`."""

    def __init__(self, max_bytes: int = 64 << 20):
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, CachedResult]" = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._rejected = 0

    # ------------------------------------------------------------------ #
    @staticmethod
    def key(fingerprint: str, config, seed: Optional[int] = None) -> CacheKey:
        """Build the canonical key for one request.

        ``config`` is a :class:`~repro.core.gala.GalaConfig` (or anything
        with a ``cache_key()``); ``seed`` defaults to the config's own.
        """
        if seed is None:
            seed = int(getattr(config, "seed", 0))
        return (fingerprint, config.cache_key(), int(seed))

    def get(self, key: CacheKey) -> Optional[CachedResult]:
        """Look up; counts a hit or miss and refreshes LRU order."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def peek(self, key: CacheKey) -> Optional[CachedResult]:
        """Lookup without touching counters or LRU order (introspection)."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: CacheKey, result: CachedResult) -> bool:
        """Store one result; returns whether it was admitted.

        A result larger than the whole budget is rejected (storing it
        would evict everything for an entry that can never pay off);
        otherwise LRU entries are evicted until the budget holds.
        """
        if result.nbytes > self.max_bytes:
            with self._lock:
                self._rejected += 1
            return False
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = result
            self._bytes += result.nbytes
            while self._bytes > self.max_bytes:
                _, victim = self._entries.popitem(last=False)
                self._bytes -= victim.nbytes
                self._evictions += 1
        return True

    def evict_graph(self, fingerprint: str) -> int:
        """Drop every cached result for one graph (registry eviction
        cascades here); returns the number of entries removed."""
        with self._lock:
            doomed = [k for k in self._entries if k[0] == fingerprint]
            for k in doomed:
                self._bytes -= self._entries.pop(k).nbytes
                self._evictions += 1
            return len(doomed)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self):
        with self._lock:
            return list(self._entries.keys())

    def stats(self) -> Dict[str, float]:
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "rejected": self._rejected,
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hit_rate": (self._hits / lookups) if lookups else 0.0,
            }
