"""Detection runners: where the server actually runs engines.

The server never calls :func:`~repro.core.gala.gala` directly — it talks
to a :class:`DetectionRunner`, the serving layer's analogue of the
engine's ``Executor`` protocol: one seam, several runtimes behind it.

* :class:`InlineRunner` runs the engine in a thread of the server
  process. It exists for tests and smoke runs (zero startup cost, easy
  to instrument) — but NumPy kernels hold the GIL for long stretches, so
  an inline engine run stalls the event loop's intake. Not for traffic.
* :class:`WorkerPool` runs engines in subprocesses. The asyncio loop
  stays free to accept, shed, and answer cache hits while every core
  crunches; a hung or runaway run is killed and its worker respawned
  (per-request timeout and cancellation), so one poisoned request never
  wedges the pool.

Workers keep a small fingerprint-keyed graph cache, so a hot graph's
payload crosses the process boundary once per worker, not once per
request — the subprocess mirror of the server's
:class:`~repro.serve.registry.GraphRegistry`.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import os
import time
from abc import ABC, abstractmethod
from typing import Any, Dict, Optional

import numpy as np

from repro.core.gala import GalaConfig
from repro.graph.csr import CSRGraph
from repro.obs.collector import ClockSync, make_span, shift_spans


class DetectionFailed(Exception):
    """The engine raised (bad config, worker crash): the request fails,
    the pool survives."""


class DetectionTimeout(DetectionFailed):
    """The per-request timeout elapsed; the worker was killed."""


class PoolClosed(RuntimeError):
    """Submit after ``stop()``."""


def result_payload(result) -> Dict[str, Any]:
    """The plain-dict result shape every runner returns (and workers ship
    over the pipe): exactly what :class:`~repro.serve.cache.CachedResult`
    needs, nothing an asyncio server has to introspect."""
    levels = getattr(result, "levels", None)
    if levels is not None:
        iterations = sum(len(lvl.phase1.history) for lvl in levels)
        num_levels = len(levels)
    else:
        iterations = int(getattr(result, "num_iterations", 0))
        num_levels = 1
    return {
        "communities": np.ascontiguousarray(result.communities, dtype=np.int64),
        "modularity": float(result.modularity),
        "num_levels": num_levels,
        "iterations": iterations,
    }


def run_counters(result) -> Dict[str, Any]:
    """Compact per-run accounting a runner ships on *every* reply.

    Everything here comes off the result's iteration history — no obs
    session required, so an untraced worker still reports the kernel
    backends it used, the iterations it ran, and (for multiprocess
    runs) per-rank halo bytes. This is what keeps the server-side
    aggregates exact: before this record existed, worker subprocesses
    dropped their accounting on the floor unless a manifest was
    requested, and server totals undercounted every normal request.
    """
    levels = getattr(result, "levels", None)
    if levels is not None:
        phase1s = [lvl.phase1 for lvl in levels]
    else:
        phase1s = [result]
    counters: Dict[str, Any] = {
        "detections": 1,
        "levels": len(phase1s),
        "iterations": 0,
        "comm_bytes": 0,
        "kernel_backends": {},
    }
    rank_halo: Dict[int, int] = {}
    for phase1 in phase1s:
        for trace in getattr(phase1, "history", []):
            counters["iterations"] += 1
            counters["comm_bytes"] += int(getattr(trace, "comm_bytes", 0) or 0)
            backend = getattr(trace, "kernel_backend", None)
            if backend is not None:
                kb = counters["kernel_backends"]
                kb[backend] = kb.get(backend, 0) + 1
        per_rank = getattr(phase1, "rank_halo_bytes", None)
        if per_rank:
            for rank, nbytes in enumerate(per_rank):
                rank_halo[rank] = rank_halo.get(rank, 0) + int(nbytes)
    if rank_halo:
        counters["rank_halo_bytes"] = {str(k): v for k, v in rank_halo.items()}
    return counters


# --------------------------------------------------------------------- #
# the runner seam
# --------------------------------------------------------------------- #
class DetectionRunner(ABC):
    """One detection request in, one plain result dict out."""

    def __init__(self) -> None:
        #: cross-request aggregates folded from every reply's run
        #: counters — the server bridges these into its metrics
        self.worker_totals: Dict[str, int] = {}
        self.kernel_backends: Dict[str, int] = {}
        self.rank_halo_bytes: Dict[str, int] = {}

    async def start(self) -> None:
        """Bring up whatever the runner needs (worker processes)."""

    @abstractmethod
    async def run(
        self,
        graph: CSRGraph,
        config: GalaConfig,
        timeout: Optional[float] = None,
        collect_spans: bool = False,
    ) -> Dict[str, Any]:
        """Run one detection; raises :class:`DetectionFailed` /
        :class:`DetectionTimeout`. Cancellation must leave the runner
        usable for the next request. With ``collect_spans`` the result
        dict carries a ``telemetry`` entry whose ``spans`` are wire
        spans already mapped into *this* process's clock domain."""

    async def stop(self) -> None:
        """Tear down (idempotent)."""

    def stats(self) -> Dict[str, Any]:
        return {}

    def _fold_counters(self, counters: Optional[Dict[str, Any]]) -> None:
        """Accumulate one reply's run counters into the runner totals."""
        if not counters:
            return
        totals = self.worker_totals
        for key in ("detections", "levels", "iterations", "comm_bytes"):
            totals[key] = totals.get(key, 0) + int(counters.get(key, 0) or 0)
        for backend, count in (counters.get("kernel_backends") or {}).items():
            kb = self.kernel_backends
            kb[backend] = kb.get(backend, 0) + int(count)
        for rank, nbytes in (counters.get("rank_halo_bytes") or {}).items():
            rh = self.rank_halo_bytes
            rh[str(rank)] = rh.get(str(rank), 0) + int(nbytes)


class InlineRunner(DetectionRunner):
    """Run engines in-process (a worker thread). Tests and smoke only —
    see the module docstring for why this cannot serve traffic."""

    def __init__(self):
        super().__init__()
        self.runs = 0

    async def run(
        self,
        graph: CSRGraph,
        config: GalaConfig,
        timeout: Optional[float] = None,
        collect_spans: bool = False,
    ) -> Dict[str, Any]:
        from repro.core.gala import gala

        self.runs += 1
        loop = asyncio.get_running_loop()

        def _work() -> Dict[str, Any]:
            t_start = time.perf_counter()
            if collect_spans:
                from repro import obs

                with obs.session(process_name="serve-inline") as sess:
                    result = gala(graph, config)
                exported = sess.tracer.export_spans()
            else:
                result = gala(graph, config)
                exported = None
            payload = result_payload(result)
            # same clock, same process: spans need no offset, and the
            # detect span brackets the engine run exactly
            t_end = time.perf_counter()
            telemetry: Dict[str, Any] = {
                "pid": os.getpid(),
                "counters": run_counters(result),
            }
            if exported is not None:
                spans = [
                    make_span(
                        "worker/detect", t_start, t_end,
                        args={"runner": "inline"},
                    )
                ]
                spans.extend(exported["spans"])
                telemetry["spans"] = spans
                telemetry["labels"] = exported["labels"]
                telemetry["dropped"] = exported["dropped"]
            payload["telemetry"] = telemetry
            return payload

        try:
            payload = await asyncio.wait_for(
                loop.run_in_executor(None, _work), timeout
            )
            self._fold_counters(payload["telemetry"].get("counters"))
            return payload
        except asyncio.TimeoutError:
            # the thread keeps running (no way to kill it) — precisely
            # the deficiency the subprocess pool exists to fix
            raise DetectionTimeout(
                f"inline detection exceeded {timeout}s (thread not reclaimed)"
            ) from None
        except (DetectionFailed, asyncio.CancelledError):
            raise
        except Exception as exc:
            raise DetectionFailed(f"{type(exc).__name__}: {exc}") from exc

    def stats(self) -> Dict[str, Any]:
        return {
            "kind": "inline",
            "runs": self.runs,
            "worker_totals": dict(self.worker_totals),
            "kernel_backends": dict(self.kernel_backends),
            "rank_halo_bytes": dict(self.rank_halo_bytes),
        }


# --------------------------------------------------------------------- #
# subprocess workers
# --------------------------------------------------------------------- #
def _worker_main(conn, graph_cache_size: int) -> None:
    """Worker loop: receive jobs on ``conn``, run GALA, reply.

    Runs in a fresh (spawned) interpreter. SIGINT is ignored — a Ctrl+C
    in the server's terminal reaches the whole process group, and
    shutdown must stay the parent's decision (it drains, then sends
    ``stop``). Workers are *not* daemonic (a multiprocess-runtime job
    spawns rank children, which daemonic processes may not do), so they
    arm PDEATHSIG instead: if the server dies without draining, the
    kernel reaps the worker.

    Every reply carries a ``telemetry`` record: the worker-clock receive
    and send stamps that drive the parent's clock sync, plus the run
    counters (:func:`run_counters`) on success. When the job asks for
    spans, the run executes under an obs session and the session's spans
    (including any rank spans the multiprocess executor ingested) ship
    back in the worker's clock domain.
    """
    import signal
    from collections import OrderedDict

    from repro.multiprocess.runtime import _set_pdeathsig

    _set_pdeathsig()
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    from repro import obs
    from repro.core.gala import GalaConfig, gala

    clock = time.perf_counter
    graphs: "OrderedDict[str, CSRGraph]" = OrderedDict()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        t_job_recv = clock()
        op = msg.get("op")
        if op == "stop":
            break
        if op == "ping":
            conn.send({"ok": True, "pid": os.getpid()})
            continue
        try:
            fp = msg["fingerprint"]
            payload = msg.get("graph")
            if payload is not None:
                if "mmap_path" in payload:
                    # on-disk store: map it read-only instead of copying
                    # the adjacency into this worker's heap — every
                    # worker shares the same page-cache pages
                    from repro.graph.mmap_store import open_mmap

                    mapped = open_mmap(payload["mmap_path"], validate=False)
                    object.__setattr__(mapped, "_fingerprint", fp)
                    graphs[fp] = mapped
                else:
                    graphs[fp] = CSRGraph(
                        indptr=payload["indptr"],
                        indices=payload["indices"],
                        weights=payload["weights"],
                        self_weight=payload["self_weight"],
                        name=payload["name"],
                        _fingerprint=fp,
                    )
                while len(graphs) > graph_cache_size:
                    graphs.popitem(last=False)
            graph = graphs.get(fp)
            if graph is None:
                conn.send({"ok": False, "need_graph": True})
                continue
            graphs.move_to_end(fp)
            want_spans = bool((msg.get("telemetry") or {}).get("spans"))
            if want_spans:
                with obs.session(process_name="serve-worker") as sess:
                    result = gala(graph, GalaConfig(**msg["config"]))
                exported = sess.tracer.export_spans()
            else:
                result = gala(graph, GalaConfig(**msg["config"]))
                exported = None
            reply = result_payload(result)
            reply["ok"] = True
            telemetry: Dict[str, Any] = {
                "pid": os.getpid(),
                "t_job_recv": t_job_recv,
                "counters": run_counters(result),
            }
            if exported is not None:
                telemetry["spans"] = exported["spans"]
                telemetry["labels"] = exported["labels"]
                telemetry["dropped"] = exported["dropped"]
            reply["telemetry"] = telemetry
            telemetry["t_reply_send"] = clock()
            conn.send(reply)
        except Exception as exc:  # noqa: BLE001 - the reply IS the report
            conn.send({
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "telemetry": {
                    "pid": os.getpid(),
                    "t_job_recv": t_job_recv,
                    "t_reply_send": clock(),
                },
            })


class _WorkerHandle:
    """One subprocess + its pipe + the fingerprints it already holds."""

    def __init__(self, ctx, graph_cache_size: int):
        self.conn, child = ctx.Pipe(duplex=True)
        # daemon=False: a daemonic process may not have children, and a
        # worker running a runtime="multiprocess" job spawns one process
        # per rank. Orphan protection comes from PDEATHSIG in the worker
        # (and from the pipe: a closed parent end reads as EOF → exit).
        self.process = ctx.Process(
            target=_worker_main,
            args=(child, graph_cache_size),
            daemon=False,
        )
        self.process.start()
        child.close()
        self.known: set[str] = set()
        self.pid: Optional[int] = self.process.pid

    def send(self, msg: Dict[str, Any]) -> None:
        self.conn.send(msg)

    def recv(self) -> Dict[str, Any]:
        """Blocking receive (called from an executor thread). A killed
        worker reads as a crash report, not an exception — the future may
        already be cancelled and must not warn."""
        try:
            return self.conn.recv()
        except (EOFError, OSError):
            return {"ok": False, "crashed": True}

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=1.0)

    def stop(self) -> None:
        """Polite shutdown for an idle worker."""
        try:
            self.conn.send({"op": "stop"})
        except (OSError, ValueError, BrokenPipeError):
            pass
        self.process.join(timeout=2.0)
        self.kill()


class WorkerPool(DetectionRunner):
    """Fixed-size pool of subprocess workers behind the runner seam.

    Concurrency equals ``workers``; callers beyond that wait on the idle
    queue (the server's admission control bounds how many may wait).
    ``spawn`` is the default start method: the server runs an event loop
    with helper threads, and forking a threaded process is a lock-state
    lottery the serving layer refuses to play.
    """

    def __init__(
        self,
        workers: int = 2,
        mp_context: str = "spawn",
        worker_graph_cache: int = 8,
    ):
        super().__init__()
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.worker_graph_cache = worker_graph_cache
        self._ctx = multiprocessing.get_context(mp_context)
        self._idle: "asyncio.Queue[_WorkerHandle]" = asyncio.Queue()
        self._handles: list[_WorkerHandle] = []
        self._closed = False
        self.respawns = 0

    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Spawn the workers and wait until each answers a ping — after
        this, the first request pays no interpreter-boot latency."""
        loop = asyncio.get_running_loop()
        for _ in range(self.workers):
            handle = _WorkerHandle(self._ctx, self.worker_graph_cache)
            self._handles.append(handle)
            self._idle.put_nowait(handle)
        for handle in self._handles:
            handle.send({"op": "ping"})
            reply = await loop.run_in_executor(None, handle.recv)
            if not reply.get("ok"):
                raise RuntimeError("worker failed to boot")

    def _graph_payload(self, graph: CSRGraph) -> Dict[str, Any]:
        from repro.graph.mmap_store import MmapCSRGraph

        if isinstance(graph, MmapCSRGraph) and graph.path:
            # ship the store path, not the arrays: pickling a memmap
            # copies its data by value, defeating out-of-core serving
            return {"mmap_path": graph.path, "name": graph.name}
        return {
            "indptr": graph.indptr,
            "indices": graph.indices,
            "weights": graph.weights,
            "self_weight": graph.self_weight,
            "name": graph.name,
        }

    def _replace(self, handle: _WorkerHandle) -> None:
        """Kill a wedged worker and seat a fresh one in its slot."""
        handle.kill()
        self._handles.remove(handle)
        if self._closed:
            return
        fresh = _WorkerHandle(self._ctx, self.worker_graph_cache)
        self._handles.append(fresh)
        self._idle.put_nowait(fresh)
        self.respawns += 1

    async def run(
        self,
        graph: CSRGraph,
        config: GalaConfig,
        timeout: Optional[float] = None,
        collect_spans: bool = False,
    ) -> Dict[str, Any]:
        if self._closed:
            raise PoolClosed("worker pool is stopped")
        handle = await self._idle.get()
        loop = asyncio.get_running_loop()
        fp = graph.fingerprint
        job = {
            "op": "detect",
            "fingerprint": fp,
            "config": dataclasses.asdict(config),
            "telemetry": {"spans": collect_spans},
        }
        if fp not in handle.known:
            job["graph"] = self._graph_payload(graph)
        try:
            t_send = time.perf_counter()
            handle.send(job)
            reply = await asyncio.wait_for(
                loop.run_in_executor(None, handle.recv), timeout
            )
            t_recv = time.perf_counter()
        except asyncio.TimeoutError:
            self._replace(handle)
            raise DetectionTimeout(
                f"detection exceeded {timeout}s; worker killed"
            ) from None
        except asyncio.CancelledError:
            # cancellation (client gone, server draining) reclaims the
            # core immediately: kill the run, keep the pool whole
            self._replace(handle)
            raise
        except (OSError, ValueError) as exc:
            self._replace(handle)
            raise DetectionFailed(f"worker pipe failed: {exc}") from exc

        if reply.get("crashed"):
            self._replace(handle)
            raise DetectionFailed("worker crashed mid-run")
        if reply.get("need_graph"):
            # the worker's LRU graph cache evicted this fingerprint while
            # our known-set still listed it; re-submit with the payload
            handle.known.discard(fp)
            self._idle.put_nowait(handle)
            return await self.run(
                graph, config, timeout=timeout, collect_spans=collect_spans
            )
        handle.known.add(fp)
        self._idle.put_nowait(handle)
        worker_telemetry = reply.get("telemetry") or {}
        self._fold_counters(worker_telemetry.get("counters"))
        if not reply.get("ok"):
            raise DetectionFailed(reply.get("error", "unknown worker error"))
        result = {
            "communities": reply["communities"],
            "modularity": reply["modularity"],
            "num_levels": reply["num_levels"],
            "iterations": reply["iterations"],
        }
        if collect_spans and "t_job_recv" in worker_telemetry:
            result["telemetry"] = self._server_domain_telemetry(
                worker_telemetry, t_send, t_recv
            )
        return result

    def _server_domain_telemetry(
        self,
        telemetry: Dict[str, Any],
        t_send: float,
        t_recv: float,
    ) -> Dict[str, Any]:
        """Map one reply's spans into this process's clock domain.

        The NTP bounds guarantee the synthesized ``worker/detect`` span
        — exactly the worker's service interval — lands strictly inside
        ``[t_send, t_recv]``, so worker (and relayed rank) spans nest
        under the caller's dispatch span with no tolerance games.
        """
        t_job_recv = telemetry["t_job_recv"]
        t_reply_send = telemetry["t_reply_send"]
        sync = ClockSync.from_handshake(t_send, t_job_recv, t_reply_send, t_recv)
        pid = int(telemetry.get("pid", 0))
        spans = [
            make_span(
                "worker/detect",
                t_job_recv + sync.offset,
                t_reply_send + sync.offset,
                pid=pid,
                args={"clock_uncertainty_us": round(sync.uncertainty * 1e6, 1)},
            )
        ]
        spans.extend(shift_spans(telemetry.get("spans") or [], sync.offset))
        labels = {int(k): v for k, v in (telemetry.get("labels") or {}).items()}
        labels.setdefault(pid, "serve-worker")
        return {
            "pid": pid,
            "spans": spans,
            "labels": labels,
            "dropped": int(telemetry.get("dropped", 0)),
            "clock_offset_s": sync.offset,
            "clock_uncertainty_s": sync.uncertainty,
            "counters": telemetry.get("counters"),
        }

    async def stop(self) -> None:
        """Stop all workers: polite for idle ones, kill for busy ones."""
        if self._closed:
            return
        self._closed = True
        idle: list[_WorkerHandle] = []
        while not self._idle.empty():
            idle.append(self._idle.get_nowait())
        loop = asyncio.get_running_loop()
        await asyncio.gather(
            *(loop.run_in_executor(None, h.stop) for h in idle)
        )
        for handle in list(self._handles):
            if handle not in idle:
                handle.kill()
        self._handles.clear()

    def stats(self) -> Dict[str, Any]:
        return {
            "kind": "subprocess",
            "workers": self.workers,
            "idle": self._idle.qsize(),
            "respawns": self.respawns,
            "worker_totals": dict(self.worker_totals),
            "kernel_backends": dict(self.kernel_backends),
            "rank_halo_bytes": dict(self.rank_halo_bytes),
        }
