"""Graph registry: content-addressed storage for uploaded graphs.

Clients upload a graph once and refer to it by its CSR sha256
fingerprint (:attr:`~repro.graph.csr.CSRGraph.fingerprint`) forever
after — the serving layer never ships adjacency arrays per request. The
registry is content-addressed, so re-uploading an identical graph is a
no-op that returns the same fingerprint, and two clients uploading the
same graph share one copy.

Eviction is LRU under an optional byte budget (lookups and uploads both
touch an entry). The registry is thread-safe: the asyncio server runs
lookups on its event loop while worker-feed threads read payloads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.graph.csr import CSRGraph


def graph_nbytes(graph: CSRGraph) -> int:
    """Resident size of a graph's payload arrays.

    Memory-mapped graphs charge only their heap-resident arrays — the
    adjacency lives in the page cache, is shared across every process
    that maps the store, and is reclaimable under pressure, so counting
    it against the registry budget would evict mmapped graphs that cost
    almost nothing to keep.
    """
    from repro.graph.mmap_store import MmapCSRGraph

    if isinstance(graph, MmapCSRGraph):
        return int(graph.resident_nbytes)
    return int(
        graph.indptr.nbytes
        + graph.indices.nbytes
        + graph.weights.nbytes
        + graph.self_weight.nbytes
    )


@dataclass
class RegisteredGraph:
    """One registry entry."""

    graph: CSRGraph
    fingerprint: str
    nbytes: int

    def describe(self) -> Dict[str, Any]:
        g = self.graph
        return {
            "fingerprint": self.fingerprint,
            "name": g.name,
            "n": int(g.n),
            "num_edges": int(g.num_edges),
            "nbytes": self.nbytes,
        }


class GraphRegistry:
    """Fingerprint-keyed LRU store of :class:`CSRGraph` instances."""

    def __init__(self, max_bytes: Optional[int] = None):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None for unbounded)")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, RegisteredGraph]" = OrderedDict()
        self._bytes = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    def put(self, graph: CSRGraph) -> str:
        """Register ``graph``; returns its fingerprint.

        Content-addressed: registering a graph that is already resident
        (same fingerprint) touches the existing entry and returns — the
        stored copy is kept, so fingerprints held by in-flight requests
        stay valid.
        """
        fp = graph.fingerprint
        with self._lock:
            if fp in self._entries:
                self._entries.move_to_end(fp)
                return fp
            entry = RegisteredGraph(graph=graph, fingerprint=fp,
                                    nbytes=graph_nbytes(graph))
            self._entries[fp] = entry
            self._bytes += entry.nbytes
            self._evict_over_budget(keep=fp)
        return fp

    def get(self, fingerprint: str) -> Optional[CSRGraph]:
        """Look up a graph by fingerprint (touches LRU order)."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                return None
            self._entries.move_to_end(fingerprint)
            return entry.graph

    def evict(self, fingerprint: str) -> bool:
        """Drop one graph explicitly; returns whether it was resident."""
        with self._lock:
            entry = self._entries.pop(fingerprint, None)
            if entry is None:
                return False
            self._bytes -= entry.nbytes
            self._evictions += 1
            return True

    def _evict_over_budget(self, keep: str) -> None:
        """Drop LRU entries until under budget (never the ``keep`` key —
        a graph larger than the whole budget still has to serve the
        request that uploaded it)."""
        if self.max_bytes is None:
            return
        while self._bytes > self.max_bytes and len(self._entries) > 1:
            lru = next(iter(self._entries))
            if lru == keep:
                break
            entry = self._entries.pop(lru)
            self._bytes -= entry.nbytes
            self._evictions += 1

    # ------------------------------------------------------------------ #
    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries(self) -> List[Dict[str, Any]]:
        """Describe resident graphs, most recently used last."""
        with self._lock:
            return [e.describe() for e in self._entries.values()]

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "graphs": len(self._entries),
                "bytes": self._bytes,
                "evictions": self._evictions,
            }
