"""Asyncio client for the detection service.

A thin, honest wrapper over the JSONL protocol: every method is one
request line and one response line. ``detect``/``upload`` raise
:class:`ServeError` on error replies by default so straight-line code
stays straight; pass ``raise_on_error=False`` (or use :meth:`request`)
when you *want* the error replies — the load generator counts 503s as
data, not failures.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.serve.protocol import (
    DEFAULT_LINE_LIMIT,
    decode,
    encode,
    graph_to_payload,
)


class ServeError(RuntimeError):
    """An error reply from the server (carries code + status)."""

    def __init__(self, response: Dict[str, Any]):
        self.code = response.get("error", "internal")
        self.status = response.get("status", 500)
        self.response = response
        super().__init__(
            f"{self.code} ({self.status}): {response.get('message', '')}"
        )


class ServeClient:
    """One connection to a :class:`~repro.serve.server.DetectionServer`.

    Requests on one client are sequential (the protocol is one line in,
    one line out per connection); open several clients for concurrency —
    that is exactly what the bench harness does to model independent
    callers.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()

    @classmethod
    async def connect(
        cls, host: str, port: int, limit: int = DEFAULT_LINE_LIMIT
    ) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port, limit=limit)
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request, return the raw response dict (never raises
        on an error reply — only on transport failure)."""
        async with self._lock:
            self._writer.write(encode(message))
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode(line)

    async def _checked(
        self, message: Dict[str, Any], raise_on_error: bool
    ) -> Dict[str, Any]:
        response = await self.request(message)
        if raise_on_error and not response.get("ok"):
            raise ServeError(response)
        return response

    # ------------------------------------------------------------------ #
    async def ping(self) -> Dict[str, Any]:
        return await self._checked({"op": "ping"}, True)

    async def upload(
        self, graph: CSRGraph, *, raise_on_error: bool = True
    ) -> str:
        """Register ``graph`` on the server; returns its fingerprint."""
        message = {"op": "upload", **graph_to_payload(graph)}
        response = await self._checked(message, raise_on_error)
        return response.get("fingerprint", "")

    async def detect(
        self,
        fingerprint: str,
        config: Optional[Dict[str, Any]] = None,
        seed: Optional[int] = None,
        include_assignment: bool = False,
        timeout_s: Optional[float] = None,
        no_cache: bool = False,
        raise_on_error: bool = True,
    ) -> Dict[str, Any]:
        message: Dict[str, Any] = {"op": "detect", "fingerprint": fingerprint}
        if config:
            message["config"] = config
        if seed is not None:
            message["seed"] = seed
        if include_assignment:
            message["include_assignment"] = True
        if timeout_s is not None:
            message["timeout_s"] = timeout_s
        if no_cache:
            message["no_cache"] = True
        return await self._checked(message, raise_on_error)

    async def stats(self) -> Dict[str, Any]:
        return await self._checked({"op": "stats"}, True)

    async def metrics(self, exposition: bool = True) -> Dict[str, Any]:
        """Live telemetry: dashboard summary + (optionally) the same
        Prometheus text the HTTP ``/metrics`` endpoint serves."""
        return await self._checked(
            {"op": "metrics", "exposition": exposition}, True
        )

    async def graphs(self) -> Dict[str, Any]:
        return await self._checked({"op": "graphs"}, True)

    async def evict(self, fingerprint: str) -> Dict[str, Any]:
        return await self._checked(
            {"op": "evict", "fingerprint": fingerprint}, True
        )


def assignment_array(response: Dict[str, Any]) -> np.ndarray:
    """The assignment from an ``include_assignment=True`` detect reply."""
    return np.asarray(response["assignment"], dtype=np.int64)
