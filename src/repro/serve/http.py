"""Minimal HTTP listener for ``GET /metrics`` and ``GET /healthz``.

Prometheus scrapers and load-balancer health checks speak HTTP, not our
JSONL protocol, so the server optionally binds a second socket
(``serve --metrics-port``) that answers exactly two GET paths and
nothing else. It shares the server's asyncio loop — rendering an
exposition is dictionary walking, never an engine run — and closes every
connection after one response (``Connection: close``), which is all a
scrape needs and spares us keep-alive bookkeeping.

Deliberately not a web framework: no routing table, no middleware, no
dependency. ~100 lines of stdlib asyncio is the whole surface, which is
the right size for an endpoint whose only job is to hand out text.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

__all__ = ["TelemetryHTTPServer"]

_MAX_REQUEST_BYTES = 8192


class TelemetryHTTPServer:
    """The ``/metrics`` + ``/healthz`` sidecar listener.

    ``GET /metrics``  → 200, Prometheus text exposition 0.0.4
    ``GET /healthz``  → 200 (healthy) or 503 (draining / SLO violated),
                        JSON status body either way
    anything else     → 404 (unknown path) or 405 (non-GET)
    """

    def __init__(self, server, host: str = "127.0.0.1", port: int = 0):
        self._detection_server = server
        self.host = host
        self.port = port
        self._http: Optional[asyncio.base_events.Server] = None

    async def start(self) -> int:
        """Bind and return the actual port (resolves port 0)."""
        self._http = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._http.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        if self._http is not None:
            self._http.close()
            await self._http.wait_closed()
            self._http = None

    # ------------------------------------------------------------------ #
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            if not request_line or len(request_line) > _MAX_REQUEST_BYTES:
                return
            # drain headers up to the blank line; we never use them
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            status, content_type, body = self._respond(request_line)
            head = (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(head.encode("ascii") + body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.LimitOverrunError):
            pass
        finally:
            writer.close()

    def _respond(self, request_line: bytes) -> Tuple[str, str, bytes]:
        try:
            method, path, _ = request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            return "400 Bad Request", "text/plain", b"bad request line\n"
        path = path.split("?", 1)[0]
        if method != "GET":
            return "405 Method Not Allowed", "text/plain", b"GET only\n"
        if path == "/metrics":
            text = self._detection_server.render_metrics_text()
            return (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                text.encode("utf-8"),
            )
        if path == "/healthz":
            healthy, status = self._detection_server.health()
            body = (json.dumps(status, sort_keys=True) + "\n").encode("utf-8")
            code = "200 OK" if healthy else "503 Service Unavailable"
            return code, "application/json", body
        return "404 Not Found", "text/plain", b"not found\n"
