"""``repro.serve`` — detection as a service.

The paper's GPU Louvain exists to make community detection fast enough
to sit behind interactive workloads; this package is the layer that
actually sits there. A long-running asyncio server
(:class:`DetectionServer`) accepts detection requests — a graph
reference plus a :class:`~repro.core.gala.GalaConfig` — and answers from
three tiers:

1. a :class:`GraphRegistry`, content-addressed by the CSR sha256
   fingerprint (:attr:`CSRGraph.fingerprint`), so adjacency arrays cross
   the wire once, not per request;
2. a :class:`ResultCache` — runs are deterministic per (fingerprint,
   semantic config, seed), so a cached assignment is bit-identical to a
   recomputed one and hot graphs cost one engine run ever;
3. a :class:`WorkerPool` of subprocess engine runners behind the
   :class:`DetectionRunner` seam, so NumPy's GIL-holding kernels never
   stall intake, with per-request timeouts, cancellation, and
   kill-and-respawn isolation.

Admission control is a bounded in-flight budget: past it, requests are
shed with a 503 in microseconds instead of queued into an unbounded
backlog. ``python -m repro serve`` runs the server;
``benchmarks/bench_serve.py`` is the mixed-traffic load generator; see
``docs/serving.md`` for the architecture and tuning guide.
"""

from repro.serve.cache import CachedResult, ResultCache, assignment_sha256
from repro.serve.client import ServeClient, ServeError, assignment_array
from repro.serve.pool import (
    DetectionFailed,
    DetectionRunner,
    DetectionTimeout,
    InlineRunner,
    PoolClosed,
    WorkerPool,
)
from repro.serve.protocol import ProtocolError, graph_from_payload, graph_to_payload
from repro.serve.http import TelemetryHTTPServer
from repro.serve.registry import GraphRegistry, RegisteredGraph, graph_nbytes
from repro.serve.server import DetectionServer, ServeConfig

__all__ = [
    # server
    "DetectionServer",
    "ServeConfig",
    "TelemetryHTTPServer",
    # registry
    "GraphRegistry",
    "RegisteredGraph",
    "graph_nbytes",
    # cache
    "ResultCache",
    "CachedResult",
    "assignment_sha256",
    # runners
    "DetectionRunner",
    "InlineRunner",
    "WorkerPool",
    "DetectionFailed",
    "DetectionTimeout",
    "PoolClosed",
    # protocol / client
    "ServeClient",
    "ServeError",
    "ProtocolError",
    "graph_from_payload",
    "graph_to_payload",
    "assignment_array",
]
